"""Tests for the concurrent query-serving subsystem.

The central property: interleaving changes *when* a query's episodes run,
never *what* they compute.  N queries served concurrently must produce
byte-identical result tables and identical per-query meter charges to each
query running alone on a directly constructed engine — regardless of
weights, priorities, admission bounds, or queries being cancelled around
them (including cancels mid-way through a query's episode sequence).  On
top of that, the scheduler's fairness and determinism, admission control,
and both serving caches are pinned individually.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SkinnerConfig
from repro.errors import ReproError
from repro.optimizer.statistics import StatisticsCatalog
from repro.query.parser import parse_query
from repro.serving import QueryServer, SessionState
from repro.serving.cache import join_graph_signature, query_fingerprint
from repro.skinner.skinner_c import SkinnerC
from repro.skinner.skinner_g import SkinnerG
from repro.skinner.skinner_h import SkinnerH
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.generators import make_rng

from test_postprocess_columnar import assert_tables_identical

#: Small budgets so every query needs several episodes — otherwise the
#: scheduler has nothing to interleave and the tests prove nothing.
FAST = SkinnerConfig(
    slice_budget=32,
    batch_size=8,
    batches_per_table=3,
    base_timeout=150,
    serving_warm_start=False,
)


def build_catalog(seed: int = 11) -> Catalog:
    rng = make_rng(seed)
    catalog = Catalog()
    catalog.add_table(Table("r", {
        "id": list(range(30)),
        "g": [int(x) for x in rng.integers(0, 4, 30)],
        "v": [int(x) for x in rng.integers(0, 50, 30)],
    }))
    catalog.add_table(Table("s", {
        "rid": [int(x) for x in rng.integers(0, 30, 45)],
        "w": [int(x) for x in rng.integers(0, 9, 45)],
    }))
    catalog.add_table(Table("t", {
        "sid": [int(x) for x in rng.integers(0, 9, 25)],
        "u": [int(x) for x in rng.integers(0, 100, 25)],
    }))
    return catalog


QUERIES = [
    "SELECT r.g AS g, SUM(s.w) AS total FROM r, s WHERE r.id = s.rid GROUP BY r.g ORDER BY r.g",
    "SELECT COUNT(*) AS n FROM r, s, t WHERE r.id = s.rid AND s.w = t.sid",
    "SELECT r.v, s.w FROM r, s WHERE r.id = s.rid AND r.g = 2 ORDER BY r.v DESC LIMIT 4",
    "SELECT DISTINCT s.w FROM s, t WHERE s.w = t.sid",
    "SELECT COUNT(*) AS n FROM r WHERE r.v > 25",
    "SELECT r.g, COUNT(*) AS n FROM r, s WHERE r.id = s.rid AND s.w >= 3 GROUP BY r.g",
]

ENGINES = ["skinner-c", "skinner-g", "skinner-h"]


@pytest.fixture(scope="module")
def catalog() -> Catalog:
    return build_catalog()


def solo_result(catalog: Catalog, sql: str, engine: str, config: SkinnerConfig = FAST):
    """Run one query on a directly constructed engine (no serving layer)."""
    query = parse_query(sql, catalog)
    if engine == "skinner-c":
        return SkinnerC(catalog, None, config).execute(query)
    if engine == "skinner-g":
        return SkinnerG(catalog, None, config).execute(query)
    if engine == "skinner-h":
        return SkinnerH(catalog, None, config,
                        statistics=StatisticsCatalog.collect(catalog)).execute(query)
    raise AssertionError(engine)


# ----------------------------------------------------------------------
# the central property: interleaved == solo, under any scheduling pressure
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.data())
def test_interleaved_queries_match_solo_runs(catalog, data):
    picks = data.draw(st.lists(
        st.tuples(
            st.integers(0, len(QUERIES) - 1),
            st.sampled_from(ENGINES),
            st.sampled_from([0.5, 1.0, 3.0]),   # weight
            st.integers(0, 1),                   # priority class
        ),
        min_size=2, max_size=6))
    max_inflight = data.draw(st.integers(1, 4))
    server = QueryServer(
        catalog, config=FAST.with_overrides(serving_max_inflight=max_inflight)
    )
    tickets = {}
    for query_index, engine, weight, priority in picks:
        ticket = server.submit(QUERIES[query_index], engine=engine,
                               weight=weight, priority=priority,
                               use_result_cache=False)
        tickets[ticket] = (query_index, engine)

    # Cancel one submission part-way through the drain ("mid-episode").
    cancel_ticket = None
    if data.draw(st.booleans()):
        for _ in range(data.draw(st.integers(0, 12))):
            if not server.step():
                break
        cancel_ticket = data.draw(st.sampled_from(sorted(tickets)))
        server.cancel(cancel_ticket)

    server.drain()
    for ticket, (query_index, engine) in tickets.items():
        if ticket == cancel_ticket and server.session(ticket).state is SessionState.CANCELLED:
            with pytest.raises(ReproError):
                server.result(ticket)
            continue
        served = server.result(ticket)
        solo = solo_result(catalog, QUERIES[query_index], engine)
        assert_tables_identical(solo.table, served.table)
        assert served.metrics.work == solo.metrics.work, (engine, QUERIES[query_index])
        # The ledger attributed exactly the solo run's work to this query.
        assert server.ledger.total(ticket) == solo.metrics.work.total


def test_identical_submission_sequence_gives_identical_schedule(catalog):
    """Two servers fed the same sequence interleave identically."""

    def serve():
        server = QueryServer(catalog, config=FAST.with_overrides(serving_max_inflight=3))
        tickets = [server.submit(sql, weight=1.0 + index % 2, priority=index % 2)
                   for index, sql in enumerate(QUERIES)]
        trace = []
        while server.step():
            trace.append(tuple(sorted(
                (ticket, server.poll(ticket)["episodes"]) for ticket in tickets
            )))
        return trace, [server.ledger.total(ticket) for ticket in tickets]

    assert serve() == serve()


# ----------------------------------------------------------------------
# fairness, priorities, admission
# ----------------------------------------------------------------------
def test_weighted_fair_share_tracks_weights(catalog):
    """Backlogged sessions receive work roughly proportional to weight."""
    server = QueryServer(catalog, config=FAST)
    heavy = server.submit(QUERIES[1], weight=3.0, use_result_cache=False)
    light = server.submit(QUERIES[1], weight=1.0, use_result_cache=False)
    while not server.session(heavy).done and not server.session(light).done:
        server.step()
    # Same query, 3x the weight: the heavy one finishes first, and at that
    # point the light one has received roughly a third of the work.
    assert server.session(heavy).done and not server.session(light).done
    heavy_work = server.ledger.total(heavy)
    light_work = server.ledger.total(light)
    assert 0 < light_work < 0.6 * heavy_work

    server.drain()
    assert_tables_identical(server.result(heavy).table, server.result(light).table)


def test_short_query_is_not_stuck_behind_long_one(catalog):
    """Episode slicing: a short query finishes before an earlier long one."""
    server = QueryServer(catalog, config=FAST)
    long_ticket = server.submit(QUERIES[1], use_result_cache=False)
    short_ticket = server.submit(QUERIES[4], use_result_cache=False)
    server.drain()
    long_session = server.session(long_ticket)
    short_session = server.session(short_ticket)
    assert short_session.completed_at_work < long_session.completed_at_work


def test_priority_class_preempts_lower_class(catalog):
    server = QueryServer(catalog, config=FAST)
    low = server.submit(QUERIES[1], priority=0, use_result_cache=False)
    high = server.submit(QUERIES[1], priority=5, use_result_cache=False)
    server.drain()
    # The high-priority query completed first even though it arrived later.
    assert (server.session(high).completed_at_work
            < server.session(low).completed_at_work)


def test_admission_bounds_inflight_and_queues_overflow(catalog):
    server = QueryServer(catalog, config=FAST.with_overrides(serving_max_inflight=2))
    tickets = [server.submit(sql, use_result_cache=False) for sql in QUERIES[:5]]
    states = [server.poll(ticket)["state"] for ticket in tickets]
    assert states.count("running") == 2
    assert states.count("queued") == 3
    positions = [server.poll(ticket)["queue_position"] for ticket in tickets[2:]]
    assert positions == [0, 1, 2]  # FIFO within one priority class
    server.drain()
    assert all(server.poll(ticket)["state"] == "finished" for ticket in tickets)


def test_queued_high_priority_dequeues_first(catalog):
    server = QueryServer(catalog, config=FAST.with_overrides(serving_max_inflight=1))
    server.submit(QUERIES[0], use_result_cache=False)
    low = server.submit(QUERIES[1], priority=0, use_result_cache=False)
    high = server.submit(QUERIES[2], priority=9, use_result_cache=False)
    assert server.poll(high)["queue_position"] == 0
    assert server.poll(low)["queue_position"] == 1
    server.drain()
    assert (server.session(high).completed_at_work
            < server.session(low).completed_at_work)


# ----------------------------------------------------------------------
# cancellation
# ----------------------------------------------------------------------
def test_cancel_queued_and_running_submissions(catalog):
    server = QueryServer(catalog, config=FAST.with_overrides(serving_max_inflight=1))
    running = server.submit(QUERIES[1], use_result_cache=False)
    queued = server.submit(QUERIES[0], use_result_cache=False)
    assert server.cancel(queued) is True
    assert server.poll(queued)["state"] == "cancelled"

    for _ in range(3):  # some episodes happen, then a mid-query cancel
        server.step()
    assert server.cancel(running) is True
    with pytest.raises(ReproError):
        server.result(running)

    # The server stays serviceable and later work is unaffected.
    fresh = server.submit(QUERIES[0], use_result_cache=False)
    result = server.result(fresh)
    assert_tables_identical(solo_result(catalog, QUERIES[0], "skinner-c").table,
                            result.table)
    assert server.cancel(fresh) is False  # finished queries cannot be cancelled


def test_cancel_releases_admission_slot(catalog):
    server = QueryServer(catalog, config=FAST.with_overrides(serving_max_inflight=1))
    first = server.submit(QUERIES[1], use_result_cache=False)
    second = server.submit(QUERIES[4], use_result_cache=False)
    assert server.poll(second)["state"] == "queued"
    server.cancel(first)
    assert server.poll(second)["state"] == "running"
    server.drain()
    assert server.poll(second)["state"] == "finished"


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------
def test_result_cache_hit_and_flag(catalog):
    server = QueryServer(catalog, config=FAST)
    first = server.result(server.submit(QUERIES[0]))
    hit_ticket = server.submit(QUERIES[0])
    assert server.poll(hit_ticket)["cache_hit"] is True
    hit = server.result(hit_ticket)
    assert_tables_identical(first.table, hit.table)
    assert hit.metrics.extra["result_cache"] == "hit"
    assert server.ledger.total(hit_ticket) == 0  # no work charged

    # Different engine, profile, or config => different fingerprint.
    miss = server.submit(QUERIES[0], engine="skinner-g")
    assert server.poll(miss)["cache_hit"] is False
    server.drain()


def test_result_cache_disabled_by_config(catalog):
    server = QueryServer(catalog, config=FAST.with_overrides(serving_result_cache_size=0))
    server.result(server.submit(QUERIES[0]))
    again = server.submit(QUERIES[0])
    assert server.poll(again)["cache_hit"] is False
    server.drain()


def test_result_cache_lru_eviction(catalog):
    server = QueryServer(catalog, config=FAST.with_overrides(serving_result_cache_size=2))
    for sql in QUERIES[:3]:
        server.result(server.submit(sql))
    assert len(server.result_cache) == 2  # oldest entry evicted
    oldest_again = server.submit(QUERIES[0])
    assert server.poll(oldest_again)["cache_hit"] is False
    server.drain()


def test_fingerprint_normalizes_whitespace_and_case(catalog):
    a = parse_query("SELECT COUNT(*) AS n FROM r WHERE r.v > 25", catalog)
    b = parse_query("select   COUNT(*) AS n from r  where r.v > 25", catalog)
    kwargs = dict(engine="skinner-c", profile="postgres", threads=1, config=FAST)
    assert query_fingerprint(a, **kwargs) == query_fingerprint(b, **kwargs)
    assert (query_fingerprint(a, **kwargs)
            != query_fingerprint(a, **{**kwargs, "engine": "skinner-g"}))


# ----------------------------------------------------------------------
# join-order cache / warm start
# ----------------------------------------------------------------------
def test_same_template_queries_share_join_graph_signature(catalog):
    a = parse_query(QUERIES[2], catalog)  # r ⋈ s with r.g = 2
    b = parse_query(
        "SELECT r.v, s.w FROM r, s WHERE r.id = s.rid AND r.g = 0 ORDER BY r.v LIMIT 2",
        catalog)
    c = parse_query(QUERIES[3], catalog)  # s ⋈ t: different graph
    assert join_graph_signature(a) == join_graph_signature(b)
    assert join_graph_signature(a) != join_graph_signature(c)


def test_warm_start_reduces_repeated_template_work(catalog):
    warm_config = FAST.with_overrides(serving_warm_start=True)
    template = ("SELECT COUNT(*) AS n FROM r, s, t "
                "WHERE r.id = s.rid AND s.w = t.sid AND r.v > {threshold}")
    thresholds = [0, 5, 10, 15, 20]

    def total_work(config):
        server = QueryServer(catalog, config=config)
        work = 0
        for threshold in thresholds:
            result = server.result(server.submit(template.format(threshold=threshold)))
            work += result.metrics.work.total
        return work

    cold = total_work(FAST)
    warm = total_work(warm_config)
    assert warm < cold  # priors skip the cold-start exploration phase

    # Warm-started execution still returns correct results.
    server = QueryServer(catalog, config=warm_config)
    first = server.result(server.submit(template.format(threshold=7)))
    second = server.result(server.submit(template.format(threshold=9),
                                         use_result_cache=False))
    solo = solo_result(catalog, template.format(threshold=9), "skinner-c")
    assert_tables_identical(solo.table, second.table)
    assert first.rows[0]["n"] >= second.rows[0]["n"]


def test_invalidate_caches_drops_results_and_priors(catalog):
    server = QueryServer(catalog, config=FAST.with_overrides(serving_warm_start=True))
    server.result(server.submit(QUERIES[0]))
    assert len(server.result_cache) == 1
    assert len(server.order_cache) == 1
    server.invalidate_caches()
    assert len(server.result_cache) == 0
    assert len(server.order_cache) == 0


# ----------------------------------------------------------------------
# failure isolation: one bad query must not wedge the server
# ----------------------------------------------------------------------
def _udfs_with_boom():
    from repro.query.udf import UdfRegistry

    udfs = UdfRegistry()
    udfs.register("boom", lambda value: 1 // 0)
    return udfs


def test_failure_during_preprocessing_releases_admission_slot(catalog):
    server = QueryServer(catalog, _udfs_with_boom(),
                         config=FAST.with_overrides(serving_max_inflight=1))
    bad = server.submit("SELECT COUNT(*) AS n FROM r WHERE boom(r.v)")
    assert server.poll(bad)["state"] == "failed"
    assert server.cancel(bad) is False  # terminal state
    with pytest.raises(ZeroDivisionError):
        server.result(bad)
    # The slot was not leaked: later submissions are admitted and served.
    good = server.submit(QUERIES[4], use_result_cache=False)
    assert server.result(good).rows[0]["n"] >= 0


def test_failure_during_finalize_does_not_wedge_other_queries(catalog):
    server = QueryServer(catalog, _udfs_with_boom(), config=FAST)
    bad = server.submit("SELECT boom(r.v) AS b FROM r, s WHERE r.id = s.rid")
    good = server.submit(QUERIES[0], use_result_cache=False)
    server.drain()  # must terminate despite the failing finalize
    assert server.poll(bad)["state"] == "failed"
    with pytest.raises(ZeroDivisionError):
        server.result(bad)
    assert_tables_identical(solo_result(catalog, QUERIES[0], "skinner-c").table,
                            server.result(good).table)


# ----------------------------------------------------------------------
# submission validation
# ----------------------------------------------------------------------
def test_submit_rejects_bad_requests(catalog):
    server = QueryServer(catalog, config=FAST)
    with pytest.raises(ReproError):
        server.submit(QUERIES[0], engine="sqlite")
    with pytest.raises(ReproError):
        server.submit(QUERIES[0], weight=0.0)
    with pytest.raises(ReproError):
        server.submit(QUERIES[0], engine="skinner-c", forced_order=("r", "s"))
    with pytest.raises(ReproError):
        server.poll(999)


# ----------------------------------------------------------------------
# tenant quotas
# ----------------------------------------------------------------------
def _drive_until_done(server, ticket):
    while not server.session(ticket).done:
        server.step()


def test_equal_quota_tenants_split_work_evenly(catalog):
    """Two backlogged tenants with default quotas share the work clock."""
    server = QueryServer(catalog, config=FAST.with_overrides(serving_max_inflight=8))
    alice = [server.submit(QUERIES[1], tenant="alice", use_result_cache=False)
             for _ in range(3)]
    bob = [server.submit(QUERIES[1], tenant="bob", use_result_cache=False)
           for _ in range(3)]
    while not (all(server.session(t).done for t in alice)
               or all(server.session(t).done for t in bob)):
        server.step()
    stats = server.stats()["tenants"]
    alice_work, bob_work = stats["alice"]["work"], stats["bob"]["work"]
    # Same queries, same quota: while both tenants are backlogged neither
    # can get far ahead of the other on served work (tolerance covers one
    # scheduling grant of slack on either side).
    assert min(alice_work, bob_work) > 0
    assert max(alice_work, bob_work) / min(alice_work, bob_work) < 1.5
    server.drain()
    assert_tables_identical(server.result(alice[0]).table,
                            server.result(bob[0]).table)


def test_quota_shares_divide_work_proportionally(catalog):
    """A 3:1 quota split shows up as a ~3:1 split of served work."""
    server = QueryServer(catalog, config=FAST)
    server.set_tenant_quota("gold", 3.0)
    server.set_tenant_quota("basic", 1.0)
    gold = server.submit(QUERIES[1], tenant="gold", use_result_cache=False)
    basic = server.submit(QUERIES[1], tenant="basic", use_result_cache=False)
    while not server.session(gold).done and not server.session(basic).done:
        server.step()
    # Same query, 3x the quota: gold finishes first, and at that point the
    # basic tenant has received roughly a third of the work.
    assert server.session(gold).done and not server.session(basic).done
    assert 0 < server.ledger.total(basic) < 0.6 * server.ledger.total(gold)
    server.drain()


def test_flooding_tenant_cannot_starve_light_tenant(catalog):
    """The adversarial property: a heavy tenant submitting many sessions
    gets no more of the work clock than its quota — the light tenant's
    completion time is (nearly) independent of the heavy tenant's backlog.
    """

    def light_scheduling_delay(heavy_sessions: int) -> int:
        server = QueryServer(
            catalog, config=FAST.with_overrides(serving_max_inflight=8)
        )
        for _ in range(heavy_sessions):
            server.submit(QUERIES[1], tenant="heavy", use_result_cache=False)
        light = server.submit(QUERIES[4], tenant="light", use_result_cache=False)
        # Setup work is charged eagerly at submission; fairness is about
        # the *scheduled* episodes after that, so measure from here.
        baseline = server.ledger.grand_total()
        _drive_until_done(server, light)
        session = server.session(light)
        assert session.state is SessionState.FINISHED
        return session.completed_at_work - baseline

    single = light_scheduling_delay(1)
    flooded = light_scheduling_delay(6)
    # Per-session fair share would slow the light query ~3.5x going from
    # 1+1 to 6+1 backlogged sessions; per-tenant quotas must keep it flat
    # (tolerance covers one grant of heavy-tenant work on either side).
    assert 0 < flooded <= 1.5 * single


def test_tenant_fairness_does_not_change_results_or_charges(catalog):
    """Quotas reshape the schedule only: results and per-query charges
    stay byte-identical to solo runs."""
    server = QueryServer(catalog, config=FAST.with_overrides(serving_max_inflight=4))
    server.set_tenant_quota("heavy", 0.5)
    tickets = [
        server.submit(sql, tenant=("heavy" if index % 2 else "light"),
                      use_result_cache=False)
        for index, sql in enumerate(QUERIES[:4])
    ]
    server.drain()
    for index, ticket in enumerate(tickets):
        solo = solo_result(catalog, QUERIES[index], "skinner-c")
        served = server.result(ticket)
        assert_tables_identical(solo.table, served.table)
        assert solo.metrics.work == served.metrics.work


def test_single_tenant_schedule_unchanged_by_tenant_layer(catalog):
    """With one tenant the hierarchical scheduler must reproduce the exact
    pre-tenant schedule — determinism tests and serving benchmarks rely on
    single-tenant traces staying stable."""

    def trace(tenant_kwargs):
        server = QueryServer(catalog, config=FAST.with_overrides(serving_max_inflight=3))
        tickets = [server.submit(sql, use_result_cache=False, **tenant_kwargs)
                   for sql in QUERIES[:4]]
        order = []
        while server.step():
            order.append(tuple(server.ledger.total(ticket) for ticket in tickets))
        return order

    assert trace({}) == trace({"tenant": "solo"})


def test_tenant_stats_report_quota_backlog_and_shares(catalog):
    server = QueryServer(catalog, config=FAST)
    server.set_tenant_quota("gold", 2.0)
    gold = server.submit(QUERIES[1], tenant="gold", use_result_cache=False)
    server.submit(QUERIES[4], tenant="basic", use_result_cache=False)
    server.step()
    stats = server.stats()["tenants"]
    assert set(stats) == {"gold", "basic"}
    assert stats["gold"]["quota"] == 2.0 and stats["basic"]["quota"] == 1.0
    assert stats["gold"]["backlog"] == 1 and stats["basic"]["backlog"] == 1
    server.drain()
    stats = server.stats()["tenants"]
    assert stats["gold"]["backlog"] == 0
    assert stats["gold"]["work"] == server.ledger.total(gold)
    shares = [tenant["grant_share"] for tenant in stats.values()]
    assert abs(sum(shares) - 1.0) < 1e-9
    with pytest.raises(ReproError, match="positive"):
        server.set_tenant_quota("gold", 0.0)


def test_wall_clock_grant_budget_bounds_grants(catalog):
    """serving_grant_wall_ms ends a grant early; accounting still balances
    and results stay correct (the knob trades determinism of the episode
    interleaving for latency bounds, so it defaults to off)."""
    server = QueryServer(
        catalog,
        config=FAST.with_overrides(serving_grant_wall_ms=0.001,
                                   serving_quantum_episodes=1000),
    )
    ticket = server.submit(QUERIES[1], use_result_cache=False)
    server.drain()
    session = server.session(ticket)
    assert session.state is SessionState.FINISHED
    assert session.wall_seconds > 0.0
    assert server.stats()["grant_wall_seconds"] >= session.wall_seconds
    assert_tables_identical(solo_result(catalog, QUERIES[1], "skinner-c").table,
                            server.result(ticket).table)
