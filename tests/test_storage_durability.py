"""Durability acceptance tests: the storage backend never changes answers.

The central property mirrors ``test_parallel.py``: the buffer manager
changes *where* base tables physically live, never *what* queries compute.
A query on an in-memory catalog, on a durable (``data_dir``) catalog, and
on a durable catalog **reopened by a fresh connection** must produce
byte-identical rows and identical meter charges — including with
``workers=2``, where morsel workers map the column files directly instead
of receiving shared-memory copies.

On top of the property, the new surface is pinned: ``connect(data_dir=)``
/ ``REPRO_DATA_DIR`` / DSN ``?data_dir=`` resolution and validation, the
handshake echo and mismatch refusal, ``Connection.info()``, warm-start
idempotent ``load_csv`` (no re-parse on matching fingerprints), and the
``SkinnerDB`` facade's durable mode.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest

from repro import InterfaceError, SkinnerConfig, SkinnerDB, connect
from repro.errors import CatalogError
from repro.net.server import ServerThread
from repro.skinner.parallel import live_segment_count, shutdown_workers
from repro.storage import parse_count
from repro.storage.loader import save_csv
from repro.storage.table import Table

#: Mirrors the FAST config of test_api_cursor.py: quick convergence, no
#: warm start so served runs are solo-equivalent for charge comparisons.
FAST = SkinnerConfig(
    slice_budget=64,
    batches_per_table=3,
    base_timeout=200,
    serving_warm_start=False,
)


@pytest.fixture(scope="module", autouse=True)
def _pool_hygiene():
    """After the module: no worker processes, no shared-memory segments."""
    yield
    shutdown_workers()
    assert multiprocessing.active_children() == []
    assert live_segment_count() == 0


def seed_rs_schema(conn):
    conn.create_table("r", {
        "id": [1, 2, 3, 4, 5, 6],
        "a": [10, 20, 10, 30, 20, 10],
        "name": ["ann", "bob", "cat", "dan", "eve", "fox"],
    })
    conn.create_table("s", {
        "rid": [1, 1, 2, 3, 5, 6, 6],
        "c": [7, 8, 9, 7, 8, 9, 7],
    })
    conn.commit()


def _random_query(rng: random.Random) -> str:
    """A randomized SPJ(+postprocessing) query over the r/s fixtures."""
    shape = rng.randrange(3)
    if shape == 0:
        where = rng.choice(["", " WHERE r.a > ?"])
        sql = f"SELECT r.id, r.a FROM r{where}"
        return sql.replace("?", str(rng.choice([5, 15, 25])))
    if shape == 1:
        predicates = ["r.id = s.rid"]
        if rng.random() < 0.5:
            predicates.append(f"s.c > {rng.choice([6, 7, 8])}")
        if rng.random() < 0.5:
            predicates.append(f"r.a < {rng.choice([15, 25, 35])}")
        select = rng.choice(["r.name, s.c", "r.id, r.a, s.c", "s.c"])
        return f"SELECT {select} FROM r, s WHERE {' AND '.join(predicates)}"
    return (
        "SELECT r.a, COUNT(*) AS n FROM r, s WHERE r.id = s.rid "
        "GROUP BY r.a ORDER BY r.a"
    )


def _run(conn, sql):
    """Sorted row tuples + meter charges of one direct execution."""
    result = conn.execute_direct(sql)
    names = result.table.column_names
    rows = sorted(tuple(row[name] for name in names) for row in result.table.rows())
    return rows, result.metrics.work


class TestPropertyBackendByteIdentical:
    """Property: in-memory, durable, and durable-after-reopen agree."""

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_three_backends_agree(self, seed, tmp_path):
        rng = random.Random(seed)
        queries = [_random_query(rng) for _ in range(4)]

        memory = connect(FAST)
        seed_rs_schema(memory)
        references = [_run(memory, sql) for sql in queries]
        memory.close()

        durable = connect(FAST, data_dir=tmp_path / "db")
        seed_rs_schema(durable)
        for sql, (rows, work) in zip(queries, references):
            assert _run(durable, sql) == (rows, work), sql
        durable.close()

        # A fresh process-equivalent: new connection, tables from disk only.
        reopened = connect(FAST, data_dir=tmp_path / "db")
        assert sorted(reopened.catalog.table_names()) == ["r", "s"]
        for sql, (rows, work) in zip(queries, references):
            assert _run(reopened, sql) == (rows, work), sql
        reopened.close()

    @pytest.mark.parametrize("seed", [14, 15])
    def test_workers_two_over_durable_matches_in_memory(self, seed, tmp_path):
        # workers=2 on a durable catalog exports columns to morsel workers
        # as memory-mapped files; same worker count in memory uses shm
        # copies.  Rows and charges must not notice.
        rng = random.Random(seed)
        sql = _random_query(rng)
        parallel = FAST.with_overrides(
            parallel_morsels=4, parallel_min_morsel_rows=2
        )

        memory = connect(parallel, workers=2)
        seed_rs_schema(memory)
        reference = _run(memory, sql)
        memory.close()

        durable = connect(parallel, workers=2, data_dir=tmp_path / "db")
        seed_rs_schema(durable)
        assert _run(durable, sql) == reference, sql
        durable.close()

        reopened = connect(parallel, workers=2, data_dir=tmp_path / "db")
        assert _run(reopened, sql) == reference, sql
        reopened.close()


class TestConnectDataDir:
    """``data_dir`` resolution: kwarg > REPRO_DATA_DIR env > config."""

    def test_kwarg_selects_durable(self, tmp_path):
        conn = connect(FAST, data_dir=tmp_path / "db")
        try:
            assert conn.catalog.buffer_manager.durable
            assert conn.info()["data_dir"] == str(tmp_path / "db")
        finally:
            conn.close()

    def test_default_is_in_memory(self):
        conn = connect(FAST)
        try:
            assert not conn.catalog.buffer_manager.durable
            assert conn.info()["data_dir"] is None
        finally:
            conn.close()

    def test_env_var_applies(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path / "envdb"))
        conn = connect(FAST)
        try:
            assert conn.info()["data_dir"] == str(tmp_path / "envdb")
        finally:
            conn.close()

    def test_kwarg_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path / "envdb"))
        conn = connect(FAST, data_dir=tmp_path / "kwargdb")
        try:
            assert conn.info()["data_dir"] == str(tmp_path / "kwargdb")
        finally:
            conn.close()

    @pytest.mark.parametrize("bad", ["", "   ", 7, True])
    def test_invalid_kwarg_raises(self, bad):
        with pytest.raises(InterfaceError, match="data_dir"):
            connect(FAST, data_dir=bad)

    def test_existing_file_path_raises(self, tmp_path):
        path = tmp_path / "file"
        path.write_text("")
        with pytest.raises(InterfaceError, match="not a directory"):
            connect(FAST, data_dir=path)

    def test_invalid_env_raises_with_env_name(self, tmp_path, monkeypatch):
        path = tmp_path / "file"
        path.write_text("")
        monkeypatch.setenv("REPRO_DATA_DIR", str(path))
        with pytest.raises(InterfaceError, match="REPRO_DATA_DIR"):
            connect(FAST)


class TestRemoteDataDir:
    """DSN ``?data_dir=`` and the handshake echo / mismatch refusal."""

    def test_handshake_echoes_server_data_dir(self, tmp_path):
        data_dir = tmp_path / "db"
        live = ServerThread(connect(FAST, data_dir=data_dir)).start()
        try:
            seed_rs_schema(live.connection)
            remote = connect(live.dsn)
            try:
                assert remote.info()["data_dir"] == str(data_dir)
                result = remote.execute("SELECT r.id, r.a FROM r",
                                        use_result_cache=False)
                assert len(result.rows) == 6
            finally:
                remote.close()
        finally:
            live.stop()

    def test_matching_requested_data_dir_accepted(self, tmp_path):
        data_dir = tmp_path / "db"
        live = ServerThread(connect(FAST, data_dir=data_dir)).start()
        try:
            remote = connect(f"{live.dsn}?data_dir={data_dir}")
            try:
                assert remote.info()["data_dir"] == str(data_dir)
            finally:
                remote.close()
        finally:
            live.stop()

    def test_mismatched_data_dir_refused(self, tmp_path):
        live = ServerThread(connect(FAST, data_dir=tmp_path / "db")).start()
        try:
            with pytest.raises(InterfaceError, match="data_dir"):
                connect(f"{live.dsn}?data_dir={tmp_path / 'other'}")
        finally:
            live.stop()

    def test_data_dir_request_against_in_memory_server_refused(self, tmp_path):
        live = ServerThread(config=FAST).start()
        try:
            with pytest.raises(InterfaceError, match="data_dir"):
                connect(f"{live.dsn}?data_dir={tmp_path / 'db'}")
        finally:
            live.stop()


class TestWarmStartIngest:
    """Idempotent load_csv: matching fingerprints skip the re-parse."""

    @pytest.fixture()
    def csv_path(self, tmp_path):
        path = tmp_path / "people.csv"
        save_csv(Table("people", {
            "id": [1, 2, 3, 4],
            "name": ["ann", "bob", "cat", "dan"],
            "score": [1.5, 2.0, 2.5, 3.0],
        }), path)
        return path

    def test_reopen_skips_parse_on_matching_fingerprint(self, csv_path, tmp_path):
        cold = connect(FAST, data_dir=tmp_path / "db")
        cold.load_csv(csv_path)
        cold.commit()
        cold.close()

        parses_before = parse_count()
        warm = connect(FAST, data_dir=tmp_path / "db")
        try:
            table = warm.load_csv(csv_path)  # no replace=True needed
            assert parse_count() == parses_before  # served from storage
            assert table.num_rows == 4
            assert table.column("name").values() == ["ann", "bob", "cat", "dan"]
        finally:
            warm.close()

    def test_changed_file_is_reparsed(self, csv_path, tmp_path):
        cold = connect(FAST, data_dir=tmp_path / "db")
        cold.load_csv(csv_path)
        cold.commit()
        cold.close()

        save_csv(Table("people", {"id": [9], "name": ["zed"], "score": [0.5]},),
                 csv_path)
        warm = connect(FAST, data_dir=tmp_path / "db")
        try:
            parses_before = parse_count()
            table = warm.load_csv(csv_path, replace=True)
            assert parse_count() == parses_before + 1
            assert table.column("name").values() == ["zed"]
        finally:
            warm.close()

    def test_in_memory_keeps_strict_replace_contract(self, csv_path):
        conn = connect(FAST)
        try:
            conn.load_csv(csv_path)
            with pytest.raises(CatalogError):
                conn.load_csv(csv_path)  # identical file, still an error
        finally:
            conn.close()


class TestReplaceDropsIndexes:
    """Satellite: ``load_csv(replace=True)`` must invalidate stale indexes."""

    def test_rebuilt_index_sees_fresh_data(self, tmp_path):
        path = tmp_path / "t.csv"
        save_csv(Table("t", {"k": [1, 1, 2], "v": [10, 20, 30]}), path)
        conn = connect(FAST)
        try:
            conn.load_csv(path)
            stale = conn.catalog.build_index("t", "k")
            assert conn.catalog.index_count() == 1
            save_csv(Table("t", {"k": [5, 5, 5], "v": [1, 2, 3]}), path)
            conn.load_csv(path, replace=True)
            assert conn.catalog.index_count() == 0  # stale index dropped
            rebuilt = conn.catalog.build_index("t", "k")
            assert rebuilt is not stale
            assert list(rebuilt.positions(5)) == [0, 1, 2]
            assert list(rebuilt.positions(1)) == []
        finally:
            conn.close()

    def test_index_from_rolled_back_transaction_does_not_survive(self):
        conn = connect(FAST)
        try:
            conn.create_table("base", {"k": [1, 2, 3]})
            conn.commit()
            conn.create_table("scratch", {"k": [7, 7]})  # opens a transaction
            conn.catalog.build_index("scratch", "k")
            conn.catalog.build_index("base", "k")
            conn.rollback()
            assert conn.catalog.index_count() == 0
            assert conn.catalog.index("scratch", "k") is None
            assert conn.catalog.index("base", "k") is None
            assert not conn.catalog.has_table("scratch")
        finally:
            conn.close()


class TestDurableFacade:
    def test_skinnerdb_data_dir_round_trip(self, tmp_path):
        db = SkinnerDB(FAST, data_dir=tmp_path / "db")
        db.create_table("r", {"id": [1, 2, 3], "x": [10, 20, 30]})
        result = db.execute("SELECT r.x FROM r WHERE r.id = 2")
        assert [row["x"] for row in result.rows] == [20]
        db.close()

        # Facade mutations autocommit, so a reopen sees the table.
        reopened = SkinnerDB(FAST, data_dir=tmp_path / "db")
        result = reopened.execute("SELECT r.x FROM r WHERE r.id = 2")
        assert [row["x"] for row in result.rows] == [20]
        reopened.close()

    def test_cache_stats_in_info(self, tmp_path):
        conn = connect(FAST, data_dir=tmp_path / "db")
        try:
            seed_rs_schema(conn)
            conn.execute_direct("SELECT r.id, r.a FROM r")
            stats = conn.catalog.buffer_manager.cache_stats()
            assert stats is not None and stats["misses"] >= 1
        finally:
            conn.close()
