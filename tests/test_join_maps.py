"""Tests for the grouped-runs join maps of the Skinner preprocessor.

``GroupedJoinMap`` replaced the eager ``{decoded value: rows}`` dict with
the hash-join kernel's grouped-runs form plus a binary-search lookup.  The
lookup must preserve the dict's semantics *exactly* — the hash-jump of the
multi-way join and the eddy baseline probe it once per index advance:

* buckets are ascending filtered indices (stable grouping sort);
* float NaN keys and NaN probes never match (pinned join semantics);
* cross-type probes follow Python ``==``: ``1`` finds ``1.0`` and vice
  versa, but only under *exact* conversion (``2**53 + 1`` never finds
  ``2.0**53``), and string-vs-numeric probes match nothing.
"""

from __future__ import annotations

import numpy as np

from repro.engine.meter import CostMeter
from repro.query.predicates import column_equals_column
from repro.query.query import make_query
from repro.skinner.preprocessor import GroupedJoinMap, preprocess
from repro.storage.catalog import Catalog
from repro.storage.table import Table


def _map_for(column_values, column_name="c"):
    table = Table("t", {column_name: column_values})
    positions = np.arange(table.num_rows, dtype=np.int64)
    return GroupedJoinMap(table.column(column_name), positions)


class TestIntKeys:
    def test_buckets_are_ascending_filtered_indices(self):
        jmap = _map_for([5, 1, 5, 3, 5])
        assert list(jmap.get(5)) == [0, 2, 4]
        assert list(jmap.get(1)) == [1]
        assert jmap.get(2) is None

    def test_float_probe_matches_only_exact_integrals(self):
        jmap = _map_for([5, 1, 3])
        assert list(jmap.get(5.0)) == [0]
        assert jmap.get(5.5) is None
        assert jmap.get(float("inf")) is None
        assert jmap.get(float("nan")) is None

    def test_bool_probe_behaves_like_int(self):
        jmap = _map_for([0, 1, 2])
        assert list(jmap.get(True)) == [1]
        assert list(jmap.get(False)) == [0]

    def test_out_of_range_and_string_probes_match_nothing(self):
        jmap = _map_for([5, 1, 3])
        assert jmap.get(2**64) is None
        assert jmap.get(float(2**64)) is None
        assert jmap.get("5") is None
        assert jmap.get(None) is None
        assert jmap.get([5]) is None  # unhashable: never equal to a key


class TestFloatKeys:
    def test_nan_keys_never_match_any_probe(self):
        nan = float("nan")
        jmap = _map_for([1.0, nan, 2.5, nan])
        assert list(jmap.get(1.0)) == [0]
        assert list(jmap.get(2.5)) == [2]
        assert jmap.get(nan) is None
        assert jmap.get(float("nan")) is None

    def test_int_probe_requires_exact_float_conversion(self):
        jmap = _map_for([float(2**53), 1.0])
        assert list(jmap.get(2**53)) == [0]
        # float(2**53 + 1) rounds to 2.0**53; the dict path would not have
        # found a key equal to 2**53 + 1, so neither may this lookup.
        assert jmap.get(2**53 + 1) is None
        assert list(jmap.get(1)) == [1]


class TestStringKeys:
    def test_dictionary_codes_and_absent_values(self):
        jmap = _map_for(["b", "a", "b", "c"])
        assert list(jmap.get("b")) == [0, 2]
        assert list(jmap.get("c")) == [3]
        assert jmap.get("z") is None
        assert jmap.get(1) is None  # numeric vs string: Python == is False


class TestMemoAndEmpty:
    def test_empty_positions(self):
        table = Table("t", {"c": [1, 2, 3]})
        jmap = GroupedJoinMap(table.column("c"), np.empty(0, dtype=np.int64))
        assert len(jmap) == 0
        assert jmap.get(1) is None

    def test_repeated_probes_hit_the_memo(self):
        jmap = _map_for([5, 1, 5])
        first = jmap.get(5)
        assert jmap.get(5) is first  # same cached array, no re-search
        assert jmap.get(7) is None
        assert jmap.get(7) is None

    def test_contains_delegates_to_get(self):
        jmap = _map_for([5, 1])
        assert 5 in jmap
        assert 2 not in jmap


def test_preprocessor_builds_grouped_maps_and_charges_scan():
    catalog = Catalog()
    catalog.add_table(Table("r", {"k": [1, 2, 2, 3]}))
    catalog.add_table(Table("s", {"k": [2, 3, 3]}))
    query = make_query(["r", "s"], predicates=[column_equals_column("r", "k", "s", "k")])
    meter = CostMeter()
    prepared = preprocess(catalog, query, None, meter)
    assert set(prepared.join_maps) == {("r", "k"), ("s", "k")}
    assert isinstance(prepared.join_maps[("r", "k")], GroupedJoinMap)
    assert list(prepared.join_maps[("r", "k")].get(2)) == [1, 2]
    assert list(prepared.join_maps[("s", "k")].get(3)) == [1, 2]
    # Build work is charged as scan: filtering (4 + 3) + map build (4 + 3).
    assert meter.tuples_scanned == 14
