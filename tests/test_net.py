"""Tests for the network front door: DSN connect, wire protocol, tenants.

The acceptance properties of the remote transport:

* a query via local ``connect()`` and via ``repro://`` against a live
  server in the same process returns **byte-identical rows and identical
  meter charges**, including under concurrent multi-tenant interleaving;
* a mid-stream client disconnect (socket drop or ``close()`` during
  fetch) cancels the serving session and releases its admission slot;
* typed errors cross the wire as their original classes; capability
  limits raise :class:`InterfaceError` client-side;
* tenant backpressure bounds a flooding tenant's backlog without
  deadlocking its own submissions.
"""

import random
import threading

import pytest

from repro import InterfaceError, ReproError, SkinnerConfig, connect
from repro.errors import OperationalError, ParseError
from repro.net.client import DEFAULT_PORT, RemoteTransport, parse_dsn
from repro.net.server import ServerThread

#: Mirrors the FAST config of test_api_cursor.py: quick convergence, no
#: warm start so served runs are solo-equivalent for charge comparisons.
FAST = SkinnerConfig(
    slice_budget=64,
    batches_per_table=3,
    base_timeout=200,
    serving_warm_start=False,
)


def seed_rs_schema(conn):
    conn.create_table("r", {
        "id": [1, 2, 3, 4, 5, 6],
        "a": [10, 20, 10, 30, 20, 10],
        "name": ["ann", "bob", "cat", "dan", "eve", "fox"],
    })
    conn.create_table("s", {
        "rid": [1, 1, 2, 3, 5, 6, 6],
        "c": [7, 8, 9, 7, 8, 9, 7],
    })
    conn.commit()


@pytest.fixture()
def server():
    with ServerThread(config=FAST) as live:
        seed_rs_schema(live.connection)
        yield live


@pytest.fixture()
def remote(server):
    conn = connect(server.dsn)
    yield conn
    conn.close()


class TestDsnParsing:
    def test_full_dsn(self):
        assert parse_dsn(
            "repro://db.example:8123/?tenant=ops&timeout=2.5&workers=4"
            "&data_dir=/var/lib/repro&engine=Skinner-G"
        ) == ("db.example", 8123, "ops", 2.5, 4, "/var/lib/repro", "skinner-g")

    def test_defaults(self):
        assert parse_dsn("repro://localhost/") == (
            "localhost", DEFAULT_PORT, None, None, None, None, None
        )

    def test_rejects_blank_data_dir(self):
        with pytest.raises(InterfaceError, match="data_dir"):
            parse_dsn("repro://localhost/?data_dir=")

    def test_rejects_bad_workers(self):
        with pytest.raises(InterfaceError, match="workers"):
            parse_dsn("repro://localhost/?workers=zero")
        with pytest.raises(InterfaceError, match="workers"):
            parse_dsn("repro://localhost/?workers=0")

    def test_rejects_wrong_scheme(self):
        with pytest.raises(InterfaceError, match="scheme"):
            parse_dsn("postgres://localhost/")

    def test_rejects_unknown_parameters(self):
        with pytest.raises(InterfaceError, match="tennant"):
            parse_dsn("repro://localhost/?tennant=oops")

    def test_rejects_path(self):
        with pytest.raises(InterfaceError, match="path"):
            parse_dsn("repro://localhost/mydb")

    def test_keyword_overrides_beat_dsn(self, server):
        conn = connect(server.dsn + "?tenant=from_dsn", tenant="from_kwarg")
        try:
            assert conn.tenant == "from_kwarg"
        finally:
            conn.close()

    def test_connect_refused_maps_to_operational_error(self):
        with pytest.raises(OperationalError, match="cannot connect"):
            connect("repro://127.0.0.1:1/")  # port 1: nothing listens


class TestRemoteBasics:
    def test_remote_flag_and_tenant(self, server):
        conn = connect(server.dsn + "?tenant=alice")
        try:
            assert conn.is_remote and conn.tenant == "alice"
            assert conn.catalog is None and conn.config is None
        finally:
            conn.close()

    def test_cursor_roundtrip_with_parameters(self, remote):
        cursor = remote.cursor()
        cursor.execute(
            "SELECT r.name, s.c FROM r, s WHERE r.id = s.rid AND r.a = ?", (10,)
        )
        assert [entry[0] for entry in cursor.description] == ["name", "c"]
        rows = cursor.fetchall()
        assert sorted(rows) == [("ann", 7), ("ann", 8), ("cat", 7),
                                ("fox", 7), ("fox", 9)]
        assert cursor.rowcount == 5

    def test_connection_execute_returns_result_with_metrics(self, remote):
        result = remote.execute("SELECT COUNT(*) AS n FROM r")
        assert result.rows == [{"n": 6}]
        assert result.metrics.engine == "skinner-c"
        assert result.metrics.work.total > 0

    def test_stats_verb_reports_tenants_and_caches(self, remote):
        remote.execute("SELECT COUNT(*) AS n FROM s")
        stats = remote.stats()
        assert stats["protocol_version"] == 1
        assert stats["clients"] >= 1
        assert "default" in stats["tenants"]
        assert "result_cache" in stats and "order_cache" in stats

    def test_schema_mutation_and_rollback_over_the_wire(self, remote):
        remote.create_table("t", {"x": [1, 2, 3]})
        assert remote.execute("SELECT COUNT(*) AS n FROM t").rows == [{"n": 3}]
        remote.rollback()
        with pytest.raises(ReproError, match="does not exist"):
            remote.execute("SELECT COUNT(*) AS n FROM t").rows  # noqa: B018

    def test_local_only_capabilities_raise_interface_error(self, remote):
        with pytest.raises(InterfaceError, match="remote"):
            remote.server  # noqa: B018
        with pytest.raises(InterfaceError, match="remote"):
            remote.parse("SELECT r.id FROM r")
        with pytest.raises(InterfaceError, match="remote"):
            remote.execute_direct("SELECT r.id FROM r")
        with pytest.raises(InterfaceError, match="UDF"):
            remote.register_udf("f", lambda x: x)

    def test_prebuilt_query_rejected_client_side(self, server, remote):
        query = server.connection.parse("SELECT r.id FROM r")
        with pytest.raises(InterfaceError, match="SQL text"):
            remote.cursor().execute(query)

    def test_close_is_idempotent_and_use_after_close_raises(self, remote):
        cursor = remote.cursor()
        cursor.execute("SELECT r.id FROM r")
        remote.close()
        remote.close()
        with pytest.raises(InterfaceError, match="connection is closed"):
            remote.cursor()
        # Connection.close() closes its cursors, so the cursor-level check
        # fires first — still an InterfaceError per PEP 249.
        with pytest.raises(InterfaceError, match="cursor is closed"):
            cursor.fetchall()


class TestErrorMapping:
    def test_parse_error_crosses_the_wire_with_position(self, remote):
        cursor = remote.cursor()
        with pytest.raises(ParseError) as excinfo:
            cursor.execute("SELECT r.x FROM r WHERE")
        assert excinfo.value.position == 23

    def test_execution_error_surfaces_at_fetch_like_local(self, server, remote):
        # Unknown tables pass parsing and fail during execution — the wire
        # must preserve that local staging, and the class.
        local = connect(FAST)
        seed_rs_schema(local)
        local_cursor = local.cursor()
        local_cursor.execute("SELECT nope.x FROM nope")
        with pytest.raises(ReproError) as local_err:
            local_cursor.fetchall()
        remote_cursor = remote.cursor()
        remote_cursor.execute("SELECT nope.x FROM nope")
        with pytest.raises(ReproError) as remote_err:
            remote_cursor.fetchall()
        assert type(remote_err.value).__name__ == type(local_err.value).__name__
        assert str(remote_err.value) == str(local_err.value)


def _random_query(rng: random.Random) -> str:
    """A randomized SPJ(+postprocessing) query over the r/s fixtures."""
    shape = rng.randrange(4)
    if shape == 0:
        return rng.choice([
            "SELECT r.id, r.a FROM r",
            "SELECT r.id, r.a FROM r WHERE r.a > 10",
        ])
    if shape == 1:
        return "SELECT r.name, s.c FROM r, s WHERE r.id = s.rid"
    if shape == 2:
        return "SELECT r.a, COUNT(*) AS n FROM r, s WHERE r.id = s.rid GROUP BY r.a"
    return "SELECT r.name FROM r ORDER BY r.name LIMIT 3"


class TestRemoteLocalByteIdentical:
    """Acceptance: repro:// and local connect() agree byte for byte."""

    def test_rows_and_charges_identical_across_transports(self, server):
        rng = random.Random(2024)
        local = connect(FAST)
        seed_rs_schema(local)
        remote_conn = connect(server.dsn)
        try:
            for _ in range(8):
                sql = _random_query(rng)
                local_cursor = local.cursor()
                local_cursor.execute(sql, use_result_cache=False)
                local_rows = local_cursor.fetchall()
                local_work = local_cursor.result().metrics.work
                remote_cursor = remote_conn.cursor()
                remote_cursor.execute(sql, use_result_cache=False)
                remote_rows = remote_cursor.fetchall()
                remote_work = remote_cursor.result().metrics.work
                assert remote_rows == local_rows, sql
                assert remote_work == local_work, sql
        finally:
            remote_conn.close()

    def test_concurrent_multi_tenant_interleaving_stays_identical(self, server):
        # References: each query solo on a fresh local connection.
        queries = [_random_query(random.Random(seed)) for seed in range(6)]
        references = []
        for sql in queries:
            local = connect(FAST)
            seed_rs_schema(local)
            cursor = local.cursor()
            cursor.execute(sql, use_result_cache=False)
            references.append((cursor.fetchall(), cursor.result().metrics.work))

        results: dict[int, tuple] = {}
        errors: list[BaseException] = []

        def client(index: int, sql: str) -> None:
            try:
                conn = connect(server.dsn, tenant=f"tenant{index % 3}")
                try:
                    cursor = conn.cursor()
                    cursor.execute(sql, use_result_cache=False)
                    rows = cursor.fetchall()
                    work = cursor.result().metrics.work
                    results[index] = (rows, work)
                finally:
                    conn.close()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(index, sql))
            for index, sql in enumerate(queries)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(results) == len(queries)
        for index, (rows, work) in results.items():
            expected_rows, expected_work = references[index]
            assert rows == expected_rows, queries[index]
            assert work == expected_work, queries[index]


class TestMidStreamDisconnect:
    """Acceptance: a vanished client cannot leak admission slots."""

    @staticmethod
    def _streaming_server(**overrides):
        config = FAST.with_overrides(
            slice_budget=500, serving_max_inflight=1, **overrides
        )
        live = ServerThread(config=config).start()
        rng = random.Random(11)
        rows, keys = 3000, 1000
        live.connection.create_table("a", {
            "k": [rng.randrange(keys) for _ in range(rows)],
            "v": [rng.randrange(100) for _ in range(rows)],
        })
        live.connection.create_table("b", {
            "k": [rng.randrange(keys) for _ in range(rows)],
            "w": [rng.randrange(100) for _ in range(rows)],
        })
        live.connection.commit()
        return live

    SQL = "SELECT a.v, b.w FROM a, b WHERE a.k = b.k AND a.v < 10"

    def _assert_slot_released(self, live):
        # The slot is free when a second client's query can complete.
        probe = connect(live.dsn)
        try:
            result = probe.execute("SELECT COUNT(*) AS n FROM a",
                                   use_result_cache=False)
            assert result.rows == [{"n": 3000}]
            stats = probe.stats()
            assert stats["inflight"] == 0 and stats["queued"] == 0
        finally:
            probe.close()

    def test_cursor_close_mid_stream_releases_slot(self):
        live = self._streaming_server()
        try:
            conn = connect(live.dsn)
            cursor = conn.cursor()
            cursor.execute(self.SQL, use_result_cache=False)
            assert cursor.fetchmany(3)  # streaming, holding the only slot
            cursor.close()  # client-side cancel+forget over the wire
            self._assert_slot_released(live)
            conn.close()
        finally:
            live.stop()

    def test_socket_drop_mid_stream_releases_slot(self):
        live = self._streaming_server()
        try:
            conn = connect(live.dsn)
            cursor = conn.cursor()
            cursor.execute(self.SQL, use_result_cache=False)
            assert cursor.fetchmany(3)
            # Hard drop: no cancel verb ever reaches the server; its
            # disconnect cleanup must cancel the session.
            conn.transport._channel._teardown()
            self._assert_slot_released(live)
        finally:
            live.stop()


class TestBackpressure:
    def test_flooding_tenant_backlog_stays_bounded(self):
        bound = 2
        live = ServerThread(
            config=FAST.with_overrides(serving_tenant_backlog=bound)
        ).start()
        try:
            seed_rs_schema(live.connection)
            transport = RemoteTransport.from_dsn(live.dsn, tenant="flood")
            try:
                tickets = []
                for _ in range(bound * 3):
                    handle = transport.submit(
                        "SELECT r.name, s.c FROM r, s WHERE r.id = s.rid",
                        None,
                        engine="skinner-c", profile="postgres", config=None,
                        threads=1, forced_order=None, use_result_cache=False,
                        weight=1.0, priority=0, stream=True,
                    )
                    tickets.append(handle.ticket)
                    # The gate runs before the *next* request is read, so at
                    # the moment a submit response arrives the tenant's
                    # backlog can never exceed the bound.
                    backlog = transport.stats()["tenants"]["flood"]["backlog"]
                    assert backlog <= bound
                # No deadlock: every gated submission still completes.
                for ticket in tickets:
                    rows = []
                    while True:
                        batch = transport.fetch(ticket, None)
                        if not batch:
                            break
                        rows.extend(batch)
                    assert len(rows) == 7
                    transport.forget(ticket)
            finally:
                transport.close()
        finally:
            live.stop()


class TestServerLifecycle:
    def test_clean_shutdown_refuses_new_connections(self):
        live = ServerThread(config=FAST).start()
        dsn = live.dsn
        conn = connect(dsn)
        assert conn.is_remote
        conn.close()
        live.stop()
        with pytest.raises(OperationalError):
            connect(dsn)

    def test_shutdown_wakes_parked_fetches(self):
        live = ServerThread(config=FAST).start()
        seed_rs_schema(live.connection)
        conn = connect(live.dsn)
        transport = conn.transport
        # Submit nothing and park a fetch on a never-finishing wait by
        # polling a ticket that exists but is starved: simplest robust
        # variant — stop the server while a result() wait is in flight.
        handle = transport.submit(
            "SELECT r.id FROM r", None,
            engine="skinner-c", profile="postgres", config=None, threads=1,
            forced_order=None, use_result_cache=False, weight=1.0,
            priority=0, stream=True,
        )
        stopper = threading.Timer(0.2, live.stop)
        stopper.start()
        try:
            # Either the query finishes before the stop lands (rows) or the
            # shutdown surfaces as OperationalError — never a hang.
            transport.fetch(handle.ticket, None)
        except OperationalError:
            pass
        finally:
            stopper.join()
            conn.close()
