"""Unit tests for the durable storage core: WAL, page cache, buffer managers.

These pin the mechanics the higher-level durability properties rest on:
record framing and torn-tail detection in the write-ahead log, LRU
accounting in the page cache, and the recovery / checkpoint / rollback
protocol of :class:`DurableBufferManager` in isolation (no connection or
executor involved).
"""

from __future__ import annotations

import json
import zlib

import numpy as np
import pytest

from repro.errors import InterfaceError
from repro.storage.buffer import InMemoryBufferManager, PageCache
from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType
from repro.storage.durable import FORMAT_VERSION, DurableBufferManager
from repro.storage.table import Table
from repro.storage.wal import COMMIT_OP, RECORD_HEADER, WriteAheadLog


class TestWriteAheadLog:
    def test_append_read_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append({"op": "add_table", "name": "t"})
        wal.append({"op": "ingest", "name": "t", "fingerprint": "abc"})
        wal.commit()
        records, clean = wal.read_records()
        assert clean
        assert [r["op"] for _, r in records] == ["add_table", "ingest", COMMIT_OP]
        # End offsets are strictly increasing and the last one is the size.
        offsets = [end for end, _ in records]
        assert offsets == sorted(set(offsets))
        assert offsets[-1] == wal.size()
        wal.close()

    def test_uncommitted_counter(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        assert wal.uncommitted_records == 0
        wal.append({"op": "add_table", "name": "a"})
        wal.append({"op": "add_table", "name": "b"})
        assert wal.uncommitted_records == 2
        wal.commit()
        assert wal.uncommitted_records == 0
        wal.close()

    def test_torn_header_detected(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"op": "add_table", "name": "t"})
        wal.close()
        with open(path, "ab") as handle:
            handle.write(b"\x03")  # torn header: fewer than 8 bytes
        records, clean = WriteAheadLog(path).read_records()
        assert not clean
        assert [r["op"] for _, r in records] == ["add_table"]

    def test_torn_payload_detected(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"op": "add_table", "name": "t"})
        wal.close()
        payload = b'{"op": "drop_table"}'
        with open(path, "ab") as handle:
            handle.write(RECORD_HEADER.pack(len(payload), zlib.crc32(payload)))
            handle.write(payload[:5])  # payload cut short
        records, clean = WriteAheadLog(path).read_records()
        assert not clean
        assert len(records) == 1

    def test_crc_mismatch_detected(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"op": "add_table", "name": "t"})
        end = wal.size()
        wal.append({"op": "drop_table", "name": "t"})
        wal.close()
        raw = bytearray(path.read_bytes())
        raw[end + RECORD_HEADER.size] ^= 0xFF  # flip a payload byte
        path.write_bytes(bytes(raw))
        records, clean = WriteAheadLog(path).read_records()
        assert not clean
        assert [r["op"] for _, r in records] == ["add_table"]

    def test_committed_prefix_stops_at_last_commit(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append({"op": "add_table", "name": "a"})
        wal.commit()
        wal.append({"op": "add_table", "name": "b"})
        wal.commit()
        wal.append({"op": "add_table", "name": "c"})  # uncommitted tail
        records, clean = wal.read_records()
        assert clean
        committed = WriteAheadLog.committed_prefix(records)
        assert [r["name"] for r in committed] == ["a", "b"]
        assert all(r["op"] != COMMIT_OP for r in committed)
        wal.close()

    def test_committed_prefix_empty_without_commit(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append({"op": "add_table", "name": "a"})
        records, _ = wal.read_records()
        assert WriteAheadLog.committed_prefix(records) == []
        wal.close()

    def test_truncate_rolls_back_to_mark(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append({"op": "add_table", "name": "keep"})
        mark = wal.size()
        wal.append({"op": "add_table", "name": "discard"})
        wal.truncate(mark)
        records, clean = wal.read_records()
        assert clean
        assert [r["name"] for _, r in records] == ["keep"]
        wal.close()

    def test_missing_file_reads_empty(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "nope.log")
        assert wal.size() == 0
        assert wal.read_records() == ([], True)


class TestPageCache:
    def _array(self, n: int) -> np.ndarray:
        return np.arange(n, dtype=np.int64)

    def test_hit_miss_counting(self):
        cache = PageCache(1 << 20)
        a = cache.get("k", lambda: self._array(4))
        b = cache.get("k", lambda: self._array(4))
        assert a is b
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_eviction_under_capacity_pressure(self):
        cache = PageCache(3 * 8 * 10)  # room for three 10-element int64 arrays
        for key in "abcd":
            cache.get(key, lambda: self._array(10))
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 3
        assert stats["cached_bytes"] <= stats["capacity_bytes"]
        # "a" was least recently used — reloading it is a miss.
        misses = cache.misses
        cache.get("a", lambda: self._array(10))
        assert cache.misses == misses + 1

    def test_lru_order_refreshed_on_hit(self):
        cache = PageCache(2 * 8 * 10)
        cache.get("a", lambda: self._array(10))
        cache.get("b", lambda: self._array(10))
        cache.get("a", lambda: self._array(10))  # refresh "a"
        cache.get("c", lambda: self._array(10))  # evicts "b", not "a"
        hits = cache.hits
        cache.get("a", lambda: self._array(10))
        assert cache.hits == hits + 1

    def test_keeps_at_least_one_entry(self):
        cache = PageCache(8)  # smaller than any array
        array = cache.get("big", lambda: self._array(100))
        assert cache.stats()["entries"] == 1
        assert cache.get("big", lambda: self._array(100)) is array

    def test_invalidate_and_clear(self):
        cache = PageCache(1 << 20)
        cache.get("a", lambda: self._array(10))
        cache.invalidate("a")
        assert cache.stats()["entries"] == 0
        assert cache.stats()["cached_bytes"] == 0
        cache.get("a", lambda: self._array(10))
        cache.clear()
        assert cache.stats()["entries"] == 0
        assert cache.stats()["misses"] == 2  # statistics survive clear()


def _table() -> Table:
    return Table("t", {
        "id": [1, 2, 3],
        "name": ["x", "y", "x"],
        "score": [1.5, -2.0, 0.25],
    })


def _rows(table: Table) -> list[dict]:
    return [table.row(i) for i in range(table.num_rows)]


class TestDurableBufferManager:
    def test_round_trip_across_reopen(self, tmp_path):
        manager = DurableBufferManager(tmp_path)
        manager.bootstrap()
        stored = manager.register_table(_table())
        manager.commit()
        manager.close()

        reopened = DurableBufferManager(tmp_path)
        tables = reopened.bootstrap()
        assert list(tables) == ["t"]
        assert _rows(tables["t"]) == _rows(stored)
        assert tables["t"].column("name").ctype is ColumnType.STRING
        assert reopened.recovery_info["torn_tail"] is False
        reopened.close()

    def test_uncommitted_mutations_discarded_on_reopen(self, tmp_path):
        manager = DurableBufferManager(tmp_path)
        manager.bootstrap()
        manager.register_table(_table())
        manager.commit()
        manager.register_table(Table("uncommitted", {"a": [1]}))
        # No commit, no close: simulate the process dying here.
        manager._wal.close()

        reopened = DurableBufferManager(tmp_path)
        tables = reopened.bootstrap()
        assert list(tables) == ["t"]
        assert reopened.recovery_info["replayed_records"] == 1  # committed add
        assert reopened.recovery_info["discarded_records"] == 1
        reopened.close()

    def test_recovery_replays_committed_wal(self, tmp_path):
        manager = DurableBufferManager(tmp_path, checkpoint_bytes=1 << 30)
        manager.bootstrap()
        manager.register_table(_table())
        manager.record_ingest("t", "fp-1")
        manager.commit()  # fsynced commit record, but WAL below threshold
        manager._wal.close()  # no checkpointing close — WAL still holds it

        reopened = DurableBufferManager(tmp_path)
        tables = reopened.bootstrap()
        assert list(tables) == ["t"]
        assert reopened.ingest_fingerprint("t") == "fp-1"
        assert reopened.recovery_info["replayed_records"] == 2
        reopened.close()

    def test_checkpoint_removes_orphan_column_files(self, tmp_path):
        manager = DurableBufferManager(tmp_path)
        manager.bootstrap()
        manager.register_table(_table())
        manager.commit()
        before = {p.name for p in (tmp_path / "cols").iterdir()}
        manager.register_table(_table(), replace=True)  # new generation
        manager.commit()
        manager.close()
        after = {p.name for p in (tmp_path / "cols").iterdir()}
        assert before.isdisjoint(after)  # old generation's files deleted
        assert len(after) == len(before)

    def test_rollback_via_wal_mark(self, tmp_path):
        manager = DurableBufferManager(tmp_path)
        tables = manager.bootstrap()
        tables = {"t": manager.register_table(_table())}
        manager.commit()
        mark = manager.snapshot(tables)
        manager.register_table(Table("extra", {"a": [1, 2]}))
        manager.drop_table("t")
        restored = manager.restore(mark)
        assert list(restored) == ["t"]
        assert _rows(restored["t"]) == _rows(_table())
        manager.close()

    def test_generations_stay_monotonic_across_rollback(self, tmp_path):
        manager = DurableBufferManager(tmp_path)
        manager.bootstrap()
        tables = {"t": manager.register_table(_table())}
        manager.commit()
        mark = manager.snapshot(tables)
        doomed = manager.register_table(Table("doomed", {"a": [7, 8, 9]}))
        manager.restore(mark)
        replacement = manager.register_table(Table("doomed", {"a": [1]}))
        # The rolled-back registration's file must not be reused: the live
        # `doomed` column object still maps the old generation's file.
        assert replacement.column("a").source.path != doomed.column("a").source.path
        assert doomed.column("a").values() == [7, 8, 9]
        manager.close()

    def test_format_version_mismatch_raises(self, tmp_path):
        manager = DurableBufferManager(tmp_path)
        manager.bootstrap()
        manager.close()
        catalog_path = tmp_path / "catalog.json"
        state = json.loads(catalog_path.read_text())
        state["format_version"] = FORMAT_VERSION + 1
        catalog_path.write_text(json.dumps(state))
        with pytest.raises(InterfaceError, match="format version"):
            DurableBufferManager(tmp_path).bootstrap()

    def test_corrupt_catalog_json_raises(self, tmp_path):
        (tmp_path / "catalog.json").write_text("{not json")
        with pytest.raises(InterfaceError, match="corrupt"):
            DurableBufferManager(tmp_path).bootstrap()

    def test_data_dir_that_is_a_file_raises(self, tmp_path):
        path = tmp_path / "not-a-dir"
        path.write_text("")
        with pytest.raises(InterfaceError, match="not a directory"):
            DurableBufferManager(path).bootstrap()

    def test_cache_stats_exposed(self, tmp_path):
        manager = DurableBufferManager(tmp_path)
        manager.bootstrap()
        table = manager.register_table(_table())
        table.column("id").values()
        table.column("id").values()
        stats = manager.cache_stats()
        assert stats is not None
        assert stats["misses"] >= 1
        assert stats["hits"] >= 1
        manager.commit()
        manager.close()

    def test_string_dictionary_survives_reopen(self, tmp_path):
        manager = DurableBufferManager(tmp_path)
        manager.bootstrap()
        manager.register_table(_table())
        manager.commit()
        manager.close()
        tables = DurableBufferManager(tmp_path).bootstrap()
        column = tables["t"].column("name")
        assert column.values() == ["x", "y", "x"]
        assert column.source is not None
        assert column.source.dictionary_path is not None


class TestInMemoryBufferManager:
    def test_snapshot_restore_round_trip(self):
        manager = InMemoryBufferManager()
        tables = {"t": _table()}
        manager.record_ingest("t", "fp")
        token = manager.snapshot(tables)
        manager.record_ingest("u", "fp2")
        restored = manager.restore(token)
        assert restored == tables
        assert manager.ingest_fingerprint("u") is None
        assert manager.ingest_fingerprint("t") == "fp"

    def test_not_durable(self):
        manager = InMemoryBufferManager()
        assert manager.durable is False
        assert manager.data_dir is None
        assert manager.cache_stats() is None


class TestCatalogBackends:
    """The catalog behaves identically over either backend."""

    @pytest.fixture(params=["memory", "durable"])
    def catalog(self, request, tmp_path):
        if request.param == "memory":
            yield Catalog()
        else:
            catalog = Catalog(DurableBufferManager(tmp_path))
            yield catalog
            catalog.close()

    def test_add_table_and_read(self, catalog):
        catalog.add_table(_table())
        assert _rows(catalog.table("t")) == _rows(_table())

    def test_snapshot_restore_drops_new_tables(self, catalog):
        catalog.add_table(_table())
        token = catalog.snapshot()
        catalog.add_table(Table("extra", {"a": [1]}))
        catalog.restore(token)
        assert catalog.table_names() == ["t"]

    def test_column_equality_across_backends(self, tmp_path):
        memory = Catalog()
        memory.add_table(_table())
        durable = Catalog(DurableBufferManager(tmp_path))
        durable.add_table(_table())
        for name in ("id", "name", "score"):
            mem_col = memory.table("t").column(name)
            dur_col = durable.table("t").column(name)
            assert mem_col == dur_col
            assert hash(mem_col) == hash(dur_col)
        durable.close()


class TestColumnHashEqConsistency:
    """Satellite: equal columns must hash equal (regression)."""

    def test_string_columns_with_different_dictionary_orders(self):
        # Same logical values, built so dictionary insertion order differs.
        a = Column(["b", "a", "b"], ColumnType.STRING)
        b = Column.from_physical(
            np.array([0, 1, 0], dtype=np.int64)[::-1][::-1],
            ColumnType.STRING,
            dictionary=["b", "a"],
        )
        c = Column.from_physical(
            np.array([1, 0, 1], dtype=np.int64),
            ColumnType.STRING,
            dictionary=["a", "b"],
        )
        assert a == b == c
        assert hash(a) == hash(b) == hash(c)

    def test_signed_zero_floats(self):
        plus = Column([0.0, 1.0], ColumnType.FLOAT)
        minus = Column([-0.0, 1.0], ColumnType.FLOAT)
        assert plus == minus
        assert hash(plus) == hash(minus)

    def test_int_columns(self):
        a = Column([1, 2, 3], ColumnType.INT)
        b = Column.from_physical(np.array([1, 2, 3], dtype=np.int64), ColumnType.INT)
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_columns_differ(self):
        assert Column([1, 2], ColumnType.INT) != Column([2, 1], ColumnType.INT)
        assert Column(["a"], ColumnType.STRING) != Column(["b"], ColumnType.STRING)
