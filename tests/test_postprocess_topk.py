"""Equivalence tests for the streamed top-k (argpartition) ordering path.

For ORDER BY + LIMIT queries the columnar pipeline selects the top ``k``
rows with ``np.argpartition`` on the primary sort key and only stably sorts
the candidate set.  These tests pin the path to be *identical* to the
full-sort reference on its trickiest inputs: massive ties (where an
unstable partition could legally pick any tied subset), descending keys,
multi-key ordering where the secondary key disagrees with the primary, NaN
sort keys (which fall back to the full sort), and limits around the result
size.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.postprocess import _topk_selector, post_process
from repro.engine.relation import RowIdRelation
from repro.query.expressions import ColumnRef
from repro.query.query import OrderItem, SelectItem, make_query
from repro.storage.table import Table

from test_postprocess_columnar import assert_tables_identical


def _relation(table: Table) -> RowIdRelation:
    return RowIdRelation.from_base("t", np.arange(table.num_rows, dtype=np.int64))


def _query(order_by, limit, distinct=False):
    items = [SelectItem(expression=ColumnRef("t", name), alias=name)
             for name in ("k", "tie", "v")]
    return make_query([("t", "base")], select_items=items,
                      order_by=order_by, limit=limit, distinct=distinct)


def run_both(query, table):
    expected = post_process(query, _relation(table), {"t": table}, mode="rows")
    actual = post_process(query, _relation(table), {"t": table}, mode="columnar")
    assert_tables_identical(expected, actual)
    return actual


@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.data())
def test_topk_matches_full_sort(data):
    """Random heavily-tied tables: top-k == stable full sort + slice."""
    num_rows = data.draw(st.integers(0, 40))
    table = Table("base", {
        # Few distinct values: ties are the norm, not the exception.
        "k": [data.draw(st.integers(0, 4)) for _ in range(num_rows)],
        "tie": [data.draw(st.integers(0, 2)) for _ in range(num_rows)],
        "v": list(range(num_rows)),
    })
    keys = data.draw(st.lists(
        st.tuples(st.sampled_from(["k", "tie", "v"]), st.booleans()),
        min_size=1, max_size=3))
    order_by = [OrderItem(ColumnRef("t", name), ascending=asc) for name, asc in keys]
    limit = data.draw(st.integers(0, num_rows + 2))
    run_both(_query(order_by, limit, distinct=data.draw(st.booleans())), table)


def test_topk_all_ties_resolves_stably():
    """A constant primary key: the limit must keep the first rows."""
    table = Table("base", {"k": [7] * 12, "tie": [0] * 12, "v": list(range(12))})
    result = run_both(_query([OrderItem(ColumnRef("t", "k"))], limit=5), table)
    assert result.column("v").values() == [0, 1, 2, 3, 4]


def test_topk_descending_with_secondary_key():
    table = Table("base", {
        "k": [3, 1, 3, 2, 3, 1],
        "tie": [9, 8, 7, 6, 5, 4],
        "v": [0, 1, 2, 3, 4, 5],
    })
    order_by = [OrderItem(ColumnRef("t", "k"), ascending=False),
                OrderItem(ColumnRef("t", "tie"), ascending=True)]
    result = run_both(_query(order_by, limit=3), table)
    assert result.column("v").values() == [4, 2, 0]


def test_topk_with_nan_sort_keys_falls_back_to_full_sort():
    """NaN sort keys: the streamed path must equal the columnar full sort.

    (The row pipeline's Python ``sorted`` has no defined NaN ordering, so
    the reference here is the columnar full sort — NaN last — which is what
    the limit-less query uses.)
    """
    nan = float("nan")
    table = Table("base", {
        "k": [nan, 2.0, nan, 1.0, nan, 3.0],
        "tie": [0, 0, 0, 0, 0, 0],
        "v": [0, 1, 2, 3, 4, 5],
    })
    order_by = [OrderItem(ColumnRef("t", "k"))]
    full = post_process(_query(order_by, limit=None), _relation(table),
                        {"t": table}, mode="columnar")
    # limit larger than the non-NaN count: the pivot becomes NaN and the
    # streamed path must defer to the full sort instead of dropping rows.
    for limit in (2, 5):
        limited = post_process(_query(order_by, limit=limit), _relation(table),
                               {"t": table}, mode="columnar")
        assert limited.num_rows == limit
        assert limited.column("v").values() == full.column("v").values()[:limit]


def test_topk_string_keys_use_rank_encoding():
    table = Table("base", {
        "k": ["pear", "apple", "pear", "fig", "apple", "date"],
        "tie": [1, 2, 3, 4, 5, 6],
        "v": [0, 1, 2, 3, 4, 5],
    })
    result = run_both(_query([OrderItem(ColumnRef("t", "k"))], limit=3), table)
    assert result.column("k").values() == ["apple", "apple", "date"]


def test_topk_selector_direct_equivalence():
    """The selector itself equals lexsort + slice on random tied inputs."""
    rng = np.random.default_rng(7)
    for _ in range(50):
        length = int(rng.integers(1, 60))
        primary = rng.integers(0, 5, size=length).astype(np.int64)
        secondary = rng.integers(-3, 3, size=length).astype(np.int64)
        limit = int(rng.integers(0, length + 1))
        if limit >= length:
            continue
        keys = [primary, secondary]
        expected = np.lexsort((secondary, primary))[:limit]
        actual = _topk_selector(keys, length, limit)
        assert actual is not None
        np.testing.assert_array_equal(actual, expected)
