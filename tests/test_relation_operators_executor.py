"""Unit and differential tests for row-id relations, operators, and the executor."""

import numpy as np
import pytest

from repro.engine.executor import PlanExecutor
from repro.engine.meter import CostMeter
from repro.engine.operators import filter_table, hash_join_step, nested_loop_step
from repro.engine.relation import RowIdRelation
from repro.errors import BudgetExceeded, ExecutionError, PlanningError
from repro.query.predicates import column_compare_literal, column_equals_column
from repro.query.query import make_query
from tests.conftest import reference_join_tuples


class TestRowIdRelation:
    def test_from_base_and_len(self):
        relation = RowIdRelation.from_base("t", [0, 2, 4])
        assert len(relation) == 3
        assert relation.aliases == ["t"]
        assert relation.ids("t").tolist() == [0, 2, 4]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ExecutionError):
            RowIdRelation({"a": np.array([1, 2]), "b": np.array([1])})

    def test_unknown_alias_raises(self):
        with pytest.raises(ExecutionError):
            RowIdRelation.from_base("t", [1]).ids("other")

    def test_extend_and_take(self):
        relation = RowIdRelation.from_base("a", [10, 20])
        extended = relation.extend("b", np.array([7, 8, 9]), np.array([0, 0, 1]))
        assert len(extended) == 3
        assert extended.ids("a").tolist() == [10, 10, 20]
        taken = extended.take(np.array([2]))
        assert taken.ids("b").tolist() == [9]

    def test_index_tuples_round_trip(self):
        tuples = [(1, 5), (2, 6)]
        relation = RowIdRelation.from_index_tuples(["a", "b"], tuples)
        assert relation.index_tuples(["a", "b"]) == tuples
        assert relation.index_tuples(["b", "a"]) == [(5, 1), (6, 2)]

    def test_empty(self):
        relation = RowIdRelation.empty(["a", "b"])
        assert len(relation) == 0
        assert relation.index_tuples() == []

    def test_binding_materializes_values(self, tiny_catalog):
        relation = RowIdRelation.from_index_tuples(["c"], [(1,)])
        binding = relation.binding(0, {"c": tiny_catalog.table("customers")})
        assert binding["c"]["country"] == "de"


class TestOperators:
    def test_filter_table_applies_predicates(self, tiny_catalog):
        meter = CostMeter()
        customers = tiny_catalog.table("customers")
        positions = filter_table(
            customers, "c", [column_compare_literal("c", "country", "=", "de")], meter
        )
        assert positions.tolist() == [1, 4]
        assert meter.tuples_scanned == customers.num_rows
        assert meter.predicate_evals == customers.num_rows

    def test_filter_table_multiple_predicates_short_circuit(self, tiny_catalog):
        meter = CostMeter()
        positions = filter_table(
            tiny_catalog.table("customers"), "c",
            [column_compare_literal("c", "country", "=", "nowhere"),
             column_compare_literal("c", "score", ">", 0)],
            meter,
        )
        assert positions.tolist() == []

    def test_hash_join_matches_reference(self, tiny_catalog):
        meter = CostMeter()
        customers = tiny_catalog.table("customers")
        orders = tiny_catalog.table("orders")
        tables = {"c": customers, "o": orders}
        prefix = RowIdRelation.from_base("c", np.arange(customers.num_rows))
        joined = hash_join_step(
            prefix, "o", orders, np.arange(orders.num_rows),
            [column_equals_column("c", "cid", "o", "cid")], [], tables, meter,
        )
        expected = {
            (c, o)
            for c in range(customers.num_rows)
            for o in range(orders.num_rows)
            if customers.row(c)["cid"] == orders.row(o)["cid"]
        }
        assert set(joined.index_tuples(["c", "o"])) == expected
        assert meter.intermediate_tuples == len(expected)

    def test_nested_loop_with_residual_predicate(self, tiny_catalog):
        meter = CostMeter()
        customers = tiny_catalog.table("customers")
        orders = tiny_catalog.table("orders")
        tables = {"c": customers, "o": orders}
        prefix = RowIdRelation.from_base("c", np.arange(customers.num_rows))
        from repro.query.expressions import ColumnRef
        from repro.query.predicates import Predicate

        joined = nested_loop_step(
            prefix, "o", orders, np.arange(orders.num_rows),
            [Predicate(ColumnRef("c", "score"), ">", ColumnRef("o", "amount"))],
            tables, meter,
        )
        expected = {
            (c, o)
            for c in range(customers.num_rows)
            for o in range(orders.num_rows)
            if customers.row(c)["score"] > orders.row(o)["amount"]
        }
        assert set(joined.index_tuples(["c", "o"])) == expected

    def test_nested_loop_empty_side(self, tiny_catalog):
        meter = CostMeter()
        orders = tiny_catalog.table("orders")
        prefix = RowIdRelation.from_base("c", np.array([], dtype=np.int64))
        joined = nested_loop_step(prefix, "o", orders, np.arange(3), [], {}, meter)
        assert len(joined) == 0


class TestPlanExecutor:
    def test_all_orders_produce_reference_result(self, tiny_catalog, tiny_join_query):
        expected = reference_join_tuples(tiny_catalog, tiny_join_query)
        graph = tiny_join_query.join_graph()
        for order in graph.valid_join_orders():
            executor = PlanExecutor(tiny_catalog, tiny_join_query)
            relation = executor.execute_order(list(order), CostMeter())
            produced = set(relation.index_tuples(tiny_join_query.aliases))
            assert produced == expected, f"order {order} disagrees with the oracle"

    def test_invalid_order_rejected(self, tiny_catalog, tiny_join_query):
        executor = PlanExecutor(tiny_catalog, tiny_join_query)
        with pytest.raises(PlanningError):
            executor.execute_order(["c", "o"], CostMeter())

    def test_budget_aborts_execution(self, tiny_catalog, tiny_join_query):
        executor = PlanExecutor(tiny_catalog, tiny_join_query)
        with pytest.raises(BudgetExceeded):
            executor.execute_order(["c", "o", "i"], CostMeter(budget=5))

    def test_batch_restriction_via_base_positions(self, tiny_catalog, tiny_join_query):
        executor = PlanExecutor(tiny_catalog, tiny_join_query)
        full = executor.execute_order(["c", "o", "i"], CostMeter())
        restricted = executor.execute_order(
            ["c", "o", "i"], CostMeter(), base_positions={"c": np.array([2])}
        )
        full_tuples = set(full.index_tuples(["c", "o", "i"]))
        restricted_tuples = set(restricted.index_tuples(["c", "o", "i"]))
        assert restricted_tuples <= full_tuples
        assert all(t[0] == 2 for t in restricted_tuples)

    def test_join_subset_cardinality_matches_reference(self, tiny_catalog, tiny_join_query):
        executor = PlanExecutor(tiny_catalog, tiny_join_query)
        from repro.engine.executor import _restrict_query

        sub_query = _restrict_query(tiny_join_query, ["c", "o"])
        expected = len(reference_join_tuples(tiny_catalog, sub_query))
        assert executor.join_subset_cardinality(["c", "o"]) == expected

    def test_cartesian_product_order_still_correct(self, tiny_catalog):
        # A query whose only join predicate links c and o; i is joined by a
        # cross product when it comes second.
        query = make_query(
            [("c", "customers"), ("o", "orders"), ("i", "items")],
            predicates=[column_equals_column("c", "cid", "o", "cid")],
        )
        expected = reference_join_tuples(tiny_catalog, query)
        executor = PlanExecutor(tiny_catalog, query)
        relation = executor.execute_order(["c", "i", "o"], CostMeter())
        assert set(relation.index_tuples(query.aliases)) == expected
