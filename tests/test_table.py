"""Unit tests for tables."""

import numpy as np
import pytest

from repro.errors import CatalogError, SchemaError
from repro.storage.column import Column, ColumnType
from repro.storage.table import Table


@pytest.fixture
def people() -> Table:
    return Table("people", {
        "id": [1, 2, 3],
        "name": ["ann", "bob", "cid"],
        "age": [30, 25, 41],
    })


class TestConstruction:
    def test_column_names_in_order(self, people):
        assert people.column_names == ["id", "name", "age"]

    def test_num_rows(self, people):
        assert people.num_rows == 3
        assert len(people) == 3

    def test_mismatched_lengths_raise(self):
        with pytest.raises(SchemaError):
            Table("bad", {"a": [1, 2], "b": [1]})

    def test_accepts_prebuilt_columns(self):
        table = Table("t", {"x": Column([1, 2, 3])})
        assert table.column("x").ctype is ColumnType.INT

    def test_from_rows(self):
        table = Table.from_rows("t", ["a", "b"], [(1, "x"), (2, "y")])
        assert table.num_rows == 2
        assert table.row(1) == {"a": 2, "b": "y"}

    def test_empty_table(self):
        table = Table("empty", {"a": []})
        assert table.num_rows == 0

    def test_renamed_view(self, people):
        alias = people.renamed("p2")
        assert alias.name == "p2"
        assert alias.num_rows == people.num_rows


class TestAccess:
    def test_row(self, people):
        assert people.row(0) == {"id": 1, "name": "ann", "age": 30}

    def test_rows(self, people):
        assert len(people.rows()) == 3

    def test_missing_column_raises(self, people):
        with pytest.raises(CatalogError):
            people.column("salary")

    def test_has_column(self, people):
        assert people.has_column("age")
        assert not people.has_column("salary")

    def test_column_types(self, people):
        types = people.column_types()
        assert types["id"] is ColumnType.INT
        assert types["name"] is ColumnType.STRING


class TestBulkOperations:
    def test_select_positions(self, people):
        subset = people.select([2, 0])
        assert subset.column("name").values() == ["cid", "ann"]

    def test_filter_mask(self, people):
        filtered = people.filter_mask(np.array([True, False, True]))
        assert filtered.column("id").values() == [1, 3]

    def test_filter_mask_wrong_length_raises(self, people):
        with pytest.raises(SchemaError):
            people.filter_mask(np.array([True]))
