"""Tests for the SkinnerDB facade (SQL in, results out, every engine)."""

import pytest

from repro import ENGINE_NAMES, ReproError, SkinnerDB, SkinnerConfig
from repro.errors import CatalogError
from repro.storage.table import Table

FAST = SkinnerConfig(slice_budget=64, batches_per_table=3, base_timeout=200)


@pytest.fixture
def db() -> SkinnerDB:
    db = SkinnerDB(config=FAST)
    db.create_table("dept", {
        "did": [1, 2, 3],
        "dname": ["eng", "ops", "hr"],
    })
    db.create_table("emp", {
        "eid": [1, 2, 3, 4, 5, 6],
        "did": [1, 1, 2, 3, 2, 1],
        "salary": [100, 120, 90, 80, 95, 130],
    })
    return db


class TestSchemaManagement:
    def test_create_and_query_table(self, db):
        result = db.execute("SELECT COUNT(*) AS n FROM emp")
        assert result.rows[0]["n"] == 6

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.create_table("emp", {"x": [1]})
        db.create_table("emp", {"x": [1]}, replace=True)

    def test_add_existing_table_object(self, db):
        db.add_table(Table("extra", {"a": [1, 2]}))
        assert db.execute("SELECT COUNT(*) AS n FROM extra").rows[0]["n"] == 2

    def test_load_csv(self, db, tmp_path):
        path = tmp_path / "cities.csv"
        path.write_text("city,pop\nrome,3\noslo,1\n")
        db.load_csv(path)
        assert db.execute("SELECT COUNT(*) AS n FROM cities").rows[0]["n"] == 2

    def test_statistics_cached_and_refreshed(self, db):
        first = db.statistics()
        assert db.statistics() is first
        db.create_table("later", {"x": [1]})
        assert db.statistics() is not first


class TestQueryExecution:
    JOIN_SQL = (
        "SELECT d.dname AS dname, SUM(e.salary) AS total FROM emp e, dept d "
        "WHERE e.did = d.did GROUP BY d.dname ORDER BY d.dname"
    )

    def test_every_engine_answers_the_join(self, db):
        expected = {"eng": 350, "hr": 80, "ops": 185}
        for engine in ENGINE_NAMES:
            result = db.execute(self.JOIN_SQL, engine=engine)
            totals = {row["dname"]: row["total"] for row in result.rows}
            assert totals == expected, engine

    def test_unknown_engine_rejected(self, db):
        with pytest.raises(ReproError):
            db.execute("SELECT * FROM emp", engine="sqlite")

    def test_query_object_accepted(self, db):
        query = db.parse("SELECT e.salary FROM emp e WHERE e.salary > 100")
        assert len(db.execute(query)) == 2

    def test_forced_order_on_traditional(self, db):
        result = db.execute(self.JOIN_SQL, engine="traditional", forced_order=("d", "e"))
        assert result.metrics.final_join_order == ("d", "e")

    def test_metrics_describe_is_readable(self, db):
        result = db.execute("SELECT COUNT(*) AS n FROM emp", engine="skinner-c")
        text = result.metrics.describe()
        assert "skinner-c" in text

    def test_order_by_and_limit_via_sql(self, db):
        result = db.execute(
            "SELECT e.eid, e.salary FROM emp e ORDER BY e.salary DESC LIMIT 2"
        )
        assert [row["salary"] for row in result.rows] == [130, 120]

    def test_distinct_via_sql(self, db):
        result = db.execute("SELECT DISTINCT e.did FROM emp e")
        assert sorted(row["did"] for row in result.rows) == [1, 2, 3]


class TestServingLayerRouting:
    """db.execute routes through the QueryServer; execute_direct bypasses it."""

    JOIN_SQL = TestQueryExecution.JOIN_SQL

    def test_execute_goes_through_server(self, db):
        db.execute(self.JOIN_SQL)
        assert db.server.stats()["completed"] == 1

    def test_direct_path_matches_server_path_per_engine(self, db):
        for engine in ENGINE_NAMES:
            served = db.execute(self.JOIN_SQL, engine=engine, use_result_cache=False)
            direct = db.execute_direct(self.JOIN_SQL, engine=engine)
            assert served.rows == direct.rows, engine
            assert served.metrics.work == direct.metrics.work, engine

    def test_repeated_execute_hits_result_cache(self, db):
        first = db.execute(self.JOIN_SQL)
        second = db.execute(self.JOIN_SQL)
        assert second.rows == first.rows
        assert second.metrics.extra.get("result_cache") == "hit"
        assert first.metrics.extra.get("result_cache") is None

    def test_schema_change_invalidates_result_cache(self, db):
        db.execute("SELECT COUNT(*) AS n FROM emp")
        db.create_table("emp", {"eid": [1], "did": [1], "salary": [7]}, replace=True)
        result = db.execute("SELECT COUNT(*) AS n FROM emp")
        assert result.rows[0]["n"] == 1
        assert result.metrics.extra.get("result_cache") is None

    def test_udf_registration_invalidates_result_cache(self, db):
        db.register_udf("cheap", lambda s: s < 100)
        sql = "SELECT COUNT(*) AS n FROM emp e WHERE cheap(e.salary)"
        assert db.execute(sql).rows[0]["n"] == 3
        db.register_udf("cheap", lambda s: s < 95, replace=True)
        result = db.execute(sql)
        assert result.rows[0]["n"] == 2
        assert result.metrics.extra.get("result_cache") is None

    def test_cache_opt_out_recomputes(self, db):
        db.execute(self.JOIN_SQL)
        fresh = db.execute(self.JOIN_SQL, use_result_cache=False)
        assert fresh.metrics.extra.get("result_cache") is None

    def test_forced_order_via_server(self, db):
        result = db.execute(self.JOIN_SQL, engine="traditional", forced_order=("d", "e"))
        assert result.metrics.final_join_order == ("d", "e")


class TestUdfs:
    def test_register_and_use_in_sql(self, db):
        db.register_udf("well_paid", lambda s: s >= 100)
        result = db.execute("SELECT COUNT(*) AS n FROM emp e WHERE well_paid(e.salary)")
        assert result.rows[0]["n"] == 3

    def test_udf_join_predicate_all_engines(self, db):
        db.register_udf("match_dept", lambda a, b: a == b)
        sql = (
            "SELECT COUNT(*) AS n FROM emp e, dept d WHERE match_dept(e.did, d.did)"
        )
        for engine in ENGINE_NAMES:
            assert db.execute(sql, engine=engine).rows[0]["n"] == 6, engine

    def test_duplicate_udf_rejected(self, db):
        db.register_udf("f", lambda: 1)
        with pytest.raises(CatalogError):
            db.register_udf("f", lambda: 2)
        db.register_udf("f", lambda: 2, replace=True)
