"""Tests for the depth-first multi-way join (Algorithm 2)."""

from repro.engine.meter import CostMeter
from repro.query.predicates import column_compare_literal, column_equals_column, udf_predicate
from repro.query.query import make_query
from repro.query.udf import UdfRegistry
from repro.skinner.multiway_join import MultiwayJoin
from repro.skinner.preprocessor import preprocess
from repro.skinner.result_set import JoinResultSet
from repro.skinner.state import initial_state
from tests.conftest import reference_join_tuples


def run_to_completion(prepared, order, udfs=None, *, budget=50, use_hash_jump=True,
                      offsets=None):
    """Drive ContinueJoin in small slices until it reports completion."""
    join = MultiwayJoin(prepared, udfs, use_hash_jump=use_hash_jump)
    offsets = offsets if offsets is not None else {alias: 0 for alias in prepared.aliases}
    state = initial_state(order, offsets)
    results = JoinResultSet(prepared.aliases)
    meter = CostMeter()
    finished = False
    slices = 0
    while not finished:
        finished = join.continue_join(state, offsets, budget, results, meter)
        slices += 1
        assert slices < 10_000, "multi-way join did not terminate"
    return results, meter, slices


class TestCorrectness:
    def test_all_orders_match_reference(self, tiny_catalog, tiny_join_query):
        expected = reference_join_tuples(tiny_catalog, tiny_join_query)
        prepared = preprocess(tiny_catalog, tiny_join_query)
        for order in tiny_join_query.join_graph().valid_join_orders():
            results, _, _ = run_to_completion(prepared, order)
            assert set(results.tuples()) == expected, f"order {order} is wrong"

    def test_hash_jump_equivalent_to_plain_advance(self, tiny_catalog, tiny_join_query):
        with_maps = preprocess(tiny_catalog, tiny_join_query, build_hash_maps=True)
        without_maps = preprocess(tiny_catalog, tiny_join_query, build_hash_maps=False)
        order = ("c", "o", "i")
        fast, fast_meter, _ = run_to_completion(with_maps, order, use_hash_jump=True)
        slow, slow_meter, _ = run_to_completion(without_maps, order, use_hash_jump=False)
        assert set(fast.tuples()) == set(slow.tuples())
        # Jumping skips non-matching tuples, so it must not do more work.
        assert fast_meter.tuples_scanned <= slow_meter.tuples_scanned

    def test_generic_udf_join_predicates(self, tiny_catalog):
        udfs = UdfRegistry()
        udfs.register("amount_close", lambda a, b: abs(a - b) <= 50)
        query = make_query(
            [("c", "customers"), ("o", "orders")],
            predicates=[udf_predicate("amount_close", ("c", "score"), ("o", "amount"))],
        )
        expected = reference_join_tuples(tiny_catalog, query, udfs)
        prepared = preprocess(tiny_catalog, query, udfs)
        results, _, _ = run_to_completion(prepared, ("c", "o"), udfs)
        assert set(results.tuples()) == expected

    def test_empty_filtered_table_finishes_immediately(self, tiny_catalog):
        query = make_query(
            [("c", "customers"), ("o", "orders")],
            predicates=[column_equals_column("c", "cid", "o", "cid"),
                        column_compare_literal("c", "country", "=", "nowhere")],
        )
        prepared = preprocess(tiny_catalog, query)
        results, meter, slices = run_to_completion(prepared, ("c", "o"))
        assert len(results) == 0
        assert slices == 1

    def test_duplicate_results_across_orders_are_merged(self, tiny_catalog, tiny_join_query):
        prepared = preprocess(tiny_catalog, tiny_join_query)
        results = JoinResultSet(prepared.aliases)
        meter = CostMeter()
        offsets = {alias: 0 for alias in prepared.aliases}
        join = MultiwayJoin(prepared)
        for order in (("c", "o", "i"), ("i", "o", "c")):
            state = initial_state(order, offsets)
            finished = False
            while not finished:
                finished = join.continue_join(state, offsets, 64, results, meter)
        assert set(results.tuples()) == reference_join_tuples(tiny_catalog, tiny_join_query)


class TestSuspendResume:
    def test_budget_slices_do_not_lose_or_duplicate_progress(self, tiny_catalog, tiny_join_query):
        expected = reference_join_tuples(tiny_catalog, tiny_join_query)
        prepared = preprocess(tiny_catalog, tiny_join_query)
        for budget in (1, 2, 3, 7, 1000):
            results, _, _ = run_to_completion(prepared, ("o", "c", "i"), budget=budget)
            assert set(results.tuples()) == expected, f"budget {budget} broke resume"

    def test_state_advances_lexicographically(self, tiny_catalog, tiny_join_query):
        prepared = preprocess(tiny_catalog, tiny_join_query)
        join = MultiwayJoin(prepared)
        order = ("c", "o", "i")
        offsets = {alias: 0 for alias in prepared.aliases}
        state = initial_state(order, offsets)
        results = JoinResultSet(prepared.aliases)
        meter = CostMeter()
        previous = tuple(state.indices)
        finished = False
        while not finished:
            finished = join.continue_join(state, offsets, 5, results, meter)
            current = tuple(state.indices)
            if not finished:
                assert current >= previous
            previous = current

    def test_offsets_exclude_leading_tuples(self, tiny_catalog, tiny_join_query):
        prepared = preprocess(tiny_catalog, tiny_join_query)
        full_expected = reference_join_tuples(tiny_catalog, tiny_join_query)
        # Exclude the first filtered tuple of the left-most table via offsets.
        offsets = {alias: 0 for alias in prepared.aliases}
        offsets["c"] = 1
        results, _, _ = run_to_completion(prepared, ("c", "o", "i"), offsets=offsets)
        excluded_base_row = prepared.base_row("c", 0)
        expected = {t for t in full_expected if t[0] != excluded_base_row}
        assert set(results.tuples()) == expected


class TestAccounting:
    def test_meter_charges_iterations_and_predicates(self, tiny_catalog, tiny_join_query):
        prepared = preprocess(tiny_catalog, tiny_join_query)
        _, meter, _ = run_to_completion(prepared, ("c", "o", "i"))
        assert meter.tuples_scanned > 0
        assert meter.predicate_evals > 0
        assert meter.output_tuples == len(reference_join_tuples(tiny_catalog, tiny_join_query))

    def test_context_caching(self, tiny_catalog, tiny_join_query):
        prepared = preprocess(tiny_catalog, tiny_join_query)
        join = MultiwayJoin(prepared)
        first = join.context_for(("c", "o", "i"))
        assert join.context_for(("c", "o", "i")) is first
