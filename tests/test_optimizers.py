"""Unit tests for the cost models and optimizer baselines."""

import pytest

from repro.engine.executor import PlanExecutor
from repro.errors import PlanningError
from repro.optimizer.cardinality import CardinalityEstimator, TrueCardinality
from repro.optimizer.cost import cmm_cost, cout_cost, prefix_cardinalities
from repro.optimizer.dp_optimizer import DynamicProgrammingOptimizer
from repro.optimizer.exhaustive import optimal_plan
from repro.optimizer.greedy import GreedyOptimizer
from repro.optimizer.heuristic import SizeHeuristicOptimizer
from repro.optimizer.plans import LeftDeepPlan
from repro.query.predicates import column_equals_column
from repro.query.query import make_query


class FakeEstimator(CardinalityEstimator):
    """Deterministic estimator over explicit per-subset cardinalities."""

    def __init__(self, base: dict[str, float], subsets: dict[frozenset, float]) -> None:
        self._base = base
        self._subsets = subsets

    def base_cardinality(self, alias: str) -> float:
        return self._base[alias]

    def cardinality(self, aliases) -> float:
        key = frozenset(aliases)
        if len(key) == 1:
            return self._base[next(iter(key))]
        return self._subsets[key]


@pytest.fixture
def chain_query():
    return make_query(
        ["a", "b", "c"],
        predicates=[column_equals_column("a", "x", "b", "x"),
                    column_equals_column("b", "y", "c", "y")],
    )


@pytest.fixture
def chain_estimator():
    return FakeEstimator(
        base={"a": 100, "b": 10, "c": 1000},
        subsets={
            frozenset({"a", "b"}): 50,
            frozenset({"b", "c"}): 200,
            frozenset({"a", "c"}): 100_000,
            frozenset({"a", "b", "c"}): 80,
        },
    )


class TestCostModels:
    def test_prefix_cardinalities(self, chain_estimator):
        assert prefix_cardinalities(["b", "a", "c"], chain_estimator) == [10, 50, 80]

    def test_cout_cost_sums_intermediates(self, chain_estimator):
        assert cout_cost(["b", "a", "c"], chain_estimator) == 130
        assert cout_cost(["b", "c", "a"], chain_estimator) == 280

    def test_cout_single_table(self, chain_estimator):
        assert cout_cost(["a"], chain_estimator) == 100

    def test_cmm_adds_inputs(self, chain_estimator):
        cout = cout_cost(["b", "a", "c"], chain_estimator)
        cmm = cmm_cost(["b", "a", "c"], chain_estimator)
        assert cmm > cout


class TestDynamicProgramming:
    def test_finds_cheapest_order(self, chain_query, chain_estimator):
        plan = DynamicProgrammingOptimizer().optimize(chain_query, chain_estimator)
        # Best C_out order avoids the large b-c intermediate: (a,b,c) or (b,a,c).
        assert plan.order in (("a", "b", "c"), ("b", "a", "c"))
        assert plan.cost == 130

    def test_matches_exhaustive_enumeration(self, chain_query, chain_estimator):
        graph = chain_query.join_graph()
        best = min(cout_cost(order, chain_estimator) for order in graph.valid_join_orders())
        plan = DynamicProgrammingOptimizer().optimize(chain_query, chain_estimator)
        assert plan.cost == best

    def test_single_table_query(self, chain_estimator):
        plan = DynamicProgrammingOptimizer().optimize(make_query(["a"]), chain_estimator)
        assert plan.order == ("a",)

    def test_rejects_unknown_metric(self):
        with pytest.raises(PlanningError):
            DynamicProgrammingOptimizer(cost_metric="magic")

    def test_cmm_metric_runs(self, chain_query, chain_estimator):
        plan = DynamicProgrammingOptimizer(cost_metric="cmm").optimize(chain_query, chain_estimator)
        assert sorted(plan.order) == ["a", "b", "c"]

    def test_avoids_cartesian_products(self, chain_estimator):
        query = make_query(
            ["a", "b", "c"],
            predicates=[column_equals_column("a", "x", "b", "x"),
                        column_equals_column("b", "y", "c", "y")],
        )
        plan = DynamicProgrammingOptimizer().optimize(query, chain_estimator)
        # (a, c, ...) would be a needless Cartesian product and must not win.
        assert plan.order[:2] not in (("a", "c"), ("c", "a"))


class TestGreedyAndHeuristic:
    def test_greedy_returns_valid_order(self, chain_query, chain_estimator):
        plan = GreedyOptimizer().optimize(chain_query, chain_estimator)
        assert sorted(plan.order) == ["a", "b", "c"]
        assert isinstance(plan, LeftDeepPlan)

    def test_greedy_starts_with_smallest_base(self, chain_query, chain_estimator):
        plan = GreedyOptimizer().optimize(chain_query, chain_estimator)
        assert plan.order[0] == "b"

    def test_size_heuristic_ignores_filters(self, tiny_catalog, tiny_join_query):
        from repro.optimizer.statistics import StatisticsCatalog
        from repro.optimizer.cardinality import EstimatedCardinality

        stats = StatisticsCatalog.collect(tiny_catalog)
        estimator = EstimatedCardinality(tiny_join_query, stats)
        plan = SizeHeuristicOptimizer(tiny_catalog).optimize(tiny_join_query, estimator)
        # customers is the smallest raw table of the query.
        assert plan.order[0] == "c"
        assert sorted(plan.order) == ["c", "i", "o"]


class TestOracleOptimizer:
    def test_optimal_plan_minimizes_true_cout(self, tiny_catalog, tiny_join_query):
        plan = optimal_plan(tiny_catalog, tiny_join_query)
        executor = PlanExecutor(tiny_catalog, tiny_join_query)
        oracle = TrueCardinality(executor)
        graph = tiny_join_query.join_graph()
        best = min(cout_cost(order, oracle) for order in graph.valid_join_orders())
        assert plan.cost == pytest.approx(best)
        assert plan.estimator_name == "true"
