"""Unit tests for the UCT search tree over join orders."""

import math

import pytest

from repro.query.predicates import column_equals_column
from repro.query.query import make_query
from repro.uct.node import UctNode
from repro.uct.policy import (
    DEFAULT_EXPLORATION_WEIGHT,
    SKINNER_C_EXPLORATION_WEIGHT,
    ucb_score,
)
from repro.uct.tree import UctJoinTree


def chain_graph(num_tables: int):
    aliases = [f"t{i}" for i in range(num_tables)]
    predicates = [
        column_equals_column(aliases[i], "b", aliases[i + 1], "a")
        for i in range(num_tables - 1)
    ]
    return make_query(aliases, predicates=predicates).join_graph()


class TestPolicy:
    def test_unvisited_child_has_infinite_score(self):
        assert ucb_score(0.0, 0, 10) == math.inf

    def test_exploration_term_decreases_with_visits(self):
        few = ucb_score(0.5, 2, 100)
        many = ucb_score(0.5, 50, 100)
        assert few > many

    def test_zero_weight_is_pure_exploitation(self):
        assert ucb_score(0.7, 5, 100, exploration_weight=0.0) == pytest.approx(0.7)

    def test_default_weights(self):
        assert DEFAULT_EXPLORATION_WEIGHT == pytest.approx(math.sqrt(2))
        assert SKINNER_C_EXPLORATION_WEIGHT < 1e-3


class TestNode:
    def test_update_and_average(self):
        node = UctNode(())
        node.update(1.0)
        node.update(0.0)
        assert node.visits == 2
        assert node.average_reward == 0.5

    def test_add_child_idempotent(self):
        node = UctNode(())
        child = node.add_child("a")
        assert node.add_child("a") is child
        assert child.prefix == ("a",)

    def test_subtree_size(self):
        node = UctNode(())
        node.add_child("a").add_child("b")
        node.add_child("c")
        assert node.subtree_size() == 4


class TestTree:
    def test_choose_order_is_valid_permutation(self):
        graph = chain_graph(4)
        tree = UctJoinTree(graph, seed=1)
        for _ in range(20):
            order = tree.choose_order()
            assert sorted(order) == sorted(graph.aliases)

    def test_orders_avoid_cartesian_products(self):
        graph = chain_graph(5)
        tree = UctJoinTree(graph, seed=2)
        valid = set(graph.valid_join_orders())
        for _ in range(50):
            assert tree.choose_order() in valid

    def test_tree_grows_at_most_one_node_per_round(self):
        graph = chain_graph(4)
        tree = UctJoinTree(graph, seed=3)
        previous = tree.node_count()
        for _ in range(30):
            order = tree.choose_order()
            tree.update(order, 0.5)
            current = tree.node_count()
            assert current - previous <= 1
            previous = current

    def test_update_increments_visits_along_path(self):
        graph = chain_graph(3)
        tree = UctJoinTree(graph, seed=4)
        order = tree.choose_order()
        tree.update(order, 1.0)
        assert tree.root.visits == 1
        first_child = tree.root.child(order[0])
        assert first_child is not None and first_child.visits == 1

    def test_rewards_clamped_to_unit_interval(self):
        graph = chain_graph(3)
        tree = UctJoinTree(graph, seed=5)
        order = tree.choose_order()
        tree.update(order, 5.0)
        tree.update(order, -3.0)
        assert 0.0 <= tree.root.average_reward <= 1.0

    def test_converges_to_rewarding_first_table(self):
        graph = chain_graph(3)
        tree = UctJoinTree(graph, exploration_weight=0.3, seed=6)
        # Orders starting with t0 earn reward 1, everything else 0.
        for _ in range(300):
            order = tree.choose_order()
            tree.update(order, 1.0 if order[0] == "t0" else 0.0)
        counts = tree.selection_counts()
        starting_t0 = sum(c for order, c in counts.items() if order[0] == "t0")
        assert starting_t0 > 0.7 * sum(counts.values())
        assert tree.best_order()[0] == "t0"

    def test_selection_counts_and_top_orders(self):
        graph = chain_graph(3)
        tree = UctJoinTree(graph, seed=7)
        for _ in range(10):
            tree.update(tree.choose_order(), 0.5)
        counts = tree.selection_counts()
        assert sum(counts.values()) == 10
        top = tree.top_orders(2)
        assert len(top) <= 2
        assert top == sorted(counts.items(), key=lambda item: item[1], reverse=True)[: len(top)]

    def test_deterministic_with_seed(self):
        graph = chain_graph(4)
        first = UctJoinTree(graph, seed=42)
        second = UctJoinTree(graph, seed=42)
        orders_a = [first.choose_order() for _ in range(10)]
        orders_b = [second.choose_order() for _ in range(10)]
        assert orders_a == orders_b
