"""Unit tests for the SQL-subset parser."""

import pytest

from repro.errors import ParseError
from repro.query.expressions import ColumnRef, FunctionCall, Literal
from repro.query.parser import parse_query
from repro.storage.catalog import Catalog
from repro.storage.table import Table


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_table(Table("orders", {"oid": [1], "cid": [1], "amount": [10]}))
    catalog.add_table(Table("customers", {"cid": [1], "country": ["us"]}))
    return catalog


class TestBasics:
    def test_select_star_single_table(self):
        query = parse_query("SELECT * FROM orders")
        assert query.aliases == ["orders"]
        assert query.select_items == ()

    def test_table_alias_with_and_without_as(self):
        query = parse_query("SELECT o.amount FROM orders AS o")
        assert query.aliases == ["o"]
        query = parse_query("SELECT o.amount FROM orders o")
        assert query.aliases == ["o"]

    def test_multiple_tables(self):
        query = parse_query(
            "SELECT o.amount FROM orders o, customers c WHERE o.cid = c.cid"
        )
        assert query.aliases == ["o", "c"]
        assert len(query.predicates) == 1
        assert query.predicates[0].is_equi_join

    def test_case_insensitive_keywords(self):
        query = parse_query("select o.amount from orders o where o.amount > 5")
        assert len(query.predicates) == 1

    def test_projection_alias(self):
        query = parse_query("SELECT o.amount AS total FROM orders o")
        assert query.select_items[0].alias == "total"


class TestPredicates:
    def test_comparison_operators(self):
        for op in ("=", "!=", "<>", "<", "<=", ">", ">="):
            query = parse_query(f"SELECT * FROM orders o WHERE o.amount {op} 5")
            predicate = query.predicates[0]
            expected = "!=" if op == "<>" else op
            assert predicate.op == expected

    def test_and_conjunction(self):
        query = parse_query(
            "SELECT * FROM orders o WHERE o.amount > 5 AND o.cid = 1 AND o.oid < 9"
        )
        assert len(query.predicates) == 3

    def test_between_expands_to_two_conjuncts(self):
        query = parse_query("SELECT * FROM orders o WHERE o.amount BETWEEN 5 AND 10")
        ops = sorted(p.op for p in query.predicates)
        assert ops == ["<=", ">="]

    def test_string_literal(self):
        query = parse_query("SELECT * FROM customers c WHERE c.country = 'us'")
        assert query.predicates[0].right == Literal("us")

    def test_string_literal_with_escaped_quote(self):
        query = parse_query("SELECT * FROM customers c WHERE c.country = 'o''brien'")
        assert query.predicates[0].right == Literal("o'brien")

    def test_float_literal(self):
        query = parse_query("SELECT * FROM orders o WHERE o.amount > 1.5")
        assert query.predicates[0].right == Literal(1.5)

    def test_bare_udf_predicate(self):
        query = parse_query("SELECT * FROM orders o WHERE is_large(o.amount)")
        predicate = query.predicates[0]
        assert predicate.op is None
        assert isinstance(predicate.left, FunctionCall)
        assert predicate.uses_udf

    def test_udf_with_comparison(self):
        query = parse_query("SELECT * FROM orders o WHERE bucket(o.amount, 10) = 3")
        assert query.predicates[0].op == "="


class TestAggregationAndOrdering:
    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) AS n FROM orders o")
        item = query.select_items[0]
        assert item.is_aggregate
        assert item.aggregate.function == "count"
        assert item.alias == "n"

    def test_aggregates_with_group_by(self):
        query = parse_query(
            "SELECT c.country, SUM(o.amount) AS total FROM orders o, customers c "
            "WHERE o.cid = c.cid GROUP BY c.country"
        )
        assert query.has_aggregates
        assert len(query.group_by) == 1
        assert query.group_by[0] == ColumnRef("c", "country")

    def test_min_max_avg(self):
        query = parse_query(
            "SELECT MIN(o.amount), MAX(o.amount), AVG(o.amount) FROM orders o"
        )
        functions = [item.aggregate.function for item in query.select_items]
        assert functions == ["min", "max", "avg"]

    def test_order_by_asc_desc(self):
        query = parse_query(
            "SELECT o.amount FROM orders o ORDER BY o.amount DESC, o.oid ASC"
        )
        assert [item.ascending for item in query.order_by] == [False, True]

    def test_limit(self):
        assert parse_query("SELECT * FROM orders LIMIT 7").limit == 7

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT o.cid FROM orders o").distinct


class TestColumnResolution:
    def test_unqualified_single_table(self):
        query = parse_query("SELECT amount FROM orders WHERE amount > 3")
        assert query.select_items[0].expression == ColumnRef("orders", "amount")

    def test_unqualified_with_catalog(self, catalog):
        query = parse_query(
            "SELECT amount FROM orders o, customers c WHERE o.cid = c.cid AND country = 'us'",
            catalog,
        )
        country_predicate = query.predicates[1]
        assert country_predicate.left == ColumnRef("c", "country")

    def test_ambiguous_unqualified_raises(self, catalog):
        with pytest.raises(ParseError):
            parse_query("SELECT cid FROM orders o, customers c WHERE o.cid = c.cid", catalog)

    def test_unresolvable_unqualified_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT amount FROM orders o, customers c WHERE o.cid = c.cid")


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_query("SELECT 1")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM orders o xyzzy uvwxy")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM orders WHERE a ~ 3")

    def test_limit_requires_number(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM orders LIMIT many")

    def test_keyword_as_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM orders WHERE select = 1")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_query("SELECT * FROM orders WHERE a ~ 3")
        assert excinfo.value.position is not None


class TestParameterBinding:
    def test_qmark_binds_positionally(self):
        query = parse_query(
            "SELECT o.amount FROM orders o WHERE o.cid = ? AND o.amount > ?",
            params=(3, 10),
        )
        assert query.predicates[0].right == Literal(3)
        assert query.predicates[1].right == Literal(10)

    def test_named_binds_by_key(self):
        query = parse_query(
            "SELECT o.amount FROM orders o WHERE o.cid = :cid", params={"cid": 9}
        )
        assert query.predicates[0].right == Literal(9)

    def test_named_parameter_reused(self):
        query = parse_query(
            "SELECT o.amount FROM orders o WHERE o.cid = :v AND o.amount = :v",
            params={"v": 5},
        )
        assert query.predicates[0].right == Literal(5)
        assert query.predicates[1].right == Literal(5)

    def test_string_values_bind_as_literals(self):
        query = parse_query(
            "SELECT c.cid FROM customers c WHERE c.country = ?",
            params=("o' brien",),
        )
        assert query.predicates[0].right == Literal("o' brien")

    def test_parameters_allowed_in_select_list(self):
        query = parse_query("SELECT ? FROM orders", params=(42,))
        assert query.select_items[0].expression == Literal(42)

    def test_placeholders_in_select_and_where_bind_in_text_order(self):
        query = parse_query(
            "SELECT ? FROM orders o WHERE o.amount = ?", params=("first", "second")
        )
        assert query.select_items[0].expression == Literal("first")
        assert query.predicates[0].right == Literal("second")

    def test_between_with_parameters(self):
        query = parse_query(
            "SELECT o.oid FROM orders o WHERE o.amount BETWEEN ? AND ?",
            params=(5, 15),
        )
        assert query.predicates[0].right == Literal(5)
        assert query.predicates[1].right == Literal(15)

    def test_missing_params_raises(self):
        with pytest.raises(ParseError, match="no parameters were given"):
            parse_query("SELECT o.oid FROM orders o WHERE o.amount = ?")

    def test_count_mismatch_raises(self):
        with pytest.raises(ParseError, match="2 positional"):
            parse_query("SELECT o.oid FROM orders o WHERE o.cid = ? AND o.amount = ?",
                        params=(1,))

    def test_mapping_for_qmark_raises(self):
        with pytest.raises(ParseError, match="parameter sequence"):
            parse_query("SELECT o.oid FROM orders o WHERE o.amount = ?",
                        params={"amount": 1})

    def test_sequence_for_named_raises(self):
        with pytest.raises(ParseError, match="parameter mapping"):
            parse_query("SELECT o.oid FROM orders o WHERE o.amount = :a", params=(1,))

    def test_mixed_styles_raise(self):
        with pytest.raises(ParseError, match="mix"):
            parse_query("SELECT o.oid FROM orders o WHERE o.cid = ? AND o.amount = :a",
                        params=(1,))

    def test_params_without_placeholders_raise(self):
        with pytest.raises(ParseError, match="no parameter placeholders"):
            parse_query("SELECT * FROM orders", params=(1,))
