"""Unit tests for the cost meter and engine profiles."""

import pytest

from repro.engine.meter import CostMeter, WorkBreakdown
from repro.engine.profiles import EngineProfile, get_profile, profile_names
from repro.errors import BudgetExceeded


class TestCostMeter:
    def test_charges_accumulate(self):
        meter = CostMeter()
        meter.charge_scan(10)
        meter.charge_predicate(5)
        meter.charge_probe(2)
        meter.charge_intermediate(3)
        meter.charge_output(1)
        meter.charge_udf(4)
        assert meter.total == 25
        snapshot = meter.snapshot()
        assert snapshot.tuples_scanned == 10
        assert snapshot.total == 25

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CostMeter().charge_scan(-1)

    def test_budget_exceeded(self):
        meter = CostMeter(budget=10)
        meter.charge_scan(10)
        with pytest.raises(BudgetExceeded):
            meter.charge_scan(1)
        # The overflowing charge is still recorded.
        assert meter.total == 11

    def test_budget_exceeded_carries_spent(self):
        meter = CostMeter(budget=5)
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.charge_scan(20)
        assert excinfo.value.spent == 20

    def test_remaining(self):
        meter = CostMeter(budget=10)
        meter.charge_scan(4)
        assert meter.remaining == 6
        assert CostMeter().remaining is None

    def test_merge(self):
        a = CostMeter()
        a.charge_scan(3)
        b = CostMeter()
        b.charge_output(2)
        a.merge(b)
        assert a.total == 5
        a.merge(WorkBreakdown(predicate_evals=1))
        assert a.total == 6

    def test_checkpoint(self):
        meter = CostMeter()
        meter.charge_scan(5)
        meter.checkpoint()
        meter.charge_scan(3)
        assert meter.since_checkpoint() == 3

    def test_reset_preserves_budget(self):
        meter = CostMeter(budget=100)
        meter.charge_scan(5)
        meter.reset()
        assert meter.total == 0
        assert meter.budget == 100

    def test_clamp_batch_unlimited_meter_passes_through(self):
        assert CostMeter().clamp_batch(10_000) == 10_000

    def test_clamp_batch_limits_to_remaining_budget(self):
        meter = CostMeter(budget=100)
        meter.charge_scan(60)
        assert meter.clamp_batch(10_000) == 40
        assert meter.clamp_batch(25) == 25

    def test_clamp_batch_never_below_one(self):
        meter = CostMeter(budget=10)
        meter.charge_scan(10)
        assert meter.clamp_batch(10_000) == 1

    def test_clamp_batch_rejects_non_positive(self):
        with pytest.raises(ValueError):
            CostMeter().clamp_batch(0)


class TestBatchBudgetClamping:
    """Regression: a single large batch must not overshoot a budget unbounded."""

    def _joinable_catalog(self, rows=400):
        from repro.storage.catalog import Catalog
        from repro.storage.table import Table

        catalog = Catalog()
        catalog.add_table(Table("a", {"k": [i % 7 for i in range(rows)]}))
        catalog.add_table(Table("b", {"k": [i % 7 for i in range(rows)]}))
        return catalog

    def test_batched_join_overshoot_is_bounded(self):
        from repro.query.predicates import column_equals_column
        from repro.query.query import make_query
        from repro.skinner.multiway_join import MultiwayJoin
        from repro.skinner.preprocessor import preprocess
        from repro.skinner.result_set import JoinResultSet
        from repro.skinner.state import initial_state

        catalog = self._joinable_catalog()
        query = make_query(
            [("a", "a"), ("b", "b")],
            predicates=[column_equals_column("a", "k", "b", "k")],
        )
        prepared = preprocess(catalog, query)
        budget = 50
        batch_size = 10_000
        meter = CostMeter(budget=budget)
        join = MultiwayJoin(prepared, batch_size=batch_size)
        offsets = {alias: 0 for alias in prepared.aliases}
        state = initial_state(("a", "b"), offsets)
        results = JoinResultSet(prepared.aliases)
        with pytest.raises(BudgetExceeded):
            while not join.continue_join(state, offsets, 1_000_000, results, meter):
                pass
        # Without clamping, the very first scan batch would charge the full
        # 10_000-tuple batch; with clamping the recorded overshoot is bounded
        # by one remaining-budget-sized chunk per charge kind.
        assert meter.total <= 3 * budget
        assert meter.total < batch_size


class TestProfiles:
    def test_known_profiles(self):
        assert set(profile_names()) == {"monetdb", "postgres", "commercial", "skinner"}
        for name in profile_names():
            assert get_profile(name).name == name

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            get_profile("oracle")

    def test_case_insensitive_lookup(self):
        assert get_profile("MonetDB").name == "monetdb"

    def test_simulated_time_weights(self):
        profile = EngineProfile("x", scan_weight=2.0, predicate_weight=1.0, startup_cost=5.0)
        work = WorkBreakdown(tuples_scanned=10, predicate_evals=4)
        assert profile.simulated_time(work) == pytest.approx(5.0 + 20.0 + 4.0)

    def test_parallelism_amdahl(self):
        profile = EngineProfile("x", scan_weight=1.0, parallel_fraction=0.5)
        work = WorkBreakdown(tuples_scanned=100)
        single = profile.simulated_time(work, threads=1)
        parallel = profile.simulated_time(work, threads=10)
        assert single == pytest.approx(100.0)
        assert parallel == pytest.approx(50.0 + 5.0)

    def test_monetdb_cheaper_per_tuple_than_skinner(self):
        work = WorkBreakdown(tuples_scanned=1000, intermediate_tuples=1000)
        assert get_profile("monetdb").simulated_time(work) < get_profile("skinner").simulated_time(work)

    def test_threads_do_not_help_serial_profile(self):
        work = WorkBreakdown(tuples_scanned=100)
        postgres = get_profile("postgres")
        assert postgres.simulated_time(work, threads=8) == postgres.simulated_time(work, threads=1)
