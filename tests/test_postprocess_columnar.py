"""Differential tests: columnar post-processing == row post-processing.

The columnar pipeline (``postprocess_mode="columnar"``) must be
observationally identical to the row reference pipeline on every query shape
it claims to support: projections (plain and computed), every aggregate
function, GROUP BY, DISTINCT, ORDER BY (ascending and ``_Reversed``
descending keys, output aliases and source expressions), and LIMIT —
including row *order*, column names, and column types.  Queries with UDFs in
the select list fall back to the row pipeline and stay correct by
construction; a test pins that down too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SkinnerConfig
from repro.engine.meter import CostMeter
from repro.engine.postprocess import post_process
from repro.engine.relation import RowIdRelation
from repro.errors import ExecutionError
from repro.query.expressions import ColumnRef, FunctionCall, Literal, Star
from repro.query.predicates import Predicate, column_equals_column
from repro.query.query import AggregateSpec, OrderItem, SelectItem, make_query
from repro.query.udf import UdfRegistry
from repro.skinner.multiway_join import MultiwayJoin
from repro.skinner.preprocessor import preprocess
from repro.skinner.result_set import JoinResultSet
from repro.skinner.skinner_c import SkinnerC
from repro.skinner.state import initial_state
from repro.storage.table import Table

REGIONS = ["north", "south", "east", "west"]


def assert_tables_identical(expected: Table, actual: Table) -> None:
    """Same column names, same column types, same values in the same order."""
    assert expected.column_names == actual.column_names
    for name in expected.column_names:
        left, right = expected.column(name), actual.column(name)
        assert left.ctype == right.ctype, name
        left_values, right_values = left.values(), right.values()
        assert len(left_values) == len(right_values), name
        for a, b in zip(left_values, right_values):
            if isinstance(a, float) and isinstance(b, float) and np.isnan(a) and np.isnan(b):
                continue
            assert a == b, name


# ----------------------------------------------------------------------
# random query strategy over one table
# ----------------------------------------------------------------------
_COLUMN_EXPRS = [
    ColumnRef("t", "g"),
    ColumnRef("t", "a"),
    ColumnRef("t", "b"),
    ColumnRef("t", "f"),
    FunctionCall("mul", (ColumnRef("t", "a"), ColumnRef("t", "b"))),
    FunctionCall("add", (ColumnRef("t", "f"), Literal(1))),
    FunctionCall("mod", (ColumnRef("t", "b"), Literal(3))),
    FunctionCall("abs", (ColumnRef("t", "b"),)),
]
_NUMERIC_EXPRS = _COLUMN_EXPRS[1:]
_AGG_FUNCTIONS = ["count", "sum", "avg", "min", "max"]


@st.composite
def postprocess_case(draw):
    """A random table, a random relation over it, and a random query."""
    num_rows = draw(st.integers(min_value=0, max_value=10))
    table = Table("base", {
        "g": [draw(st.sampled_from(REGIONS)) for _ in range(num_rows)],
        "a": [draw(st.integers(0, 6)) for _ in range(num_rows)],
        "b": [draw(st.integers(-5, 5)) for _ in range(num_rows)],
        # Dyadic rationals: sums are exact in float64 in any accumulation order.
        "f": [draw(st.integers(0, 20)) / 4.0 for _ in range(num_rows)],
    })
    if num_rows:
        result_rows = draw(st.lists(st.integers(0, num_rows - 1), max_size=18))
    else:
        result_rows = []
    relation = RowIdRelation.from_base("t", np.asarray(result_rows, dtype=np.int64))

    aggregated = draw(st.booleans())
    group_by: list = []
    items: list[SelectItem] = []
    if aggregated:
        if draw(st.booleans()):
            group_by = [draw(st.sampled_from([ColumnRef("t", "g"),
                                              FunctionCall("mod", (ColumnRef("t", "a"),
                                                                   Literal(2)))]))]
            items.append(SelectItem(expression=group_by[0], alias="key"))
        for i, function in enumerate(draw(
                st.lists(st.sampled_from(_AGG_FUNCTIONS), min_size=1, max_size=3))):
            argument = Star() if function == "count" and draw(st.booleans()) else draw(
                st.sampled_from(_NUMERIC_EXPRS))
            items.append(SelectItem(aggregate=AggregateSpec(function, argument),
                                    alias=f"agg{i}"))
    else:
        for i, expression in enumerate(draw(
                st.lists(st.sampled_from(_COLUMN_EXPRS), min_size=1, max_size=3))):
            items.append(SelectItem(expression=expression, alias=f"col{i}"))

    names = [item.output_name(i) for i, item in enumerate(items)]
    order_by = []
    for _ in range(draw(st.integers(0, 2))):
        choice = draw(st.integers(0, 2))
        if choice == 0:  # an output column, referenced by alias
            order_by.append(OrderItem(ColumnRef("out", draw(st.sampled_from(names))),
                                      ascending=draw(st.booleans())))
        elif choice == 1:  # an output alias under the source table's name
            order_by.append(OrderItem(ColumnRef("t", draw(st.sampled_from(names))),
                                      ascending=draw(st.booleans())))
        else:  # an arbitrary expression over the source tables
            order_by.append(OrderItem(draw(st.sampled_from(_COLUMN_EXPRS)),
                                      ascending=draw(st.booleans())))
    query = make_query(
        [("t", "base")],
        select_items=items,
        group_by=group_by,
        order_by=order_by,
        distinct=draw(st.booleans()),
        limit=draw(st.sampled_from([None, 0, 1, 3])),
    )
    return table, relation, query


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(postprocess_case())
def test_columnar_matches_row_pipeline(case):
    table, relation, query = case
    tables = {"t": table}
    try:
        expected = post_process(query, relation, tables, mode="rows")
    except ExecutionError:
        # e.g. ORDER BY unresolvable against the empty-aggregate default row:
        # the columnar pipeline must reject the query the same way.
        with pytest.raises(ExecutionError):
            post_process(query, relation, tables, mode="columnar")
        return
    actual = post_process(query, relation, tables, mode="columnar")
    assert_tables_identical(expected, actual)


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(postprocess_case())
def test_both_modes_charge_identical_output_work(case):
    table, relation, query = case
    meters = {}
    for mode in ("rows", "columnar"):
        meters[mode] = CostMeter()
        try:
            post_process(query, relation, {"t": table}, None, meters[mode], mode=mode)
        except ExecutionError:
            pass  # both modes raise for the same queries (see test above)
    assert meters["rows"].snapshot() == meters["columnar"].snapshot()


# ----------------------------------------------------------------------
# targeted shapes
# ----------------------------------------------------------------------
@pytest.fixture
def sales() -> tuple[Table, RowIdRelation]:
    table = Table("sales", {
        "region": ["n", "s", "n", "e", "s", "n", "e", "e"],
        "amount": [10, 20, 30, 40, 50, 60, 40, 5],
        "units": [1, 2, 3, 4, 5, 6, 2, 1],
    })
    return table, RowIdRelation.from_base("s", np.arange(table.num_rows))


def run_both(query, relation, tables):
    expected = post_process(query, relation, tables, mode="rows")
    actual = post_process(query, relation, tables, mode="columnar")
    assert_tables_identical(expected, actual)
    return actual


def test_select_star_and_distinct(sales):
    table, relation = sales
    run_both(make_query([("s", "sales")]), relation, {"s": table})
    run_both(make_query([("s", "sales")], distinct=True), relation, {"s": table})


def test_every_aggregate_grouped_and_global(sales):
    table, relation = sales
    for group_by in ([], [ColumnRef("s", "region")]):
        items = [SelectItem(aggregate=AggregateSpec(f, ColumnRef("s", "amount")),
                            alias=f"v_{f}")
                 for f in _AGG_FUNCTIONS]
        if group_by:
            items.insert(0, SelectItem(expression=ColumnRef("s", "region"), alias="region"))
        result = run_both(make_query([("s", "sales")], select_items=items,
                                     group_by=group_by), relation, {"s": table})
        assert result.num_rows == (3 if group_by else 1)


def test_order_by_desc_uses_reversed_semantics(sales):
    table, relation = sales
    query = make_query(
        [("s", "sales")],
        select_items=[SelectItem(expression=ColumnRef("s", "region"), alias="region"),
                      SelectItem(expression=ColumnRef("s", "amount"), alias="amount")],
        order_by=[OrderItem(ColumnRef("s", "region"), ascending=False),
                  OrderItem(ColumnRef("s", "amount"), ascending=True)],
    )
    result = run_both(query, relation, {"s": table})
    assert result.column("region").values()[0] == "s"


def test_order_by_string_column_descending_is_rank_based(sales):
    table, relation = sales
    query = make_query(
        [("s", "sales")],
        select_items=[SelectItem(expression=ColumnRef("s", "region"), alias="r")],
        order_by=[OrderItem(ColumnRef("s", "region"), ascending=False)],
        distinct=True,
    )
    result = run_both(query, relation, {"s": table})
    assert result.column("r").values() == ["s", "n", "e"]


def test_unresolvable_order_by_raises_in_both_modes(sales):
    table, relation = sales
    query = make_query(
        [("s", "sales")],
        select_items=[SelectItem(expression=ColumnRef("s", "amount"), alias="amount")],
        order_by=[OrderItem(ColumnRef("s", "no_such_column"))],
    )
    for mode in ("rows", "columnar"):
        with pytest.raises(ExecutionError):
            post_process(query, relation, {"s": table}, mode=mode)


def test_unknown_mode_rejected(sales):
    table, relation = sales
    with pytest.raises(ExecutionError):
        post_process(make_query([("s", "sales")]), relation, {"s": table}, mode="simd")


def test_udf_select_items_fall_back_to_row_pipeline(sales):
    table, relation = sales
    udfs = UdfRegistry()
    udfs.register("double_it", lambda v: 2 * v)
    query = make_query(
        [("s", "sales")],
        select_items=[SelectItem(expression=FunctionCall("double_it",
                                                         (ColumnRef("s", "amount"),)),
                                 alias="doubled")],
        order_by=[OrderItem(ColumnRef("s", "doubled"), ascending=False)],
    )
    expected = post_process(query, relation, {"s": table}, udfs, mode="rows")
    actual = post_process(query, relation, {"s": table}, udfs, mode="columnar")
    assert_tables_identical(expected, actual)
    assert actual.column("doubled").values()[0] == 120


# ----------------------------------------------------------------------
# engine-level equivalence and result-set export
# ----------------------------------------------------------------------
def test_skinner_c_results_identical_across_postprocess_modes(tiny_catalog):
    query = make_query(
        [("c", "customers"), ("o", "orders")],
        predicates=[column_equals_column("c", "cid", "o", "cid")],
        select_items=[
            SelectItem(expression=ColumnRef("c", "country"), alias="country"),
            SelectItem(aggregate=AggregateSpec("sum", ColumnRef("o", "amount")),
                       alias="total"),
            SelectItem(aggregate=AggregateSpec("count", Star()), alias="n"),
        ],
        group_by=[ColumnRef("c", "country")],
        order_by=[OrderItem(ColumnRef("c", "total"), ascending=False)],
    )
    results = {}
    for mode in ("rows", "columnar"):
        config = SkinnerConfig(slice_budget=32, postprocess_mode=mode)
        results[mode] = SkinnerC(tiny_catalog, config=config).execute(query)
    assert_tables_identical(results["rows"].table, results["columnar"].table)
    assert results["columnar"].table.column("total").values() == [640, 470]
    assert results["columnar"].table.column("country").values() == ["de", "us"]


def test_baseline_engines_honor_postprocess_mode(tiny_catalog):
    from repro.baselines.eddy import EddyEngine
    from repro.baselines.traditional import TraditionalEngine

    query = make_query(
        [("c", "customers"), ("o", "orders")],
        predicates=[column_equals_column("c", "cid", "o", "cid")],
        select_items=[
            SelectItem(expression=ColumnRef("c", "country"), alias="country"),
            SelectItem(aggregate=AggregateSpec("max", ColumnRef("o", "amount")),
                       alias="biggest"),
        ],
        group_by=[ColumnRef("c", "country")],
        order_by=[OrderItem(ColumnRef("c", "country"))],
    )
    for factory in (lambda mode: TraditionalEngine(tiny_catalog, postprocess_mode=mode),
                    lambda mode: EddyEngine(tiny_catalog, postprocess_mode=mode)):
        results = {mode: factory(mode).execute(query) for mode in ("rows", "columnar")}
        assert_tables_identical(results["rows"].table, results["columnar"].table)
        assert results["columnar"].table.column("biggest").values() == [500, 250]


def test_result_set_matrix_matches_sorted_tuples():
    result_set = JoinResultSet(("a", "b"))
    result_set.add_many([(3, 1), (1, 2), (1, 1), (3, 0), (1, 2)])
    matrix = result_set.to_matrix()
    assert matrix.dtype == np.int64
    assert [tuple(row) for row in matrix.tolist()] == sorted(result_set.tuples())
    empty = JoinResultSet(("a", "b")).to_matrix()
    assert empty.shape == (0, 2)


# ----------------------------------------------------------------------
# generic-predicate metering: only true UDF invocations hit charge_udf
# ----------------------------------------------------------------------
def _run_join(prepared, order, batch_size, udfs=None):
    join = MultiwayJoin(prepared, udfs, batch_size=batch_size)
    offsets = {alias: 0 for alias in prepared.aliases}
    state = initial_state(order, offsets)
    results = JoinResultSet(prepared.aliases)
    meter = CostMeter()
    while not join.continue_join(state, offsets, 10_000, results, meter):
        pass
    return results, meter


def test_non_udf_generic_predicates_charge_no_udf_work(tiny_catalog):
    query = make_query(
        [("c", "customers"), ("o", "orders")],
        predicates=[
            column_equals_column("c", "cid", "o", "cid"),
            # A generic (non-equi, computed) join predicate: vectorized via
            # the expression plan, and never metered as UDF work.
            Predicate(FunctionCall("add", (ColumnRef("c", "score"),
                                           ColumnRef("o", "amount"))),
                      ">", Literal(120)),
        ],
    )
    prepared = preprocess(tiny_catalog, query)
    scalar_results, scalar_meter = _run_join(prepared, ("c", "o"), 1)
    batched_results, batched_meter = _run_join(prepared, ("c", "o"), 64)
    assert set(batched_results.tuples()) == set(scalar_results.tuples())
    assert len(scalar_results) > 0
    assert scalar_meter.udf_invocations == 0
    assert batched_meter.udf_invocations == 0


def test_udf_predicates_charge_identically_in_both_executors(tiny_catalog):
    udfs = UdfRegistry()
    udfs.register("pricey", lambda s, a: s + a > 120, cost=5)
    query = make_query(
        [("c", "customers"), ("o", "orders")],
        predicates=[
            column_equals_column("c", "cid", "o", "cid"),
            Predicate(FunctionCall("pricey", (ColumnRef("c", "score"),
                                              ColumnRef("o", "amount")))),
        ],
    )
    prepared = preprocess(tiny_catalog, query, udfs)
    scalar_results, scalar_meter = _run_join(prepared, ("c", "o"), 1, udfs)
    batched_results, batched_meter = _run_join(prepared, ("c", "o"), 64, udfs)
    assert set(batched_results.tuples()) == set(scalar_results.tuples())
    assert scalar_meter.udf_invocations == batched_meter.udf_invocations > 0
