"""Equivalence of the batched and scalar multi-way join executors.

The batched executor (``batch_size > 1``) must be observationally identical
to the scalar reference (``batch_size = 1``): same result sets, same final
states, and the same results under arbitrary suspend/resume slicing — that
is what keeps the regret-bounded learning loop untouched by vectorization.
The random inputs are built from the deterministic generator helpers in
``repro.workloads.generators`` (Zipfian join keys, correlated columns).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SkinnerConfig
from repro.engine.meter import CostMeter
from repro.query.predicates import (
    Predicate,
    column_compare_literal,
    column_equals_column,
    udf_predicate,
)
from repro.query.expressions import ColumnRef
from repro.query.query import make_query
from repro.query.udf import UdfRegistry
from repro.skinner.multiway_join import MultiwayJoin
from repro.skinner.preprocessor import preprocess
from repro.skinner.result_set import JoinResultSet
from repro.skinner.state import initial_state
from repro.skinner.skinner_c import SkinnerC
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.generators import (
    choice_strings,
    correlated_column,
    make_rng,
    uniform_keys,
    zipf_keys,
)
from tests.conftest import reference_join_tuples, result_multiset


def random_catalog_and_query(seed: int, *, num_tables: int, rows: int):
    """A random joinable catalog plus an SPJ query, from the generator helpers."""
    rng = make_rng(seed)
    catalog = Catalog()
    aliases = []
    num_keys = max(2, rows // 3)
    for table_index in range(num_tables):
        name = f"t{table_index}"
        num_rows = int(rng.integers(0, rows + 1))
        keys = zipf_keys(rng, num_rows, num_keys, skew=float(rng.uniform(0.0, 1.5)))
        catalog.add_table(Table(name, {
            "k": keys,
            "v": correlated_column(rng, keys, 5, float(rng.uniform(0.0, 1.0))),
            "w": uniform_keys(rng, num_rows, 7),
            "s": choice_strings(rng, num_rows, ["red", "green", "blue"]),
        }))
        aliases.append(name)
    predicates = []
    for i in range(num_tables - 1):
        predicates.append(column_equals_column(aliases[i], "k", aliases[i + 1], "k"))
    if rng.random() < 0.5:
        predicates.append(column_equals_column(aliases[0], "s", aliases[-1], "s"))
    if rng.random() < 0.5:
        # A non-equi join predicate exercises the vectorized comparison plans.
        predicates.append(Predicate(ColumnRef(aliases[0], "v"), "<=", ColumnRef(aliases[-1], "w")))
    for alias in aliases:
        if rng.random() < 0.5:
            predicates.append(column_compare_literal(alias, "v", ">", int(rng.integers(0, 4))))
    query = make_query(aliases, predicates=predicates)
    return catalog, query


def run_sliced(prepared, order, batch_size, budget, udfs=None, *, offsets=None,
               advance_offsets=False):
    """Drive ContinueJoin in budget slices until completion."""
    join = MultiwayJoin(prepared, udfs, batch_size=batch_size)
    offsets = offsets if offsets is not None else {alias: 0 for alias in prepared.aliases}
    state = initial_state(order, offsets)
    results = JoinResultSet(prepared.aliases)
    meter = CostMeter()
    finished = False
    slices = 0
    previous = tuple(state.indices)
    while not finished:
        finished = join.continue_join(state, offsets, budget, results, meter)
        slices += 1
        assert slices < 200_000, "executor did not terminate"
        current = tuple(state.indices)
        if not finished:
            assert current >= previous, "state went backwards across a suspension"
        previous = current
        if advance_offsets:
            offsets[order[0]] = max(offsets[order[0]], state.indices[0])
    return results, state, meter, slices


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=100_000),
       st.integers(min_value=2, max_value=4),
       st.sampled_from([3, 17, 100]))
def test_batched_equals_scalar_results_and_states(seed, num_tables, budget):
    """Property: identical result sets and identical suspend/resume states."""
    catalog, query = random_catalog_and_query(seed, num_tables=num_tables, rows=24)
    prepared = preprocess(catalog, query)
    orders = query.join_graph().valid_join_orders()
    order = orders[seed % len(orders)]
    scalar_results, scalar_state, _, _ = run_sliced(prepared, order, 1, budget)
    batched_results, batched_state, _, _ = run_sliced(prepared, order, 1024, budget)
    assert set(batched_results.tuples()) == set(scalar_results.tuples())
    assert batched_state.as_tuple() == scalar_state.as_tuple()
    assert batched_state.batch_cursors is None, "finished states carry no cursors"


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=100_000),
       st.sampled_from([4, 23, 111]))
def test_suspended_state_is_self_describing(seed, budget):
    """A suspended batched state resumes correctly from its indices alone.

    Every slice runs on a *fresh* executor with ``batch_cursors`` stripped,
    so no parked frames or cursors can help: the rebuilt frames must land on
    exactly the candidates the suspended run would have examined next.  This
    is the path the progress tracker exercises when another join order ran
    in between (only the index vector survives the tracker round-trip).
    """
    catalog, query = random_catalog_and_query(seed, num_tables=3, rows=20)
    prepared = preprocess(catalog, query)
    order = query.join_graph().valid_join_orders()[0]
    reference, _, _, _ = run_sliced(prepared, order, 1024, 1_000_000)
    offsets = {alias: 0 for alias in prepared.aliases}
    state = initial_state(order, offsets)
    results = JoinResultSet(prepared.aliases)
    meter = CostMeter()
    finished = False
    slices = 0
    while not finished:
        join = MultiwayJoin(prepared, batch_size=1024)
        state = state.copy()
        state.batch_cursors = None
        finished = join.continue_join(state, offsets, budget, results, meter)
        slices += 1
        assert slices < 100_000
    assert set(results.tuples()) == set(reference.tuples())


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=100_000))
def test_batched_slicing_is_invariant(seed):
    """Any slice budget (any suspension pattern) yields the same results."""
    catalog, query = random_catalog_and_query(seed, num_tables=3, rows=20)
    prepared = preprocess(catalog, query)
    order = query.join_graph().valid_join_orders()[0]
    reference, reference_state, _, _ = run_sliced(prepared, order, 1024, 1_000_000)
    for budget in (5, 31, 256):
        results, state, _, _ = run_sliced(prepared, order, 1024, budget)
        assert set(results.tuples()) == set(reference.tuples()), f"budget {budget}"
        assert state.as_tuple() == reference_state.as_tuple()


def test_batched_interleaved_orders_share_result_set(tiny_catalog, tiny_join_query):
    """Two join orders alternating mid-batch still cover the result exactly."""
    expected = reference_join_tuples(tiny_catalog, tiny_join_query)
    prepared = preprocess(tiny_catalog, tiny_join_query)
    join = MultiwayJoin(prepared, batch_size=8)
    offsets = {alias: 0 for alias in prepared.aliases}
    orders = (("c", "o", "i"), ("i", "o", "c"))
    states = {order: initial_state(order, offsets) for order in orders}
    finished = {order: False for order in orders}
    results = JoinResultSet(prepared.aliases)
    meter = CostMeter()
    turn = 0
    while not all(finished.values()):
        order = orders[turn % len(orders)]
        turn += 1
        if finished[order]:
            continue
        finished[order] = join.continue_join(states[order], offsets, 6, results, meter)
        assert turn < 100_000
    assert set(results.tuples()) == expected


def test_batched_with_advancing_offsets_matches_oracle(tiny_catalog, tiny_join_query):
    """Offset advancement (shared progress) never loses or duplicates tuples."""
    expected = reference_join_tuples(tiny_catalog, tiny_join_query)
    prepared = preprocess(tiny_catalog, tiny_join_query)
    for order in tiny_join_query.join_graph().valid_join_orders():
        results, _, _, _ = run_sliced(prepared, order, 16, 7, advance_offsets=True)
        assert set(results.tuples()) == expected, f"order {order}"


def test_batched_udf_predicates_match_scalar(tiny_catalog):
    udfs = UdfRegistry()
    udfs.register("amount_close", lambda a, b: abs(a - b) <= 50)
    query = make_query(
        [("c", "customers"), ("o", "orders")],
        predicates=[udf_predicate("amount_close", ("c", "score"), ("o", "amount"))],
    )
    prepared = preprocess(tiny_catalog, query, udfs)
    for budget in (2, 9, 10_000):
        scalar, s_state, _, _ = run_sliced(prepared, ("c", "o"), 1, budget, udfs)
        batched, b_state, _, _ = run_sliced(prepared, ("c", "o"), 64, budget, udfs)
        assert set(batched.tuples()) == set(scalar.tuples())
        assert b_state.as_tuple() == s_state.as_tuple()


def test_suspended_state_records_batch_cursors(tiny_catalog, tiny_join_query):
    """A mid-batch suspension records per-position cursors; resume clears them."""
    prepared = preprocess(tiny_catalog, tiny_join_query)
    join = MultiwayJoin(prepared, batch_size=4)
    offsets = {alias: 0 for alias in prepared.aliases}
    state = initial_state(("c", "o", "i"), offsets)
    results = JoinResultSet(prepared.aliases)
    meter = CostMeter()
    finished = join.continue_join(state, offsets, 4, results, meter)
    assert not finished
    assert state.batch_cursors is not None
    assert len(state.batch_cursors) == 3
    copied = state.copy()
    assert copied.batch_cursors == state.batch_cursors
    while not finished:
        finished = join.continue_join(state, offsets, 4, results, meter)
    assert state.batch_cursors is None
    assert set(results.tuples()) == reference_join_tuples(tiny_catalog, tiny_join_query)


def test_skinner_c_engine_identical_across_batch_sizes(tiny_catalog, tiny_join_query):
    """End-to-end: the engine returns the same relation for any batch size."""
    reference = None
    for batch_size in (1, 2, 64, 1024):
        config = SkinnerConfig(slice_budget=32, batch_size=batch_size)
        engine = SkinnerC(tiny_catalog, config=config)
        result = engine.execute(tiny_join_query)
        rows = result_multiset(result)
        if reference is None:
            reference = rows
        else:
            assert rows == reference, f"batch_size {batch_size} changed the result"


def test_invalid_batch_size_rejected(tiny_catalog, tiny_join_query):
    prepared = preprocess(tiny_catalog, tiny_join_query)
    with pytest.raises(ValueError):
        MultiwayJoin(prepared, batch_size=0)
