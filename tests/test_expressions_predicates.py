"""Unit tests for expressions and predicate classification/evaluation."""

import pytest

from repro.errors import ExecutionError
from repro.query.expressions import ColumnRef, FunctionCall, Literal, Star
from repro.query.predicates import (
    Predicate,
    column_compare_literal,
    column_equals_column,
    udf_predicate,
)
from repro.query.udf import UdfRegistry

BINDING = {
    "a": {"x": 3, "name": "ann"},
    "b": {"y": 7, "name": "bob"},
}


class TestExpressions:
    def test_column_ref_evaluation(self):
        assert ColumnRef("a", "x").evaluate(BINDING) == 3

    def test_column_ref_missing_binding_raises(self):
        with pytest.raises(ExecutionError):
            ColumnRef("z", "x").evaluate(BINDING)

    def test_column_ref_tables_and_display(self):
        ref = ColumnRef("a", "x")
        assert ref.tables() == frozenset({"a"})
        assert ref.display() == "a.x"
        assert ref.columns() == [ref]

    def test_literal(self):
        literal = Literal(42)
        assert literal.evaluate(BINDING) == 42
        assert literal.tables() == frozenset()
        assert Literal("s").display() == "'s'"

    def test_builtin_function_call(self):
        call = FunctionCall("add", (ColumnRef("a", "x"), Literal(10)))
        assert call.evaluate(BINDING) == 13
        assert call.is_builtin()
        assert call.tables() == frozenset({"a"})

    def test_builtin_arithmetic_variants(self):
        x = ColumnRef("a", "x")
        assert FunctionCall("mul", (x, Literal(2))).evaluate(BINDING) == 6
        assert FunctionCall("sub", (x, Literal(1))).evaluate(BINDING) == 2
        assert FunctionCall("div", (x, Literal(2))).evaluate(BINDING) == 1.5
        assert FunctionCall("abs", (Literal(-5),)).evaluate(BINDING) == 5
        assert FunctionCall("mod", (x, Literal(2))).evaluate(BINDING) == 1

    def test_udf_call_through_registry(self):
        udfs = UdfRegistry()
        udfs.register("twice", lambda v: v * 2)
        call = FunctionCall("twice", (ColumnRef("b", "y"),))
        assert call.evaluate(BINDING, udfs) == 14
        assert not call.is_builtin()

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            FunctionCall("nope", ()).evaluate(BINDING)

    def test_star(self):
        star = Star()
        assert star.evaluate(BINDING) == 1
        assert star.display() == "*"
        assert star.columns() == []


class TestPredicateClassification:
    def test_unary(self):
        predicate = column_compare_literal("a", "x", ">", 1)
        assert predicate.is_unary
        assert not predicate.is_join
        assert not predicate.is_equi_join

    def test_equi_join(self):
        predicate = column_equals_column("a", "x", "b", "y")
        assert predicate.is_join
        assert predicate.is_equi_join
        left, right = predicate.equi_join_columns()
        assert (left.table, right.table) == ("a", "b")

    def test_same_table_equality_is_not_equi_join(self):
        predicate = Predicate(ColumnRef("a", "x"), "=", ColumnRef("a", "name"))
        assert not predicate.is_equi_join

    def test_generic_join_predicate(self):
        predicate = Predicate(ColumnRef("a", "x"), "<", ColumnRef("b", "y"))
        assert predicate.is_join
        assert not predicate.is_equi_join

    def test_equi_join_columns_on_non_equi_raises(self):
        with pytest.raises(ExecutionError):
            column_compare_literal("a", "x", "=", 1).equi_join_columns()

    def test_udf_predicate_detection(self):
        predicate = udf_predicate("check", ("a", "x"), ("b", "y"))
        assert predicate.uses_udf
        assert predicate.tables() == frozenset({"a", "b"})

    def test_builtin_function_is_not_udf(self):
        predicate = Predicate(FunctionCall("add", (ColumnRef("a", "x"), Literal(1))), ">", Literal(0))
        assert not predicate.uses_udf


class TestPredicateEvaluation:
    def test_comparison_operators(self):
        assert column_compare_literal("a", "x", "=", 3).evaluate(BINDING)
        assert column_compare_literal("a", "x", "!=", 4).evaluate(BINDING)
        assert column_compare_literal("a", "x", "<", 4).evaluate(BINDING)
        assert column_compare_literal("a", "x", "<=", 3).evaluate(BINDING)
        assert column_compare_literal("b", "y", ">", 3).evaluate(BINDING)
        assert column_compare_literal("b", "y", ">=", 7).evaluate(BINDING)
        assert not column_compare_literal("b", "y", "<", 7).evaluate(BINDING)

    def test_cross_table_evaluation(self):
        assert Predicate(ColumnRef("a", "x"), "<", ColumnRef("b", "y")).evaluate(BINDING)

    def test_bare_boolean_udf(self):
        udfs = UdfRegistry()
        udfs.register("close", lambda a, b: abs(a - b) < 10)
        predicate = udf_predicate("close", ("a", "x"), ("b", "y"))
        assert predicate.evaluate(BINDING, udfs)

    def test_unsupported_operator_raises(self):
        with pytest.raises(ExecutionError):
            Predicate(ColumnRef("a", "x"), "LIKE", Literal(1)).evaluate(BINDING)

    def test_udf_cost_includes_registry_cost(self):
        udfs = UdfRegistry()
        udfs.register("expensive", lambda v: True, cost=7)
        predicate = Predicate(FunctionCall("expensive", (ColumnRef("a", "x"),)))
        assert predicate.udf_cost(udfs) == 8

    def test_display(self):
        assert column_compare_literal("a", "x", ">", 1).display() == "a.x > 1"
        assert column_equals_column("a", "x", "b", "y").display() == "a.x = b.y"


class TestUdfRegistry:
    def test_register_and_lookup_case_insensitive(self):
        udfs = UdfRegistry()
        udfs.register("MyFn", lambda: 1)
        assert udfs.has("myfn")
        assert udfs.get("MYFN").name == "myfn"
        assert len(udfs) == 1

    def test_duplicate_registration_raises(self):
        udfs = UdfRegistry()
        udfs.register("f", lambda: 1)
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            udfs.register("f", lambda: 2)
        udfs.register("f", lambda: 2, replace=True)

    def test_missing_udf_raises(self):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            UdfRegistry().get("missing")
