"""Tests for the benchmark harness, metrics aggregation, and reporting."""

import pytest

from repro.bench.harness import EngineSpec, run_query, run_workload
from repro.bench.metrics import (
    QueryRecord,
    aggregate_records,
    count_failures_and_disasters,
    per_query_speedups,
    relative_overheads,
    time_share_of_top_queries,
)
from repro.bench.report import format_series, format_table
from repro.bench.specs import (
    BENCH_CONFIG,
    job_multi_threaded_specs,
    job_single_threaded_specs,
    skinner_c_spec,
    torture_specs,
    traditional_spec,
)
from repro.config import SkinnerConfig
from repro.workloads.torture import make_trivial_workload, make_udf_torture

FAST = SkinnerConfig(slice_budget=32, batches_per_table=2, base_timeout=150)


def record(engine, query, time, card=0, evals=0, timed_out=False):
    return QueryRecord(
        engine=engine, query=query, simulated_time=time,
        intermediate_cardinality=card, predicate_evaluations=evals,
        result_rows=0, timed_out=timed_out,
    )


class TestMetricsAggregation:
    RECORDS = [
        record("A", "q1", 10, card=5), record("A", "q2", 90, card=50),
        record("B", "q1", 100, card=40), record("B", "q2", 30, card=10),
    ]

    def test_aggregate_records(self):
        summaries = {s.engine: s for s in aggregate_records(self.RECORDS)}
        assert summaries["A"].total_time == 100
        assert summaries["A"].max_time == 90
        assert summaries["B"].total_cardinality == 50
        assert summaries["A"].queries == 2
        assert summaries["A"].as_row()["Approach"] == "A"

    def test_relative_overheads(self):
        overheads = relative_overheads(self.RECORDS)
        assert overheads["A"] == pytest.approx(3.0)  # 90 / 30 on q2
        assert overheads["B"] == pytest.approx(10.0)  # 100 / 10 on q1

    def test_failures_and_disasters_by_time(self):
        records = self.RECORDS + [record("C", "q1", 2000), record("C", "q2", 29)]
        counts = count_failures_and_disasters(records, metric="time")
        assert counts["C"]["failures"] == 1
        assert counts["C"]["disasters"] == 1
        assert counts["A"]["disasters"] == 0

    def test_timeouts_count_as_failures(self):
        records = [record("A", "q1", 10), record("B", "q1", 10, timed_out=True)]
        counts = count_failures_and_disasters(records)
        assert counts["B"]["failures"] == 1

    def test_failures_by_evaluations(self):
        records = [record("A", "q1", 1, evals=10), record("B", "q1", 1, evals=500)]
        counts = count_failures_and_disasters(records, metric="evaluations")
        assert counts["B"]["failures"] == 1

    def test_invalid_metric_rejected(self):
        with pytest.raises(ValueError):
            count_failures_and_disasters([], metric="joules")

    def test_per_query_speedups(self):
        speedups = per_query_speedups(self.RECORDS, baseline="B", subject="A")
        assert speedups["q1"] == pytest.approx(10.0)
        assert speedups["q2"] == pytest.approx(1 / 3)

    def test_time_share_of_top_queries(self):
        shares = time_share_of_top_queries(self.RECORDS, "A")
        assert shares == [pytest.approx(0.9), pytest.approx(1.0)]


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table("Demo", [{"a": 1, "b": "x"}, {"a": 22222, "b": "yy"}])
        assert "Demo" in text
        assert "22,222" in text

    def test_format_table_empty(self):
        assert "(no data)" in format_table("Empty", [])

    def test_format_series(self):
        text = format_series("S", {"values": [1, 2.5, "x"]})
        assert "values" in text and "2.50" in text


class TestHarness:
    def test_run_workload_records_every_engine_and_query(self):
        workload = make_trivial_workload(3, 20)
        specs = [skinner_c_spec("Skinner-C", FAST), traditional_spec("PG", "postgres")]
        records = run_workload(specs, workload, verify_results=True)
        assert len(records) == 2
        assert {r.engine for r in records} == {"Skinner-C", "PG"}

    def test_run_query_with_budget(self):
        workload = make_udf_torture(4, 12)
        spec = traditional_spec("PG", "postgres")
        record_, result = run_query(spec, workload, workload.queries[0], work_budget=50)
        assert record_.timed_out or result.table.num_rows >= 0

    def test_query_subset_selection(self):
        workload = make_trivial_workload(3, 20)
        records = run_workload([skinner_c_spec("S", FAST)], workload,
                               queries=[workload.queries[0].name])
        assert len(records) == 1

    def test_engine_spec_factories(self):
        workload = make_trivial_workload(2, 10)
        for spec in job_single_threaded_specs() + job_multi_threaded_specs(4) + torture_specs():
            assert isinstance(spec, EngineSpec)
            engine = spec.factory(workload)
            assert hasattr(engine, "execute")

    def test_bench_config_is_scaled_down(self):
        assert BENCH_CONFIG.slice_budget <= 500


class TestExperimentDrivers:
    def test_registry_contains_all_tables_and_figures(self):
        from repro.bench.experiments import EXPERIMENTS

        expected = ({f"table{i}" for i in range(1, 8)}
                    | {f"figure{i}" for i in range(6, 14)}
                    | {"postprocess_pipeline", "hashjoin_kernel",
                       "concurrent_serving", "streaming_cursor",
                       "multitenant_server", "cold_vs_warm_start",
                       "external_sqlite", "docstore_axes"})
        assert set(EXPERIMENTS) == expected

    def test_figure12_tiny_run_has_expected_shape(self):
        from repro.bench.experiments import EXPERIMENTS

        output = EXPERIMENTS["figure12"](table_counts=(3,), tuples_per_table=20, budget=20_000)
        assert "series" in output and "num_tables" in output["series"]
        assert output["series"]["num_tables"] == [3]
        assert len(output["records"]) > 0

    def test_figure7_tiny_run(self):
        from repro.bench.experiments import EXPERIMENTS

        output = EXPERIMENTS["figure7"](scale=0.12, seed=5, query_name="job_q03",
                                        budgets=(16, 64))
        assert "uct_tree_growth" in output["series"]
        assert output["series"]["uct_tree_growth"]
