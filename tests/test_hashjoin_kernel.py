"""Equivalence of the vectorized hash-join kernel and the dict-based path.

The plan executor's vectorized hash join (``join_mode="vectorized"``) must be
observationally identical to the dict-based reference (``join_mode="rows"``):
byte-identical ``RowIdRelation``s — same rows in the same order — and
identical meter charges, over composite keys, duplicate keys, empty build or
probe sides, cross-dictionary string keys, NaN float keys, and residual
predicates.  That is what makes the baseline comparisons of Tables 1–6
implementation-independent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SkinnerConfig
from repro.engine.executor import PlanExecutor
from repro.engine.joinkernels import (
    KeyPart,
    encode_composite_keys,
    expand_matches,
    group_rows,
    probe_grouped,
)
from repro.engine.meter import CostMeter
from repro.engine.operators import hash_join_step
from repro.engine.relation import RowIdRelation
from repro.query.expressions import ColumnRef
from repro.query.predicates import (
    Predicate,
    column_compare_literal,
    column_equals_column,
)
from repro.query.query import make_query
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.table import Table
from repro.workloads.generators import choice_strings, make_rng, uniform_keys, zipf_keys

JOIN_MODES = ("rows", "vectorized")


def random_catalog_and_query(seed: int, *, num_tables: int, rows: int):
    """A random catalog + SPJ query exercising every key-encoding path.

    Tables mix integer, float (with NaNs), and string join columns; string
    dictionaries deliberately differ per table (``only{t}`` values), so the
    kernel's dictionary-code translation sees values absent from the build
    side.  Predicates include composite keys (several equalities between the
    same table pair), an int-vs-float key, and non-equi residuals.
    """
    rng = make_rng(seed)
    catalog = Catalog()
    aliases = []
    for table_index in range(num_tables):
        n = int(rng.integers(0, rows + 1))
        keys = zipf_keys(rng, n, 8, skew=float(rng.uniform(0.0, 1.5)))
        floats = keys.astype(np.float64) + rng.choice([0.0, 0.5], size=n)
        floats[rng.random(n) < 0.15] = np.nan
        catalog.add_table(Table(f"t{table_index}", {
            "k": keys,
            "f": floats,
            "s": choice_strings(rng, n, ["red", "green", "blue", f"only{table_index}"]),
            "v": uniform_keys(rng, n, 6),
        }))
        aliases.append(f"t{table_index}")
    predicates = []
    for i in range(num_tables - 1):
        predicates.append(column_equals_column(aliases[i], "k", aliases[i + 1], "k"))
        if rng.random() < 0.4:  # composite string part, cross-dictionary
            predicates.append(column_equals_column(aliases[i], "s", aliases[i + 1], "s"))
        if rng.random() < 0.3:  # float keys with NaNs
            predicates.append(column_equals_column(aliases[i], "f", aliases[i + 1], "f"))
        if rng.random() < 0.3:  # int vs float key (Python 1 == 1.0 semantics)
            predicates.append(column_equals_column(aliases[i], "k", aliases[i + 1], "f"))
        if rng.random() < 0.3:  # non-equi residual
            predicates.append(
                Predicate(ColumnRef(aliases[i], "v"), "<=", ColumnRef(aliases[i + 1], "v"))
            )
    for alias in aliases:
        if rng.random() < 0.4:
            predicates.append(column_compare_literal(alias, "v", ">", int(rng.integers(0, 5))))
    return catalog, make_query(aliases, predicates=predicates)


def run_order(catalog, query, order, mode):
    executor = PlanExecutor(catalog, query, join_mode=mode)
    meter = CostMeter()
    relation = executor.execute_order(list(order), meter)
    return relation, meter.snapshot()


def assert_identical(catalog, query, order):
    """Both modes: byte-identical relations and identical meter charges."""
    reference, reference_work = run_order(catalog, query, order, "rows")
    vectorized, vectorized_work = run_order(catalog, query, order, "vectorized")
    assert vectorized.aliases == reference.aliases
    for alias in reference.aliases:
        assert np.array_equal(vectorized.ids(alias), reference.ids(alias)), (
            f"alias {alias} diverges for order {order}"
        )
    assert vectorized_work == reference_work, f"meter charges diverge for order {order}"


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=100_000),
       st.integers(min_value=2, max_value=4))
def test_vectorized_equals_rows_relations_and_meters(seed, num_tables):
    """Property: identical relations (same row order) and identical charges."""
    catalog, query = random_catalog_and_query(seed, num_tables=num_tables, rows=24)
    rng = make_rng(seed + 1)
    order = list(rng.permutation(query.aliases))
    assert_identical(catalog, query, order)


class TestHashJoinStep:
    """Direct unit tests of both hash_join_step modes."""

    @staticmethod
    def _join(mode, prefix, table, positions, equi, residual, tables):
        meter = CostMeter()
        joined = hash_join_step(prefix, "b", table, positions, equi, residual,
                                tables, meter, mode=mode)
        return joined, meter.snapshot()

    @staticmethod
    def _both_modes(prefix, table, positions, equi, residual, tables):
        rows, rows_work = TestHashJoinStep._join("rows", prefix, table, positions,
                                                 equi, residual, tables)
        vec, vec_work = TestHashJoinStep._join("vectorized", prefix, table, positions,
                                               equi, residual, tables)
        for alias in rows.aliases:
            assert np.array_equal(vec.ids(alias), rows.ids(alias))
        assert vec_work == rows_work
        return rows

    def _tables(self, a_values, b_values):
        a = Table("a", a_values)
        b = Table("b", b_values)
        return a, b, {"a": a, "b": b}

    def test_duplicate_keys_fanout(self):
        a, b, tables = self._tables({"x": [1, 2, 2, 3]}, {"x": [2, 2, 2, 1, 9]})
        prefix = RowIdRelation.from_base("a", np.arange(a.num_rows))
        joined = self._both_modes(prefix, b, np.arange(b.num_rows),
                                  [column_equals_column("a", "x", "b", "x")], [], tables)
        # prefix rows ascending, build rows ascending within each key group
        assert joined.index_tuples(["a", "b"]) == [
            (0, 3), (1, 0), (1, 1), (1, 2), (2, 0), (2, 1), (2, 2),
        ]

    def test_empty_build_side(self):
        a, b, tables = self._tables({"x": [1, 2]}, {"x": [1, 2, 3]})
        prefix = RowIdRelation.from_base("a", np.arange(a.num_rows))
        joined = self._both_modes(prefix, b, np.empty(0, dtype=np.int64),
                                  [column_equals_column("a", "x", "b", "x")], [], tables)
        assert len(joined) == 0

    def test_empty_probe_side(self):
        a, b, tables = self._tables({"x": [1, 2]}, {"x": [1, 2, 3]})
        prefix = RowIdRelation.empty(["a"])
        joined = self._both_modes(prefix, b, np.arange(b.num_rows),
                                  [column_equals_column("a", "x", "b", "x")], [], tables)
        assert len(joined) == 0

    def test_composite_key_requires_all_parts(self):
        a, b, tables = self._tables(
            {"x": [1, 1, 2], "y": ["p", "q", "p"]},
            {"x": [1, 1, 2, 2], "y": ["p", "r", "p", "zz"]},
        )
        prefix = RowIdRelation.from_base("a", np.arange(a.num_rows))
        joined = self._both_modes(
            prefix, b, np.arange(b.num_rows),
            [column_equals_column("a", "x", "b", "x"),
             column_equals_column("a", "y", "b", "y")], [], tables)
        assert joined.index_tuples(["a", "b"]) == [(0, 0), (2, 2)]

    def test_nan_keys_never_match(self):
        nan = float("nan")
        a, b, tables = self._tables({"x": [nan, 1.5, nan]}, {"x": [nan, 1.5, nan, 2.5]})
        prefix = RowIdRelation.from_base("a", np.arange(a.num_rows))
        joined = self._both_modes(prefix, b, np.arange(b.num_rows),
                                  [column_equals_column("a", "x", "b", "x")], [], tables)
        # Only the non-NaN 1.5 = 1.5 pair survives in either mode.
        assert joined.index_tuples(["a", "b"]) == [(1, 1)]

    def test_string_keys_absent_from_build_dictionary(self):
        a, b, tables = self._tables({"x": ["red", "blue", "violet"]},
                                    {"x": ["blue", "amber", "red"]})
        prefix = RowIdRelation.from_base("a", np.arange(a.num_rows))
        joined = self._both_modes(prefix, b, np.arange(b.num_rows),
                                  [column_equals_column("a", "x", "b", "x")], [], tables)
        assert joined.index_tuples(["a", "b"]) == [(0, 2), (1, 0)]

    def test_int_float_cross_type_key_matches(self):
        a, b, tables = self._tables({"x": [1, 2, 3]}, {"x": [1.0, 2.5, 3.0]})
        prefix = RowIdRelation.from_base("a", np.arange(a.num_rows))
        joined = self._both_modes(prefix, b, np.arange(b.num_rows),
                                  [column_equals_column("a", "x", "b", "x")], [], tables)
        assert joined.index_tuples(["a", "b"]) == [(0, 0), (2, 2)]

    def test_int_float_keys_exact_above_2_pow_53(self):
        """Python int == float is exact: 2**53 + 1 must not match 2.0**53."""
        a, b, tables = self._tables(
            {"x": [2**53 + 1, 2**53, 2**60]},
            {"x": [float(2**53), 2.5, float(2**60), float("nan"), float("inf")]},
        )
        prefix = RowIdRelation.from_base("a", np.arange(a.num_rows))
        joined = self._both_modes(prefix, b, np.arange(b.num_rows),
                                  [column_equals_column("a", "x", "b", "x")], [], tables)
        assert joined.index_tuples(["a", "b"]) == [(1, 0), (2, 2)]

    def test_string_numeric_type_mismatch_matches_nothing(self):
        a, b, tables = self._tables({"x": [1, 2]}, {"x": ["1", "2"]})
        prefix = RowIdRelation.from_base("a", np.arange(a.num_rows))
        joined = self._both_modes(prefix, b, np.arange(b.num_rows),
                                  [column_equals_column("a", "x", "b", "x")], [], tables)
        assert len(joined) == 0

    def test_residual_predicate_applied_identically(self):
        a, b, tables = self._tables({"x": [1, 1, 2], "v": [10, 20, 30]},
                                    {"x": [1, 1, 2], "w": [15, 25, 5]})
        prefix = RowIdRelation.from_base("a", np.arange(a.num_rows))
        residual = [Predicate(ColumnRef("a", "v"), "<", ColumnRef("b", "w"))]
        joined = self._both_modes(prefix, b, np.arange(b.num_rows),
                                  [column_equals_column("a", "x", "b", "x")],
                                  residual, tables)
        assert joined.index_tuples(["a", "b"]) == [(0, 0), (0, 1), (1, 1)]

    def test_build_side_charged_as_scan_not_probe(self):
        """Regression: build work is scan work, probes count probe rows only."""
        a, b, tables = self._tables({"x": [1, 2]}, {"x": [1, 2, 3, 4]})
        prefix = RowIdRelation.from_base("a", np.arange(a.num_rows))
        for mode in JOIN_MODES:
            meter = CostMeter()
            hash_join_step(prefix, "b", b, np.arange(b.num_rows),
                           [column_equals_column("a", "x", "b", "x")], [], tables,
                           meter, mode=mode)
            assert meter.tuples_scanned == b.num_rows, mode
            assert meter.hash_probes == len(prefix), mode

    def test_budget_abort_records_identical_overshoot(self):
        """Regression: aborted runs record the same work in both modes.

        Skinner-G/H merge aborted slice meters into their reported work, so
        the vectorized path must stop charging at the same probe-row group
        as the rows path instead of recording the whole join's count.
        """
        from repro.errors import BudgetExceeded

        n = 60
        a, b, tables = self._tables({"x": [7] * n}, {"x": [7] * n})
        prefix = RowIdRelation.from_base("a", np.arange(a.num_rows))
        totals = {}
        for mode in JOIN_MODES:
            meter = CostMeter(budget=n + n + 25)  # aborts mid-intermediate
            with pytest.raises(BudgetExceeded):
                hash_join_step(prefix, "b", b, np.arange(b.num_rows),
                               [column_equals_column("a", "x", "b", "x")], [], tables,
                               meter, mode=mode)
            totals[mode] = meter.snapshot()
        assert totals["vectorized"] == totals["rows"]

    def test_budget_abort_many_groups_identical(self):
        from repro.errors import BudgetExceeded

        a, b, tables = self._tables({"x": [1, 2, 3, 4, 5]}, {"x": [1, 1, 2, 3, 3, 3, 5]})
        prefix = RowIdRelation.from_base("a", np.arange(a.num_rows))
        for budget in range(7, 20):
            totals = {}
            for mode in JOIN_MODES:
                meter = CostMeter(budget=budget)
                try:
                    hash_join_step(prefix, "b", b, np.arange(b.num_rows),
                                   [column_equals_column("a", "x", "b", "x")], [], tables,
                                   meter, mode=mode)
                except BudgetExceeded:
                    pass
                totals[mode] = meter.snapshot()
            assert totals["vectorized"] == totals["rows"], f"budget {budget}"

    def test_invalid_mode_rejected(self):
        a, b, tables = self._tables({"x": [1]}, {"x": [1]})
        prefix = RowIdRelation.from_base("a", np.arange(a.num_rows))
        with pytest.raises(ValueError):
            hash_join_step(prefix, "b", b, np.arange(b.num_rows),
                           [column_equals_column("a", "x", "b", "x")], [], tables,
                           CostMeter(), mode="bogus")


class TestKernelPrimitives:
    def test_group_rows_stable_ascending_within_group(self):
        grouped = group_rows(np.array([3, 1, 3, 1, 3]))
        assert grouped.keys.tolist() == [1, 3]
        assert grouped.rows.tolist() == [1, 3, 0, 2, 4]
        assert grouped.starts.tolist() == [0, 2]
        assert grouped.counts.tolist() == [2, 3]

    def test_group_rows_empty(self):
        grouped = group_rows(np.empty(0, dtype=np.int64))
        assert grouped.rows.shape[0] == 0
        assert grouped.keys.shape[0] == 0

    def test_group_rows_nan_singleton_runs(self):
        values = np.array([np.nan, 1.0, np.nan])
        grouped = group_rows(values)
        # Each NaN forms its own run; none are merged.
        assert grouped.counts.tolist() == [1, 1, 1]

    def test_probe_grouped_empty_build(self):
        grouped = group_rows(np.empty(0, dtype=np.int64))
        rows, groups = probe_grouped(grouped, np.array([1, 2, 3]))
        assert rows.shape[0] == 0 and groups.shape[0] == 0

    def test_probe_and_expand_round_trip(self):
        grouped = group_rows(np.array([5, 7, 5, 9]))
        rows, groups = probe_grouped(grouped, np.array([7, 5, 4]))
        selector, build_rows = expand_matches(grouped, rows, groups)
        assert selector.tolist() == [0, 1, 1]
        assert build_rows.tolist() == [1, 0, 2]

    def test_encode_composite_requires_parts(self):
        with pytest.raises(ValueError):
            encode_composite_keys([])

    def test_encode_many_parts_does_not_overflow(self):
        """Radix combination re-compresses instead of overflowing int64."""
        build = Column(list(range(40)))
        probe = Column(list(range(40)))
        values = build.data
        parts = [KeyPart(build, values, probe, values) for _ in range(16)]
        keys = encode_composite_keys(parts)
        assert np.array_equal(keys.build_codes, keys.probe_codes)
        assert np.unique(keys.build_codes).shape[0] == 40

    def test_translate_codes_maps_into_build_dictionary(self):
        build = Column(["a", "b", "c"])
        probe = Column(["c", "x", "a"])
        translation = build.translate_codes(probe)
        # probe codes 0,1,2 = c,x,a -> build codes 2, sentinel 3, 0
        assert translation.tolist() == [2, 3, 0]

    def test_translate_codes_cached_per_column_pair(self):
        build = Column(["a", "b", "c"])
        probe = Column(["c", "x", "a"])
        other = Column(["b", "a"])
        assert build.translate_codes(probe) is build.translate_codes(probe)
        assert build.translate_codes(other).tolist() == [1, 0]


class TestJoinModeThreading:
    def test_executor_validates_mode(self, tiny_catalog, tiny_join_query):
        with pytest.raises(ValueError):
            PlanExecutor(tiny_catalog, tiny_join_query, join_mode="columnar")

    def test_executor_modes_identical(self, tiny_catalog, tiny_join_query):
        for order in tiny_join_query.join_graph().valid_join_orders():
            assert_identical(tiny_catalog, tiny_join_query, list(order))

    def test_baselines_honor_join_mode(self, tiny_catalog, tiny_join_query):
        from repro.baselines.eddy import EddyEngine
        from repro.baselines.reoptimizer import ReOptimizerEngine
        from repro.baselines.traditional import TraditionalEngine

        for factory in (
            lambda mode: TraditionalEngine(tiny_catalog, join_mode=mode),
            lambda mode: ReOptimizerEngine(tiny_catalog, join_mode=mode),
            lambda mode: EddyEngine(tiny_catalog, join_mode=mode),
        ):
            results = {}
            for mode in JOIN_MODES:
                result = factory(mode).execute(tiny_join_query)
                table = result.table
                results[mode] = [
                    tuple(row[name] for name in table.column_names) for row in table.rows()
                ]
            assert results["vectorized"] == results["rows"]
            with pytest.raises(ValueError):
                factory("bogus")

    def test_skinner_g_honors_config_join_mode(self, tiny_catalog, tiny_join_query):
        from repro.skinner.skinner_g import SkinnerG

        reference = None
        for mode in JOIN_MODES:
            config = SkinnerConfig(base_timeout=200, batches_per_table=3, join_mode=mode)
            result = SkinnerG(tiny_catalog, config=config).execute(tiny_join_query)
            rows = sorted(map(repr, result.table.rows()))
            if reference is None:
                reference = rows
            else:
                assert rows == reference
