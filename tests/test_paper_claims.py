"""Qualitative reproduction tests for the paper's headline claims.

These tests run the actual engines on small instances of the paper's
workloads and assert the *shape* of the results — who wins, and by roughly
what kind of margin — rather than absolute numbers.
"""

import pytest

from repro.baselines.traditional import TraditionalEngine
from repro.bench.metrics import QueryRecord, count_failures_and_disasters
from repro.config import SkinnerConfig
from repro.skinner.skinner_c import SkinnerC
from repro.skinner.skinner_h import SkinnerH
from repro.workloads.job import make_job_workload
from repro.workloads.torture import make_correlation_torture, make_udf_torture

FAST = SkinnerConfig(slice_budget=64, batches_per_table=3, base_timeout=300)


@pytest.fixture(scope="module")
def job():
    return make_job_workload(scale=0.4, seed=13)


class TestJoinOrderBenchmarkClaims:
    def test_skinner_c_beats_traditional_on_hazard_queries(self, job):
        """The traditional optimizer's catastrophic plans are Skinner's win (Table 1)."""
        skinner = SkinnerC(job.catalog, job.udfs, FAST)
        postgres = TraditionalEngine(job.catalog, job.udfs, profile="postgres")
        for workload_query in job.tagged("hazard"):
            learned = skinner.execute(workload_query.query)
            planned = postgres.execute(workload_query.query)
            assert learned.rows == planned.rows
            assert learned.metrics.simulated_time < planned.metrics.simulated_time, \
                workload_query.name

    def test_traditional_wins_most_easy_queries(self, job):
        """Per-tuple overhead makes the traditional engine faster on easy queries (Fig. 6)."""
        skinner = SkinnerC(job.catalog, job.udfs, FAST)
        postgres = TraditionalEngine(job.catalog, job.udfs, profile="postgres")
        easy = job.tagged("easy")
        wins = sum(
            postgres.execute(q.query).metrics.simulated_time
            < skinner.execute(q.query).metrics.simulated_time
            for q in easy
        )
        assert wins >= len(easy) // 2

    def test_skinner_final_order_helps_traditional_engine(self, job):
        """Table 3: forcing Skinner's learned order into the traditional engine
        never makes a hazard query slower (it fixes the catastrophic plan)."""
        skinner = SkinnerC(job.catalog, job.udfs, FAST)
        postgres = TraditionalEngine(job.catalog, job.udfs, profile="postgres")
        workload_query = job.tagged("hazard")[0]
        learned_order = skinner.execute(workload_query.query).metrics.final_join_order
        original = postgres.execute(workload_query.query)
        forced = postgres.execute(workload_query.query, forced_order=learned_order)
        assert forced.metrics.intermediate_cardinality <= original.metrics.intermediate_cardinality

    def test_learning_beats_randomization(self, job):
        """Table 5: replacing UCT by random join orders costs performance."""
        queries = job.tagged("hazard") + job.tagged("large")
        learned_engine = SkinnerC(job.catalog, job.udfs, FAST)
        random_engine = SkinnerC(job.catalog, job.udfs,
                                 FAST.with_overrides(order_selection="random", seed=3))
        learned_total = sum(
            learned_engine.execute(q.query).metrics.simulated_time for q in queries
        )
        random_total = sum(
            random_engine.execute(q.query).metrics.simulated_time for q in queries
        )
        assert learned_total < random_total


class TestHybridClaims:
    def test_hybrid_bounded_versus_traditional_on_easy_queries(self, job):
        """Theorem 5.8: Skinner-H pays at most a constant factor over the optimizer."""
        postgres = TraditionalEngine(job.catalog, job.udfs, profile="postgres")
        hybrid = SkinnerH(job.catalog, job.udfs, FAST, dbms_profile="postgres")
        for workload_query in job.tagged("easy")[:3]:
            planned = postgres.execute(workload_query.query)
            hybrid_result = hybrid.execute(workload_query.query)
            assert hybrid_result.metrics.work.total <= 20 * max(1, planned.metrics.work.total)

    def test_hybrid_recovers_on_hazard_query(self, job):
        """On catastrophic queries the hybrid's learning side limits the damage."""
        hybrid = SkinnerH(job.catalog, job.udfs, FAST, dbms_profile="postgres")
        workload_query = job.tagged("hazard")[0]
        result = hybrid.execute(workload_query.query)
        assert result.metrics.extra["winner"] in ("traditional", "learning")
        assert result.table.num_rows >= 0


class TestTortureClaims:
    def test_skinner_never_disasters_on_correlation_torture(self):
        """Figure 11: the regret-bounded strategy avoids optimizer disasters."""
        records = []
        for num_tables in (4, 5):
            for good_position in (1, num_tables // 2):
                workload = make_correlation_torture(
                    num_tables, 80, good_position=good_position
                )
                query = workload.queries[0]
                skinner = SkinnerC(workload.catalog, workload.udfs, FAST)
                optimizer = TraditionalEngine(workload.catalog, workload.udfs,
                                              profile="skinner")
                records.append(QueryRecord.from_metrics(
                    "Skinner", query.name, skinner.execute(query.query).metrics))
                records.append(QueryRecord.from_metrics(
                    "Optimizer", query.name,
                    optimizer.execute(query.query, work_budget=150_000).metrics))
        counts = count_failures_and_disasters(records, metric="time")
        assert counts.get("Skinner", {}).get("disasters", 0) == 0

    def test_udf_torture_skinner_faster_than_optimizer_when_it_matters(self):
        """Figure 9: with opaque UDF joins the optimizer eventually explodes.

        The optimizer cannot distinguish the never-satisfied UDF edge from the
        always-true ones; depending on tie-breaking it either gets lucky (in
        which case Skinner stays within a small constant factor) or explodes
        into the per-query timeout.  Skinner must never be the one exploding.
        """
        workload = make_udf_torture(6, 40, shape="chain", good_position=2)
        query = workload.queries[0].query
        skinner = SkinnerC(workload.catalog, workload.udfs, FAST)
        optimizer = TraditionalEngine(workload.catalog, workload.udfs, profile="skinner")
        learned = skinner.execute(query)
        planned = optimizer.execute(query, work_budget=200_000)
        assert learned.rows[0]["matches"] == 0
        timed_out = planned.metrics.extra["timed_out"]
        assert timed_out or learned.metrics.simulated_time <= 3 * planned.metrics.simulated_time
