"""Tests for the document-data subsystem (:mod:`repro.docstore`).

Four properties carry the subsystem:

* **Shredding is a faithful encoding** — the pre/post region scheme
  satisfies its invariants (ranks are permutations, per-document rank
  ranges are disjoint, the containment test matches real ancestry for
  *every* node pair of a generated forest, parents/depths/sizes agree
  with the tree).
* **The axis compiler is sound** — every workload template executed
  through the real engines returns exactly the node set a tree-walking
  XPath oracle computes on the un-shredded forest, for learned and
  traditional optimizers alike.
* **Ingestion goes through the front door** — ``Connection.load_document``
  works for XML and JSON, over local and remote transports, and shares
  the durable warm-start fingerprint skip with ``load_csv``.
* **The workload generator is deterministic** — same seed, same bytes.
"""

from __future__ import annotations

import math

import pytest

from repro import SkinnerConfig, connect
from repro.errors import CatalogError, ReproError
from repro.docstore import (
    AxisStep,
    DocNode,
    axis_query,
    make_docstore_workload,
    parse_json,
    parse_xml,
    shred_document,
    shred_nodes,
)
from repro.docstore.shred import (
    delete_subtree,
    forest_size,
    insert_subtree,
    node_at,
    update_value,
)
from repro.docstore.workload import _query_pool, build_forest, to_xml
from repro.net.server import ServerThread

FAST = SkinnerConfig(
    slice_budget=64,
    batches_per_table=3,
    base_timeout=200,
    serving_warm_start=False,
)

ENGINES = ["traditional", "skinner-c", "skinner-g", "skinner-h"]


def same_values(left, right):
    """Element-wise equality that treats the NaN marker as equal to itself."""
    return len(left) == len(right) and all(
        x == y
        or (isinstance(x, float) and isinstance(y, float)
            and math.isnan(x) and math.isnan(y))
        for x, y in zip(left, right)
    )


def rows_of(result):
    table = result.table
    columns = [table.column(name).values() for name in table.column_names]
    return list(zip(*columns))


# ----------------------------------------------------------------------
# tree-walking oracle (independent of the relational encoding)
# ----------------------------------------------------------------------
def index_forest(roots):
    """Document-order nodes, identity-keyed parents, and preorder ranks."""
    order, parents, pre = [], {}, {}
    counter = 0

    def visit(node, parent):
        nonlocal counter
        pre[id(node)] = counter
        counter += 1
        parents[id(node)] = parent
        order.append(node)
        for child in node.children:
            visit(child, node)

    for root in roots:
        visit(root, None)
    return order, parents, pre


def _descendants(node):
    out = []
    for child in node.children:
        out.append(child)
        out.extend(_descendants(child))
    return out


def _ancestors(node, parents):
    out = []
    parent = parents[id(node)]
    while parent is not None:
        out.append(parent)
        parent = parents[id(parent)]
    return out


def _following_siblings(node, parents):
    parent = parents[id(node)]
    if parent is None:
        return []
    # identity scan: DocNode compares by value, and sibling subtrees of a
    # generated forest can be equal without being the same node
    index = next(i for i, c in enumerate(parent.children) if c is node)
    return parent.children[index + 1:]


def _compare(left, op, right):
    return {
        "=": left == right, "!=": left != right, "<>": left != right,
        "<": left < right, "<=": left <= right,
        ">": left > right, ">=": left >= right,
    }[op]


def _node_matches(node, step):
    if step.tag is not None and node.tag != step.tag:
        return False
    if step.kind is not None and node.kind != step.kind:
        return False
    if step.value_op is None:
        return True
    if isinstance(step.value, (int, float)) and not isinstance(step.value, bool):
        if math.isnan(node.number):
            return False  # NaN keys never match
        return _compare(node.number, step.value_op, float(step.value))
    return _compare(node.text, step.value_op, str(step.value))


def oracle_axis_path(roots, steps):
    """Evaluate an axis path by walking the trees; returns sorted pre ranks."""
    order, parents, pre = index_forest(roots)
    current = [node for node in order if _node_matches(node, steps[0])]
    for step in steps[1:]:
        seen, nxt = set(), []
        for context in current:
            if step.axis == "child":
                candidates = context.children
            elif step.axis == "descendant":
                candidates = _descendants(context)
            elif step.axis == "following-sibling":
                candidates = _following_siblings(context, parents)
            else:  # ancestor
                candidates = _ancestors(context, parents)
            for candidate in candidates:
                if _node_matches(candidate, step) and id(candidate) not in seen:
                    seen.add(id(candidate))
                    nxt.append(candidate)
        current = nxt
    return sorted(pre[id(node)] for node in current)


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def forest():
    return build_forest(documents=2, items_per_document=6, depth=1, seed=3)


@pytest.fixture(scope="module")
def columns(forest):
    return shred_nodes(forest)


@pytest.fixture(scope="module")
def doc_conn(forest):
    from repro.storage.table import Table

    conn = connect(FAST)
    conn.add_table(Table("doc", shred_nodes(forest)))
    conn.commit()
    yield conn
    conn.close()


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
class TestParsing:
    XML = """
    <site open="yes">
      <region code="eu">europe
        <item><price>12.5</price></item>
      </region>
      <!-- a comment node -->
    </site>
    """

    def test_xml_structure(self):
        root = parse_xml(self.XML)
        assert (root.tag, root.kind) == ("site", "elem")
        assert [c.tag for c in root.children] == ["open", "region"]
        attr = root.children[0]
        assert (attr.kind, attr.text) == ("attr", "yes")
        region = root.children[1]
        assert region.text == "europe"  # element text lives on the element row
        assert [c.tag for c in region.children] == ["code", "item"]
        price = region.children[1].children[0]
        assert price.number == 12.5 and price.text == "12.5"

    def test_xml_non_numeric_text_is_nan(self):
        root = parse_xml("<a>hello</a>")
        assert math.isnan(root.number)

    def test_xml_malformed_raises(self):
        with pytest.raises(ReproError, match="malformed XML"):
            parse_xml("<a><b></a>")

    def test_json_kinds(self):
        root = parse_json(
            '{"name": "x", "price": 3.5, "sold": true, "note": null,'
            ' "tags": ["a", 2]}'
        )
        assert (root.tag, root.kind) == ("#root", "object")
        kinds = {child.tag: child.kind for child in root.children}
        assert kinds == {"name": "string", "price": "number",
                         "sold": "bool", "note": "null", "tags": "array"}
        tags = root.children[-1]
        assert [c.tag for c in tags.children] == ["#item", "#item"]
        assert tags.children[1].number == 2.0
        sold = next(c for c in root.children if c.tag == "sold")
        assert sold.text == "true" and sold.number == 1.0

    def test_json_malformed_raises(self):
        with pytest.raises(ReproError, match="malformed JSON"):
            parse_json("{nope")

    def test_xml_round_trip_through_serializer(self, forest):
        got = shred_nodes(parse_xml(to_xml(forest[0])))
        want = shred_nodes(forest[0])
        assert set(got) == set(want)
        for name in want:
            if name != "val_num":
                assert got[name] == want[name], name
        # XML text is the only value channel, so numbers survive exactly
        # when they are derivable from the text (the generator's seller
        # nodes carry an extra numeric id that is not).
        for value, text in zip(got["val_num"], want["val_str"]):
            try:
                derivable = float(text)
            except ValueError:
                assert math.isnan(value)
            else:
                assert value == derivable


# ----------------------------------------------------------------------
# pre/post encoding invariants
# ----------------------------------------------------------------------
class TestEncoding:
    def test_pre_is_row_order_and_post_is_a_permutation(self, columns):
        n = len(columns["pre"])
        assert columns["pre"] == list(range(n))
        assert sorted(columns["post"]) == list(range(n))

    def test_per_document_rank_ranges_are_shared_and_disjoint(self, forest, columns):
        base = 0
        for root in forest:
            size = root.subtree_size()
            span = range(base, base + size)
            for row in span:
                assert columns["pre"][row] in span
                assert columns["post"][row] in span
            base += size
        assert base == len(columns["pre"])

    def test_containment_test_matches_real_ancestry(self, forest, columns):
        order, parents, pre_of = index_forest(forest)
        ancestry = set()
        for node in order:
            for ancestor in _ancestors(node, parents):
                ancestry.add((pre_of[id(node)], pre_of[id(ancestor)]))
        n = len(order)
        pre, post = columns["pre"], columns["post"]
        for d in range(n):
            for a in range(n):
                claimed = pre[d] > pre[a] and post[d] < post[a]
                assert claimed == ((d, a) in ancestry), (d, a)

    def test_parent_depth_size_agree_with_the_tree(self, forest, columns):
        order, parents, pre_of = index_forest(forest)
        for row, node in enumerate(order):
            parent = parents[id(node)]
            expected_parent = -1 if parent is None else pre_of[id(parent)]
            assert columns["parent"][row] == expected_parent
            assert columns["depth"][row] == len(_ancestors(node, parents))
            assert columns["size"][row] == node.subtree_size() - 1

    def test_forest_editing_helpers(self):
        roots = [parse_xml("<a><b>1</b><c>2</c></a>")]
        assert forest_size(roots) == 3
        assert node_at(roots, 1).tag == "b"
        with pytest.raises(ReproError):
            node_at(roots, 99)
        insert_subtree(roots, 1, DocNode(tag="d", text="3"))
        assert forest_size(roots) == 4
        update_value(roots, 2, "42")
        assert node_at(roots, 2).number == 42.0
        assert delete_subtree(roots, 1)  # drops b and its new child
        assert forest_size(roots) == 2
        assert not delete_subtree(roots, 0)  # roots are never removed
        assert forest_size(roots) == 2


# ----------------------------------------------------------------------
# axis compiler
# ----------------------------------------------------------------------
class TestAxisCompiler:
    def test_rendered_sql(self):
        sql = axis_query("doc", [
            AxisStep("self", tag="review"),
            AxisStep("child", tag="rating", value_op="<=", value=2),
        ])
        assert sql == (
            "SELECT s1.pre, s1.tag, s1.val_str FROM doc s0, doc s1"
            " WHERE s0.tag = 'review' AND s1.parent = s0.pre"
            " AND s1.tag = 'rating' AND s1.val_num <= 2"
        )

    def test_distinct_and_custom_projection(self):
        sql = axis_query("doc", [AxisStep("self", tag="item")],
                         select="s0.pre", distinct=True)
        assert sql == "SELECT DISTINCT s0.pre FROM doc s0 WHERE s0.tag = 'item'"

    def test_string_values_are_quoted_and_escaped(self):
        sql = axis_query("doc", [
            AxisStep("self", tag="comment", value_op="=", value="it's fine"),
        ])
        assert "s0.val_str = 'it''s fine'" in sql

    def test_validation(self):
        with pytest.raises(ReproError, match="at least one step"):
            axis_query("doc", [])
        with pytest.raises(ReproError, match="first step"):
            axis_query("doc", [AxisStep("child")])
        with pytest.raises(ReproError, match="anchor"):
            axis_query("doc", [AxisStep("self"), AxisStep("self")])
        with pytest.raises(ReproError, match="unknown axis"):
            AxisStep("parent")
        with pytest.raises(ReproError, match="together"):
            AxisStep("self", value_op="=")
        with pytest.raises(ReproError, match="operator"):
            AxisStep("self", value_op="LIKE", value="x")


class TestAxisOracle:
    """Every workload template, on the real engines, vs the tree oracle."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_deep_ratings_matches_oracle_on_every_engine(
        self, doc_conn, forest, engine
    ):
        stem, _, steps = _query_pool("doc")[0]
        assert stem == "deep_ratings"
        sql = axis_query("doc", steps, select="s3.pre", distinct=True)
        got = sorted(row[0] for row in rows_of(doc_conn.execute(sql, engine=engine)))
        assert got == oracle_axis_path(forest, steps)

    @pytest.mark.parametrize(
        "template", _query_pool("doc"), ids=[t[0] for t in _query_pool("doc")]
    )
    def test_every_template_matches_oracle(self, doc_conn, forest, template):
        _, _, steps = template
        last = f"s{len(steps) - 1}"
        sql = axis_query("doc", steps, select=f"{last}.pre", distinct=True)
        got = sorted(row[0] for row in rows_of(doc_conn.execute(sql, engine="skinner-c")))
        assert got == oracle_axis_path(forest, steps)


# ----------------------------------------------------------------------
# ingestion front door
# ----------------------------------------------------------------------
class TestLoadDocument:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return path

    def test_xml_load_and_query(self, tmp_path):
        path = self._write(
            tmp_path, "catalog.xml",
            "<shop><item><price>5</price></item>"
            "<item><price>9</price></item></shop>",
        )
        conn = connect(FAST)
        try:
            table = conn.load_document(path)
            assert table.name == "catalog"  # from the file stem
            conn.commit()
            sql = axis_query("catalog", [
                AxisStep("self", tag="price", value_op=">", value=4),
            ], select="s0.val_num")
            assert sorted(rows_of(conn.execute(sql))) == [(5.0,), (9.0,)]
        finally:
            conn.close()

    def test_json_load_with_explicit_name(self, tmp_path):
        path = self._write(tmp_path, "data.json", '{"a": [1, 2, 3]}')
        conn = connect(FAST)
        try:
            table = conn.load_document(path, "docs")
            assert table.name == "docs"
            assert table.num_rows == 5  # root + array + 3 items
        finally:
            conn.close()

    def test_format_inference_failure_and_override(self, tmp_path):
        path = self._write(tmp_path, "notes.txt", "<n>1</n>")
        conn = connect(FAST)
        try:
            with pytest.raises(ReproError, match="cannot infer"):
                conn.load_document(path)
            assert conn.load_document(path, format="xml").num_rows == 1
        finally:
            conn.close()

    def test_in_memory_duplicate_load_requires_replace(self, tmp_path):
        path = self._write(tmp_path, "d.xml", "<a>1</a>")
        conn = connect(FAST)
        try:
            conn.load_document(path)
            with pytest.raises(CatalogError, match="already exists"):
                conn.load_document(path)
            conn.load_document(path, replace=True)  # explicit reload is fine
        finally:
            conn.close()

    def test_durable_reload_is_a_warm_start_skip(self, tmp_path):
        data_dir = tmp_path / "data"
        path = self._write(tmp_path, "d.xml", "<a><b>1</b></a>")
        config = FAST.with_overrides(data_dir=str(data_dir))
        conn = connect(config)
        try:
            conn.load_document(path)
            conn.commit()
        finally:
            conn.close()
        conn = connect(config)
        try:
            # same bytes: idempotent no-op, no replace=True needed
            assert conn.load_document(path).num_rows == 2
            # changed bytes: a real reload, so the strict contract applies
            self._write(tmp_path, "d.xml", "<a><b>1</b><c>2</c></a>")
            with pytest.raises(CatalogError, match="already exists"):
                conn.load_document(path)
            assert conn.load_document(path, replace=True).num_rows == 3
        finally:
            conn.close()

    def test_remote_load_document(self, tmp_path):
        path = self._write(
            tmp_path, "remote.xml",
            "<r><x>1</x><x>2</x><x>3</x></r>",
        )
        with ServerThread(config=FAST) as live:
            conn = connect(live.dsn)
            try:
                table = conn.load_document(path)
                assert table.name == "remote" and table.num_rows == 4
                sql = ("SELECT COUNT(*) AS n FROM remote s0"
                       " WHERE s0.tag = 'x'")
                assert rows_of(conn.execute(sql)) == [(3,)]
            finally:
                conn.close()


# ----------------------------------------------------------------------
# workload generator
# ----------------------------------------------------------------------
class TestWorkloadGenerator:
    KNOBS = dict(documents=2, items_per_document=5, depth=1, sellers=10, seed=5)

    def test_deterministic_in_the_seed(self):
        one = make_docstore_workload(**self.KNOBS)
        two = make_docstore_workload(**self.KNOBS)
        assert [q.name for q in one.queries] == [q.name for q in two.queries]
        t1, t2 = one.catalog.table("doc_nodes"), two.catalog.table("doc_nodes")
        for name in t1.column_names:
            assert same_values(t1.column(name).values(), t2.column(name).values())
        different = make_docstore_workload(**{**self.KNOBS, "seed": 6})
        t3 = different.catalog.table("doc_nodes")
        assert not same_values(t1.column("val_num").values(),
                               t3.column("val_num").values())

    def test_workload_shape(self):
        workload = make_docstore_workload(**self.KNOBS)
        assert workload.name == "docstore_axes"
        assert len(workload.queries) == len(_query_pool("doc_nodes"))
        for query in workload.queries:
            assert "axes" in query.tags
            aliases = [alias for alias, _ in query.query.tables]
            assert len(aliases) >= 2  # every template is a self-join
        assert workload.parameters["seed"] == 5
