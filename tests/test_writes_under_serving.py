"""Property tests for writes interleaved with serving (the churn contract).

The documented snapshot semantics: an engine task snapshots its input
tables when its session **activates** (its first scheduling grant), not
when rows are fetched.  Three consequences are pinned here:

* a commit that lands *before* a submission is always visible to it;
* a commit that lands *mid-stream* never changes the rows of an
  already-activated query — and the catalog-epoch fence keeps that
  query's (correct-for-its-snapshot, stale-for-everyone-else) result out
  of the result cache, so a post-mutation submission re-executes;
* however submits, fetches, and commits interleave, admission slots are
  never leaked: after draining, ``inflight`` and ``queued`` are zero and
  every query returned exactly its activation-time rows.

Plus the observability satellite: per-tenant cache hit/miss counters in
``tenant_stats()`` and their echo in ``Connection.info()``.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SkinnerConfig, connect

FAST = SkinnerConfig(
    slice_budget=32,
    batch_size=8,
    batches_per_table=3,
    base_timeout=150,
    serving_warm_start=False,
    serving_max_inflight=2,
)

SQL = "SELECT t.x FROM t WHERE t.x >= 0"


def rows_of(result):
    table = result.table
    columns = [table.column(name).values() for name in table.column_names]
    return list(zip(*columns))


def fresh_conn(values):
    conn = connect(FAST)
    conn.create_table("t", {"x": list(values)})
    conn.commit()
    return conn


class TestVisibility:
    def test_commit_before_submit_is_visible(self):
        conn = fresh_conn([1, 2, 3])
        try:
            assert sorted(rows_of(conn.execute(SQL))) == [(1,), (2,), (3,)]
            conn.create_table("t", {"x": [7, 8]}, replace=True)
            conn.commit()
            assert sorted(rows_of(conn.execute(SQL))) == [(7,), (8,)]
        finally:
            conn.close()

    def test_mid_stream_commit_keeps_the_activation_snapshot(self):
        conn = fresh_conn(list(range(12)))
        try:
            server = conn.server
            ticket = server.submit(conn.parse(SQL), engine="skinner-c",
                                   stream=True)
            streamed = server.fetch(ticket, 2)  # activates pre-mutation
            conn.create_table("t", {"x": [100, 200]}, replace=True)
            conn.commit()
            while True:
                chunk = server.fetch(ticket, 4)
                if not chunk:
                    break
                streamed.extend(chunk)
            # the activation-time snapshot, not the committed state
            assert sorted(streamed) == [(x,) for x in range(12)]
            assert sorted(rows_of(server.result(ticket))) == \
                [(x,) for x in range(12)]
        finally:
            conn.close()

    def test_epoch_fence_keeps_stale_results_out_of_the_cache(self):
        conn = fresh_conn(list(range(12)))
        try:
            server = conn.server
            ticket = server.submit(conn.parse(SQL), engine="skinner-c",
                                   stream=True)
            server.fetch(ticket, 2)
            conn.create_table("t", {"x": [100, 200]}, replace=True)
            conn.commit()
            server.result(ticket)  # completes under the bumped epoch
            # the fence discarded the stale result instead of caching it
            assert server.stats()["result_cache"]["entries"] == 0
            again = server.submit(conn.parse(SQL), engine="skinner-c")
            assert sorted(rows_of(server.result(again))) == [(100,), (200,)]
            session = server.session(again)
            assert not session.cache_hit
        finally:
            conn.close()


class TestInterleavingProperty:
    """Random interleavings of submit/fetch/commit against a model.

    Each submission is activated immediately (one ``fetch`` after
    ``submit``), so its expected rows are the model's state at that
    point; later mutations must never change them, admission must never
    exceed its bound, and nothing may stay inflight after the drain.
    """

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.sampled_from(["submit", "fetch", "mutate", "drain"]),
                    min_size=1, max_size=14))
    def test_interleavings_preserve_snapshots_and_slots(self, ops):
        values = list(range(8))
        conn = fresh_conn(values)
        try:
            server = conn.server
            pending = []  # (ticket, expected sorted rows, streamed so far)
            version = 0

            def finish(entry):
                ticket, expected, streamed = entry
                while True:
                    chunk = server.fetch(ticket, 3)
                    if not chunk:
                        break
                    streamed.extend(chunk)
                assert sorted(streamed) == expected
                assert sorted(rows_of(server.result(ticket))) == expected

            for op in ops:
                if op == "submit":
                    ticket = server.submit(
                        conn.parse(SQL), engine="skinner-c", stream=True,
                        use_result_cache=False,
                    )
                    streamed = list(server.fetch(ticket, 1))  # force activation
                    pending.append(
                        (ticket, sorted((x,) for x in values), streamed)
                    )
                elif op == "fetch" and pending:
                    pending[0][2].extend(server.fetch(pending[0][0], 2))
                elif op == "mutate":
                    version += 1
                    values = [100 * version + i for i in range(6 + version % 3)]
                    conn.create_table("t", {"x": list(values)}, replace=True)
                    conn.commit()
                elif op == "drain" and pending:
                    finish(pending.pop(0))
                stats = server.stats()
                assert stats["inflight"] <= FAST.serving_max_inflight
            for entry in pending:
                finish(entry)
            stats = server.stats()
            assert stats["inflight"] == 0 and stats["queued"] == 0
        finally:
            conn.close()


class TestCacheCounters:
    def test_tenant_stats_report_per_tenant_cache_traffic(self):
        conn = fresh_conn([1, 2, 3])
        try:
            server = conn.server
            for tenant, expected_hits in (("alpha", 1), ("beta", 0)):
                ticket = server.submit(conn.parse(SQL), tenant=tenant)
                server.result(ticket)
                if expected_hits:
                    hit = server.submit(conn.parse(SQL), tenant=tenant)
                    server.result(hit)
                conn.create_table("t", {"x": [4 + expected_hits]}, replace=True)
                conn.commit()
            stats = server.tenant_stats()
            alpha, beta = stats["alpha"]["caches"], stats["beta"]["caches"]
            assert alpha["result"] == {"hits": 1, "misses": 1}
            assert beta["result"] == {"hits": 0, "misses": 1}
            # order-cache probes happen on behalf of the submitting tenant
            assert set(alpha["order"]) == {"hits", "misses"}
            # invalidations are server-wide: both tenants see both commits
            assert alpha["invalidations"] == beta["invalidations"] == 2
        finally:
            conn.close()

    def test_connection_info_echoes_serving_cache_counters(self):
        conn = fresh_conn([1, 2, 3])
        try:
            zeroed = conn.info()["caches"]
            assert zeroed["result"] == {"entries": 0, "hits": 0,
                                        "misses": 0, "invalidations": 0}
            assert zeroed["order"]["hits"] == 0
            conn.execute(SQL)
            conn.execute(SQL)
            caches = conn.info()["caches"]
            assert caches["result"]["hits"] == 1
            assert caches["result"]["misses"] == 1
            assert caches["result"]["entries"] == 1
            conn.create_table("t", {"x": [9]}, replace=True)
            conn.commit()
            after = conn.info()["caches"]
            assert after["result"]["invalidations"] == 1
            assert after["result"]["entries"] == 0
        finally:
            conn.close()

    def test_remote_info_reports_no_local_caches(self):
        from repro.net.server import ServerThread

        with ServerThread(config=FAST) as live:
            conn = connect(live.dsn)
            try:
                assert conn.info()["caches"] is None
            finally:
                conn.close()
