"""Unit tests for the query object and the join graph."""

import pytest

from repro.errors import PlanningError
from repro.query.expressions import ColumnRef, Star
from repro.query.join_graph import JoinGraph
from repro.query.predicates import column_compare_literal, column_equals_column
from repro.query.query import AggregateSpec, OrderItem, Query, SelectItem, make_query


def chain_query(num_tables: int) -> Query:
    aliases = [f"t{i}" for i in range(num_tables)]
    predicates = [
        column_equals_column(aliases[i], "b", aliases[i + 1], "a")
        for i in range(num_tables - 1)
    ]
    return make_query(aliases, predicates=predicates)


class TestQueryValidation:
    def test_requires_tables(self):
        with pytest.raises(PlanningError):
            Query(tables=())

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(PlanningError):
            make_query([("a", "t"), ("a", "s")])

    def test_predicate_over_unknown_alias_rejected(self):
        with pytest.raises(PlanningError):
            make_query(["t"], predicates=[column_compare_literal("zzz", "x", "=", 1)])

    def test_select_item_requires_exactly_one_kind(self):
        with pytest.raises(PlanningError):
            SelectItem(expression=ColumnRef("t", "x"),
                       aggregate=AggregateSpec("count", Star()))
        with pytest.raises(PlanningError):
            SelectItem()

    def test_unknown_aggregate_function_rejected(self):
        with pytest.raises(PlanningError):
            AggregateSpec("median", Star())


class TestQueryAccessors:
    def test_aliases_and_base_tables(self):
        query = make_query([("o", "orders"), ("c", "customers")])
        assert query.aliases == ["o", "c"]
        assert query.base_table("o") == "orders"
        assert query.num_tables == 2
        with pytest.raises(PlanningError):
            query.base_table("x")

    def test_predicate_partitioning(self, tiny_join_query):
        assert len(tiny_join_query.unary_predicates()) == 2
        assert len(tiny_join_query.unary_predicates("c")) == 1
        assert len(tiny_join_query.join_predicates()) == 2
        assert len(tiny_join_query.equi_join_predicates()) == 2
        assert not tiny_join_query.has_udf_predicates()

    def test_post_processing_flags(self):
        plain = make_query(["t"])
        assert not plain.has_post_processing
        with_limit = make_query(["t"], limit=5)
        assert with_limit.has_post_processing
        with_agg = make_query(
            ["t"], select_items=[SelectItem(aggregate=AggregateSpec("count", Star()))]
        )
        assert with_agg.has_aggregates

    def test_output_columns(self):
        query = make_query(
            ["t"],
            select_items=[SelectItem(expression=ColumnRef("t", "a"))],
            group_by=[ColumnRef("t", "b")],
            order_by=[OrderItem(ColumnRef("t", "c"), ascending=False)],
        )
        names = {ref.column for ref in query.output_columns()}
        assert names == {"a", "b", "c"}

    def test_display_round_trips_keywords(self):
        query = make_query(
            [("o", "orders")],
            predicates=[column_compare_literal("o", "amount", ">", 10)],
            select_items=[SelectItem(aggregate=AggregateSpec("count", Star()), alias="n")],
            limit=3,
        )
        text = query.display()
        assert "SELECT" in text and "WHERE" in text and "LIMIT 3" in text

    def test_select_item_output_names(self):
        item = SelectItem(expression=ColumnRef("t", "price"))
        assert item.output_name(0) == "price"
        aliased = SelectItem(expression=ColumnRef("t", "price"), alias="p")
        assert aliased.output_name(0) == "p"
        agg = SelectItem(aggregate=AggregateSpec("sum", ColumnRef("t", "price")))
        assert "sum" in agg.output_name(0)


class TestJoinGraph:
    def test_chain_connectivity(self):
        graph = chain_query(4).join_graph()
        assert graph.neighbors("t1") == {"t0", "t2"}
        assert graph.is_connected()

    def test_eligible_next_prefers_connected(self):
        graph = chain_query(4).join_graph()
        assert set(graph.eligible_next(["t1"])) == {"t0", "t2"}
        assert set(graph.eligible_next([])) == {"t0", "t1", "t2", "t3"}

    def test_eligible_next_falls_back_to_all_when_disconnected(self):
        query = make_query(["a", "b", "c"],
                           predicates=[column_equals_column("a", "x", "b", "x")])
        graph = query.join_graph()
        # After {a, b}, only c remains and it is disconnected: still eligible.
        assert graph.eligible_next(["a", "b"]) == ["c"]
        # Starting from c, nothing is connected: all others are eligible.
        assert set(graph.eligible_next(["c"])) == {"a", "b"}

    def test_chain_join_order_count(self):
        # For a chain of n tables the number of Cartesian-avoiding left-deep
        # orders is 2^(n-1).
        for n in (2, 3, 4, 5):
            graph = chain_query(n).join_graph()
            assert graph.count_join_orders() == 2 ** (n - 1)

    def test_valid_join_orders_are_permutations(self):
        graph = chain_query(3).join_graph()
        orders = graph.valid_join_orders()
        assert len(orders) == graph.count_join_orders()
        for order in orders:
            assert sorted(order) == ["t0", "t1", "t2"]

    def test_star_graph_orders(self):
        center = "hub"
        spokes = ["s1", "s2", "s3"]
        predicates = [column_equals_column(center, "id", s, "hub_id") for s in spokes]
        graph = JoinGraph([center] + spokes, predicates)
        # Starting anywhere, the hub must come no later than second.
        for order in graph.valid_join_orders():
            assert order.index(center) <= 1

    def test_predicates_between(self):
        query = chain_query(3)
        graph = query.join_graph()
        assert len(graph.predicates_between("t0", "t1")) == 1
        assert graph.predicates_between("t0", "t2") == []

    def test_disconnected_graph_reports_not_connected(self):
        graph = JoinGraph(["a", "b"], [])
        assert not graph.is_connected()
