"""Unit tests for statistics collection and cardinality estimation."""

import pytest

from repro.engine.executor import PlanExecutor
from repro.optimizer.cardinality import EstimatedCardinality, TrueCardinality
from repro.optimizer.statistics import StatisticsCatalog
from repro.query.expressions import ColumnRef, FunctionCall
from repro.query.predicates import Predicate, column_compare_literal, column_equals_column
from repro.query.query import make_query
from repro.query.udf import UdfRegistry
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from tests.conftest import reference_join_count


@pytest.fixture
def stats_catalog(tiny_catalog) -> StatisticsCatalog:
    return StatisticsCatalog.collect(tiny_catalog)


class TestStatisticsCollection:
    def test_row_counts(self, tiny_catalog, stats_catalog):
        assert stats_catalog.table("orders").row_count == tiny_catalog.table("orders").num_rows

    def test_distinct_counts(self, stats_catalog):
        assert stats_catalog.table("customers").column("country").distinct_count == 3
        assert stats_catalog.table("orders").column("cid").distinct_count == 4

    def test_min_max_numeric(self, stats_catalog):
        column = stats_catalog.table("orders").column("amount")
        assert column.min_value == 60
        assert column.max_value == 500

    def test_string_columns_have_no_range(self, stats_catalog):
        column = stats_catalog.table("customers").column("country")
        assert column.min_value is None

    def test_histogram_built_for_numeric(self, stats_catalog):
        column = stats_catalog.table("orders").column("amount")
        assert sum(column.histogram) == 6

    def test_missing_table_returns_none(self, stats_catalog):
        assert stats_catalog.table("nope") is None

    def test_sampling_large_column(self):
        catalog = Catalog()
        catalog.add_table(Table("big", {"x": list(range(5000))}))
        stats = StatisticsCatalog.collect(catalog, sample_limit=500)
        column = stats.table("big").column("x")
        assert column.distinct_count > 100

    def test_selectivity_helpers(self, stats_catalog):
        column = stats_catalog.table("customers").column("country")
        assert column.equality_selectivity() == pytest.approx(1 / 3)
        amount = stats_catalog.table("orders").column("amount")
        low = amount.range_selectivity("<", 100)
        high = amount.range_selectivity(">", 100)
        assert 0.0 <= low <= 1.0 and 0.0 <= high <= 1.0
        assert low + high == pytest.approx(1.0, abs=0.2)


class TestEstimatedCardinality:
    def test_base_cardinality_with_filter(self, tiny_catalog, stats_catalog):
        query = make_query(
            [("c", "customers")],
            predicates=[column_compare_literal("c", "country", "=", "de")],
        )
        estimator = EstimatedCardinality(query, stats_catalog)
        assert estimator.base_cardinality("c") == pytest.approx(5 / 3, rel=0.01)

    def test_equi_join_selectivity_uses_distinct_counts(self, tiny_catalog, stats_catalog):
        query = make_query(
            [("c", "customers"), ("o", "orders")],
            predicates=[column_equals_column("c", "cid", "o", "cid")],
        )
        estimator = EstimatedCardinality(query, stats_catalog)
        # 5 customers x 6 orders x 1/max(5, 4) distinct cids
        assert estimator.cardinality(["c", "o"]) == pytest.approx(30 / 5)

    def test_independence_assumption_multiplies_filters(self, tiny_catalog, stats_catalog):
        query = make_query(
            [("o", "orders")],
            predicates=[column_compare_literal("o", "cid", "=", 1),
                        column_compare_literal("o", "amount", "<", 200)],
        )
        estimator = EstimatedCardinality(query, stats_catalog)
        single = EstimatedCardinality(
            make_query([("o", "orders")],
                       predicates=[column_compare_literal("o", "cid", "=", 1)]),
            stats_catalog,
        )
        assert estimator.base_cardinality("o") < single.base_cardinality("o")

    def test_udf_predicates_use_hint(self, tiny_catalog, stats_catalog):
        udfs = UdfRegistry()
        udfs.register("opaque", lambda v: True, selectivity_hint=0.25)
        query = make_query(
            [("o", "orders")],
            predicates=[Predicate(FunctionCall("opaque", (ColumnRef("o", "amount"),)))],
        )
        estimator = EstimatedCardinality(query, stats_catalog, udfs)
        assert estimator.base_cardinality("o") == pytest.approx(6 * 0.25)

    def test_estimates_never_drop_below_one(self, tiny_catalog, stats_catalog):
        query = make_query(
            [("c", "customers")],
            predicates=[column_compare_literal("c", "score", "<", -1000)],
        )
        estimator = EstimatedCardinality(query, stats_catalog)
        assert estimator.base_cardinality("c") >= 1.0


class TestTrueCardinality:
    def test_matches_brute_force(self, tiny_catalog, tiny_join_query):
        executor = PlanExecutor(tiny_catalog, tiny_join_query)
        oracle = TrueCardinality(executor)
        expected = reference_join_count(tiny_catalog, tiny_join_query)
        assert oracle.cardinality(["c", "o", "i"]) == expected

    def test_caches_subsets(self, tiny_catalog, tiny_join_query):
        executor = PlanExecutor(tiny_catalog, tiny_join_query)
        oracle = TrueCardinality(executor)
        oracle.cardinality(["c", "o"])
        oracle.cardinality(["o", "c"])
        assert oracle.cache_size == 1

    def test_single_table_cardinality_is_filtered_size(self, tiny_catalog, tiny_join_query):
        executor = PlanExecutor(tiny_catalog, tiny_join_query)
        oracle = TrueCardinality(executor)
        # customers with score > 10
        assert oracle.base_cardinality("c") == 4
