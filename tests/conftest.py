"""Shared fixtures and a brute-force reference oracle for differential tests."""

from __future__ import annotations

import itertools
from typing import Any

import pytest

from repro.query.query import Query
from repro.query.udf import UdfRegistry
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.job import make_job_workload


def reference_join_count(catalog: Catalog, query: Query, udfs: UdfRegistry | None = None) -> int:
    """Count result tuples by brute-force enumeration (independent oracle).

    Enumerates the full cross product of all query tables and evaluates every
    predicate per combination.  Exponential — only use on tiny inputs.
    """
    return len(reference_join_tuples(catalog, query, udfs))


def reference_join_tuples(
    catalog: Catalog, query: Query, udfs: UdfRegistry | None = None
) -> set[tuple[int, ...]]:
    """Brute-force set of result index tuples (in query alias order)."""
    tables = {alias: catalog.table(name) for alias, name in query.tables}
    aliases = query.aliases
    ranges = [range(tables[alias].num_rows) for alias in aliases]
    result: set[tuple[int, ...]] = set()
    for combination in itertools.product(*ranges):
        binding = {
            alias: tables[alias].row(row) for alias, row in zip(aliases, combination)
        }
        if all(predicate.evaluate(binding, udfs) for predicate in query.predicates):
            result.add(tuple(combination))
    return result


def result_multiset(result) -> list[tuple[Any, ...]]:
    """Rows of a QueryResult as a sorted list of value tuples (order-insensitive)."""
    names = result.table.column_names
    rows = [tuple(row[name] for name in names) for row in result.table.rows()]
    return sorted(rows, key=repr)


@pytest.fixture
def tiny_catalog() -> Catalog:
    """Three small joinable tables (orders / customers / items style)."""
    catalog = Catalog()
    catalog.add_table(Table("customers", {
        "cid": [1, 2, 3, 4, 5],
        "country": ["us", "de", "us", "fr", "de"],
        "score": [10, 20, 30, 40, 50],
    }))
    catalog.add_table(Table("orders", {
        "oid": [10, 11, 12, 13, 14, 15],
        "cid": [1, 1, 2, 3, 5, 5],
        "amount": [100, 250, 80, 120, 500, 60],
    }))
    catalog.add_table(Table("items", {
        "oid": [10, 10, 11, 12, 13, 14, 14, 15],
        "product": ["a", "b", "a", "c", "b", "a", "c", "b"],
        "quantity": [1, 2, 3, 1, 5, 2, 2, 4],
    }))
    return catalog


@pytest.fixture
def tiny_join_query() -> Query:
    """customers ⋈ orders ⋈ items with one filter per table."""
    from repro.query.predicates import column_compare_literal, column_equals_column
    from repro.query.query import make_query

    return make_query(
        [("c", "customers"), ("o", "orders"), ("i", "items")],
        predicates=[
            column_equals_column("c", "cid", "o", "cid"),
            column_equals_column("o", "oid", "i", "oid"),
            column_compare_literal("c", "score", ">", 10),
            column_compare_literal("i", "quantity", ">=", 2),
        ],
    )


@pytest.fixture(scope="session")
def job_workload():
    """A very small JOB-analogue workload shared by engine integration tests."""
    return make_job_workload(scale=0.12, seed=5)
