"""Unit tests for hash indexes, the catalog, and CSV loading."""

import pytest

from repro.errors import CatalogError, SchemaError
from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType
from repro.storage.index import HashIndex
from repro.storage.loader import load_csv, save_csv
from repro.storage.table import Table


class TestHashIndex:
    def test_positions_for_int_values(self):
        index = HashIndex(Column([5, 7, 5, 9, 5]))
        assert index.positions(5).tolist() == [0, 2, 4]
        assert index.positions(9).tolist() == [3]

    def test_positions_missing_value(self):
        index = HashIndex(Column([1, 2]))
        assert index.positions(99).tolist() == []

    def test_positions_for_strings_decoded(self):
        index = HashIndex(Column(["a", "b", "a"]))
        assert index.positions("a").tolist() == [0, 2]

    def test_next_position_jumps_forward(self):
        index = HashIndex(Column([4, 4, 8, 4, 8]))
        assert index.next_position(4, 1) == 1
        assert index.next_position(4, 2) == 3
        assert index.next_position(4, 4) is None

    def test_next_position_missing_value(self):
        index = HashIndex(Column([1, 2, 3]))
        assert index.next_position(42, 0) is None

    def test_count(self):
        index = HashIndex(Column([1, 1, 2]))
        assert index.count(1) == 2
        assert index.count(3) == 0

    def test_len_is_distinct_values(self):
        assert len(HashIndex(Column([1, 1, 2, 3]))) == 3


class TestCatalog:
    def test_add_and_get(self):
        catalog = Catalog()
        catalog.add_table(Table("t", {"a": [1]}))
        assert catalog.table("t").num_rows == 1
        assert catalog.has_table("t")
        assert catalog.table_names() == ["t"]
        assert len(catalog) == 1

    def test_duplicate_add_raises(self):
        catalog = Catalog()
        catalog.add_table(Table("t", {"a": [1]}))
        with pytest.raises(CatalogError):
            catalog.add_table(Table("t", {"a": [2]}))

    def test_replace(self):
        catalog = Catalog()
        catalog.add_table(Table("t", {"a": [1]}))
        catalog.add_table(Table("t", {"a": [1, 2]}), replace=True)
        assert catalog.table("t").num_rows == 2

    def test_missing_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_drop(self):
        catalog = Catalog()
        catalog.add_table(Table("t", {"a": [1]}))
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.drop_table("t")

    def test_index_caching(self):
        catalog = Catalog()
        catalog.add_table(Table("t", {"a": [1, 2, 1]}))
        first = catalog.build_index("t", "a")
        second = catalog.build_index("t", "a")
        assert first is second
        assert catalog.index_count() == 1
        assert catalog.index("t", "a") is first
        assert catalog.index("t", "b") is None

    def test_replacing_table_invalidates_indexes(self):
        catalog = Catalog()
        catalog.add_table(Table("t", {"a": [1, 2]}))
        catalog.build_index("t", "a")
        catalog.add_table(Table("t", {"a": [3]}), replace=True)
        assert catalog.index_count() == 0

    def test_iteration(self):
        catalog = Catalog()
        catalog.add_table(Table("a", {"x": [1]}))
        catalog.add_table(Table("b", {"x": [1]}))
        assert sorted(table.name for table in catalog) == ["a", "b"]


class TestCsvLoader:
    def test_round_trip(self, tmp_path):
        table = Table("t", {"id": [1, 2], "name": ["x", "y"], "score": [1.5, 2.5]})
        path = tmp_path / "t.csv"
        save_csv(table, path)
        loaded = load_csv(path)
        assert loaded.name == "t"
        assert loaded.column("id").values() == [1, 2]
        assert loaded.column("name").values() == ["x", "y"]
        assert loaded.column("score").values() == [1.5, 2.5]

    def test_type_inference_falls_back_to_string(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text("a,b\n1,x\n2,y\n")
        loaded = load_csv(path, "mixed")
        assert loaded.column("a").ctype is ColumnType.INT
        assert loaded.column("b").ctype is ColumnType.STRING

    def test_explicit_schema(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("a\n1\n2\n")
        loaded = load_csv(path, schema={"a": ColumnType.FLOAT})
        assert loaded.column("a").ctype is ColumnType.FLOAT

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_csv(path)

    def test_ragged_rows_raise(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(SchemaError):
            load_csv(path)
