"""Unit tests for the typed column implementation."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage.column import Column, ColumnType


class TestTypeInference:
    def test_integers(self):
        assert Column([1, 2, 3]).ctype is ColumnType.INT

    def test_floats(self):
        assert Column([1.5, 2.0]).ctype is ColumnType.FLOAT

    def test_whole_floats_stay_float(self):
        assert Column([1.0, 2.0]).ctype is ColumnType.FLOAT

    def test_strings(self):
        assert Column(["a", "b"]).ctype is ColumnType.STRING

    def test_mixed_int_then_string_is_string(self):
        column = Column(["x", "y", "z"])
        assert column.ctype is ColumnType.STRING

    def test_numpy_int_array(self):
        assert Column(np.array([1, 2, 3])).ctype is ColumnType.INT

    def test_numpy_float_array(self):
        assert Column(np.array([1.0, 2.5])).ctype is ColumnType.FLOAT

    def test_explicit_type_overrides_inference(self):
        column = Column([1, 2, 3], ColumnType.FLOAT)
        assert column.ctype is ColumnType.FLOAT
        assert column.value(0) == 1.0


class TestValueAccess:
    def test_int_values(self):
        column = Column([5, 7, 9])
        assert column.value(1) == 7
        assert column.values() == [5, 7, 9]

    def test_string_round_trip(self):
        column = Column(["apple", "pear", "apple"])
        assert column.values() == ["apple", "pear", "apple"]

    def test_string_dictionary_is_deduplicated(self):
        column = Column(["a", "b", "a", "a", "c"])
        assert sorted(column.dictionary) == ["a", "b", "c"]
        assert column.distinct_count() == 3

    def test_dictionary_of_numeric_column_raises(self):
        with pytest.raises(SchemaError):
            _ = Column([1, 2]).dictionary

    def test_len(self):
        assert len(Column([1, 2, 3, 4])) == 4

    def test_empty_column(self):
        column = Column([])
        assert len(column) == 0
        with pytest.raises(SchemaError):
            column.min_max()


class TestEncoding:
    def test_encode_known_string(self):
        column = Column(["x", "y"])
        code = column.encode("y")
        assert column.raw(1) == code

    def test_encode_unknown_string_returns_sentinel(self):
        assert Column(["x", "y"]).encode("missing") == -1

    def test_encode_numeric_passthrough(self):
        assert Column([1, 2, 3]).encode(2) == 2

    def test_encode_non_string_against_string_column_raises(self):
        with pytest.raises(SchemaError):
            Column(["x"]).encode(5)


class TestComparisons:
    def test_int_equality_mask(self):
        mask = Column([1, 2, 2, 3]).compare("=", 2)
        assert mask.tolist() == [False, True, True, False]

    def test_int_range_mask(self):
        mask = Column([1, 2, 3, 4]).compare(">=", 3)
        assert mask.tolist() == [False, False, True, True]

    def test_not_equal(self):
        mask = Column([1, 2, 1]).compare("!=", 1)
        assert mask.tolist() == [False, True, False]

    def test_string_equality(self):
        mask = Column(["a", "b", "a"]).compare("=", "a")
        assert mask.tolist() == [True, False, True]

    def test_string_equality_unknown_literal(self):
        mask = Column(["a", "b"]).compare("=", "zzz")
        assert mask.tolist() == [False, False]

    def test_string_ordering_comparison(self):
        mask = Column(["apple", "banana", "cherry"]).compare("<", "banana")
        assert mask.tolist() == [True, False, False]

    def test_unknown_operator_raises(self):
        with pytest.raises(SchemaError):
            Column([1]).compare("LIKE", 1)

    def test_isin_int(self):
        mask = Column([1, 2, 3, 4]).isin([2, 4])
        assert mask.tolist() == [False, True, False, True]

    def test_isin_string(self):
        mask = Column(["a", "b", "c"]).isin(["c", "zz"])
        assert mask.tolist() == [False, False, True]


class TestBulkOperations:
    def test_take_reorders(self):
        column = Column([10, 20, 30]).take([2, 0])
        assert column.values() == [30, 10]

    def test_take_string(self):
        column = Column(["a", "b", "c"]).take(np.array([1, 1]))
        assert column.values() == ["b", "b"]

    def test_min_max_int(self):
        assert Column([5, 1, 9]).min_max() == (1, 9)

    def test_min_max_string(self):
        assert Column(["pear", "apple"]).min_max() == ("apple", "pear")

    def test_distinct_count_int(self):
        assert Column([1, 1, 2, 2, 2, 3]).distinct_count() == 3

    def test_equality_of_columns(self):
        assert Column([1, 2]) == Column([1, 2])
        assert Column([1, 2]) != Column([2, 1])
        assert Column(["a"]) != Column([1])
