"""Crash-recovery tests: SIGKILL a process mid-transaction, reopen, verify.

These are the end-to-end acceptance tests of the WAL protocol: a child
process commits some state, starts (but never commits) more mutations, and
is killed with ``SIGKILL`` — no atexit hooks, no checkpointing ``close()``.
Reopening the ``data_dir`` must recover exactly the committed state:
committed tables intact and queryable, uncommitted tables gone.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import textwrap
import time

from repro import connect

_TIMEOUT = 60.0


def _wait_for(path, process, what: str) -> None:
    """Block until ``path`` exists (or the child exits prematurely)."""
    deadline = time.monotonic() + _TIMEOUT
    while not path.exists():
        if process.poll() is not None:
            out, err = process.communicate()
            raise AssertionError(
                f"child exited before {what}: rc={process.returncode}\n{out}\n{err}"
            )
        if time.monotonic() > deadline:
            process.kill()
            raise AssertionError(f"timed out waiting for {what}")
        time.sleep(0.02)


def _sigkill(process) -> None:
    os.kill(process.pid, signal.SIGKILL)
    process.wait(timeout=_TIMEOUT)


def _spawn(script_path, *args) -> subprocess.Popen:
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, str(script_path), *map(str, args)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )


class TestKillNineRecovery:
    def test_committed_survives_uncommitted_does_not(self, tmp_path):
        data_dir = tmp_path / "db"
        sentinel = tmp_path / "mid-transaction"
        script = tmp_path / "child.py"
        script.write_text(textwrap.dedent("""\
            import sys, time
            from pathlib import Path
            from repro import connect

            def main():
                data_dir, sentinel = sys.argv[1], Path(sys.argv[2])
                conn = connect(data_dir=data_dir)
                conn.create_table("committed", {
                    "id": [1, 2, 3],
                    "name": ["ann", "bob", "cat"],
                    "score": [1.5, 2.5, 3.5],
                })
                conn.commit()
                # Open a second transaction and leave it hanging: these
                # mutations reach the WAL but no commit record follows.
                conn.create_table("uncommitted", {"id": [9, 9, 9]})
                conn.drop_table("uncommitted")
                conn.create_table("uncommitted", {"id": [7]})
                sentinel.touch()
                time.sleep(600)  # parent SIGKILLs us here

            if __name__ == "__main__":
                main()
        """))
        child = _spawn(script, data_dir, sentinel)
        _wait_for(sentinel, child, "mid-transaction sentinel")
        _sigkill(child)

        conn = connect(data_dir=data_dir)
        try:
            assert conn.catalog.table_names() == ["committed"]
            info = conn.catalog.buffer_manager.recovery_info
            assert info["discarded_records"] >= 3
            result = conn.execute_direct(
                "SELECT committed.name FROM committed WHERE committed.id > 1"
            )
            assert sorted(row["name"] for row in result.rows) == ["bob", "cat"]
        finally:
            conn.close()

    def test_kill_between_commits_keeps_every_committed_transaction(self, tmp_path):
        data_dir = tmp_path / "db"
        sentinel = tmp_path / "two-committed"
        script = tmp_path / "child.py"
        script.write_text(textwrap.dedent("""\
            import sys, time
            from pathlib import Path
            from repro import connect

            def main():
                data_dir, sentinel = sys.argv[1], Path(sys.argv[2])
                conn = connect(data_dir=data_dir)
                conn.create_table("first", {"a": [1, 2]})
                conn.commit()
                conn.create_table("second", {"b": ["x", "y", "z"]})
                conn.commit()
                sentinel.touch()
                time.sleep(600)

            if __name__ == "__main__":
                main()
        """))
        child = _spawn(script, data_dir, sentinel)
        _wait_for(sentinel, child, "second commit sentinel")
        _sigkill(child)

        conn = connect(data_dir=data_dir)
        try:
            assert sorted(conn.catalog.table_names()) == ["first", "second"]
            assert conn.catalog.table("second").column("b").values() == ["x", "y", "z"]
        finally:
            conn.close()

    def test_repeated_crashes_are_idempotent(self, tmp_path):
        # Crash-reopen-crash: each recovery checkpointed state must itself
        # recover cleanly (recovery is idempotent, generations stay fresh).
        data_dir = tmp_path / "db"
        script = tmp_path / "child.py"
        script.write_text(textwrap.dedent("""\
            import sys, time
            from pathlib import Path
            from repro import connect

            def main():
                data_dir, sentinel, name = sys.argv[1], Path(sys.argv[2]), sys.argv[3]
                conn = connect(data_dir=data_dir)
                conn.create_table(name, {"v": [len(name)]}, replace=False)
                conn.commit()
                conn.create_table(name + "_doomed", {"v": [0]})
                sentinel.touch()
                time.sleep(600)

            if __name__ == "__main__":
                main()
        """))
        for name in ("alpha", "beta"):
            sentinel = tmp_path / f"ready-{name}"
            child = _spawn(script, data_dir, sentinel, name)
            _wait_for(sentinel, child, f"{name} sentinel")
            _sigkill(child)

        conn = connect(data_dir=data_dir)
        try:
            assert sorted(conn.catalog.table_names()) == ["alpha", "beta"]
        finally:
            conn.close()


class TestServerKillNineRecovery:
    def test_server_sigkill_preserves_committed_state(self, tmp_path):
        data_dir = tmp_path / "db"
        port = _free_port()
        server = _spawn_server(port, data_dir)
        try:
            _wait_listening(server, port)
            remote = connect(f"repro://127.0.0.1:{port}/")
            remote.create_table("r", {"id": [1, 2, 3], "x": [10, 20, 30]})
            remote.commit()
            # Leave an uncommitted mutation hanging server-side.
            remote.create_table("doomed", {"id": [0]})
            _sigkill(server)
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=_TIMEOUT)

        conn = connect(data_dir=data_dir)
        try:
            assert conn.catalog.table_names() == ["r"]
            result = conn.execute_direct("SELECT r.x FROM r WHERE r.id = 2")
            assert [row["x"] for row in result.rows] == [20]
        finally:
            conn.close()


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_server(port: int, data_dir) -> subprocess.Popen:
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.net",
         "--port", str(port), "--data-dir", str(data_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )


def _wait_listening(process, port: int) -> None:
    deadline = time.monotonic() + _TIMEOUT
    while True:
        if process.poll() is not None:
            out, err = process.communicate()
            raise AssertionError(
                f"server exited early: rc={process.returncode}\n{out}\n{err}"
            )
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=0.5):
                return
        except OSError:
            if time.monotonic() > deadline:
                process.kill()
                raise AssertionError("server never started listening") from None
            time.sleep(0.05)
