"""Unit tests for post-processing (projection, aggregation, ordering, limit)."""

import numpy as np
import pytest

from repro.engine.postprocess import post_process
from repro.engine.relation import RowIdRelation
from repro.query.expressions import ColumnRef, FunctionCall, Star
from repro.query.query import AggregateSpec, OrderItem, SelectItem, make_query
from repro.storage.table import Table


@pytest.fixture
def sales_table() -> Table:
    return Table("sales", {
        "region": ["n", "s", "n", "e", "s", "n"],
        "amount": [10, 20, 30, 40, 50, 60],
        "units": [1, 2, 3, 4, 5, 6],
    })


@pytest.fixture
def full_relation(sales_table) -> RowIdRelation:
    return RowIdRelation.from_base("s", np.arange(sales_table.num_rows))


def run(query, relation, tables):
    return post_process(query, relation, tables)


class TestProjection:
    def test_select_star_prefixes_columns(self, sales_table, full_relation):
        query = make_query([("s", "sales")])
        result = run(query, full_relation, {"s": sales_table})
        assert result.num_rows == 6
        assert "s_region" in result.column_names

    def test_explicit_projection(self, sales_table, full_relation):
        query = make_query(
            [("s", "sales")],
            select_items=[SelectItem(expression=ColumnRef("s", "amount"), alias="a")],
        )
        result = run(query, full_relation, {"s": sales_table})
        assert result.column_names == ["a"]
        assert result.column("a").values() == [10, 20, 30, 40, 50, 60]

    def test_computed_projection(self, sales_table, full_relation):
        expr = FunctionCall("mul", (ColumnRef("s", "amount"), ColumnRef("s", "units")))
        query = make_query([("s", "sales")],
                           select_items=[SelectItem(expression=expr, alias="revenue")])
        result = run(query, full_relation, {"s": sales_table})
        assert result.column("revenue").values()[0] == 10

    def test_distinct(self, sales_table, full_relation):
        query = make_query(
            [("s", "sales")],
            select_items=[SelectItem(expression=ColumnRef("s", "region"))],
            distinct=True,
        )
        result = run(query, full_relation, {"s": sales_table})
        assert sorted(result.column("region").values()) == ["e", "n", "s"]


class TestAggregation:
    def test_global_aggregates(self, sales_table, full_relation):
        query = make_query(
            [("s", "sales")],
            select_items=[
                SelectItem(aggregate=AggregateSpec("count", Star()), alias="n"),
                SelectItem(aggregate=AggregateSpec("sum", ColumnRef("s", "amount")), alias="total"),
                SelectItem(aggregate=AggregateSpec("min", ColumnRef("s", "amount")), alias="lo"),
                SelectItem(aggregate=AggregateSpec("max", ColumnRef("s", "amount")), alias="hi"),
                SelectItem(aggregate=AggregateSpec("avg", ColumnRef("s", "amount")), alias="mean"),
            ],
        )
        result = run(query, full_relation, {"s": sales_table})
        row = result.rows()[0]
        assert row == {"n": 6, "total": 210, "lo": 10, "hi": 60, "mean": 35.0}

    def test_group_by(self, sales_table, full_relation):
        query = make_query(
            [("s", "sales")],
            select_items=[
                SelectItem(expression=ColumnRef("s", "region"), alias="region"),
                SelectItem(aggregate=AggregateSpec("sum", ColumnRef("s", "amount")), alias="total"),
            ],
            group_by=[ColumnRef("s", "region")],
        )
        result = run(query, full_relation, {"s": sales_table})
        totals = {row["region"]: row["total"] for row in result.rows()}
        assert totals == {"n": 100, "s": 70, "e": 40}

    def test_aggregate_over_empty_input(self, sales_table):
        query = make_query(
            [("s", "sales")],
            select_items=[
                SelectItem(aggregate=AggregateSpec("count", Star()), alias="n"),
                SelectItem(aggregate=AggregateSpec("sum", ColumnRef("s", "amount")), alias="total"),
            ],
        )
        empty = RowIdRelation.empty(["s"])
        result = run(query, empty, {"s": sales_table})
        assert result.rows()[0]["n"] == 0
        assert result.rows()[0]["total"] == 0

    def test_group_by_over_empty_input_has_no_groups(self, sales_table):
        query = make_query(
            [("s", "sales")],
            select_items=[
                SelectItem(expression=ColumnRef("s", "region"), alias="region"),
                SelectItem(aggregate=AggregateSpec("count", Star()), alias="n"),
            ],
            group_by=[ColumnRef("s", "region")],
        )
        result = run(query, RowIdRelation.empty(["s"]), {"s": sales_table})
        assert result.num_rows == 0


class TestOrderingAndLimit:
    def test_order_by_descending(self, sales_table, full_relation):
        query = make_query(
            [("s", "sales")],
            select_items=[SelectItem(expression=ColumnRef("s", "amount"), alias="amount")],
            order_by=[OrderItem(ColumnRef("s", "amount"), ascending=False)],
        )
        result = run(query, full_relation, {"s": sales_table})
        assert result.column("amount").values() == [60, 50, 40, 30, 20, 10]

    def test_order_by_multiple_keys(self, sales_table, full_relation):
        query = make_query(
            [("s", "sales")],
            select_items=[
                SelectItem(expression=ColumnRef("s", "region"), alias="region"),
                SelectItem(expression=ColumnRef("s", "amount"), alias="amount"),
            ],
            order_by=[OrderItem(ColumnRef("s", "region")),
                      OrderItem(ColumnRef("s", "amount"), ascending=False)],
        )
        result = run(query, full_relation, {"s": sales_table})
        rows = [(row["region"], row["amount"]) for row in result.rows()]
        assert rows == [("e", 40), ("n", 60), ("n", 30), ("n", 10), ("s", 50), ("s", 20)]

    def test_limit(self, sales_table, full_relation):
        query = make_query(
            [("s", "sales")],
            select_items=[SelectItem(expression=ColumnRef("s", "amount"), alias="amount")],
            order_by=[OrderItem(ColumnRef("s", "amount"), ascending=False)],
            limit=2,
        )
        result = run(query, full_relation, {"s": sales_table})
        assert result.column("amount").values() == [60, 50]

    def test_order_by_on_grouped_output(self, sales_table, full_relation):
        query = make_query(
            [("s", "sales")],
            select_items=[
                SelectItem(expression=ColumnRef("s", "region"), alias="region"),
                SelectItem(aggregate=AggregateSpec("sum", ColumnRef("s", "amount")), alias="total"),
            ],
            group_by=[ColumnRef("s", "region")],
            order_by=[OrderItem(ColumnRef("s", "region"))],
        )
        result = run(query, full_relation, {"s": sales_table})
        assert result.column("region").values() == ["e", "n", "s"]
