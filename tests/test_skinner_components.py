"""Unit tests for Skinner-C's building blocks: state, rewards, progress, timeouts."""

import pytest

from repro.skinner.progress import ProgressTracker
from repro.skinner.result_set import JoinResultSet
from repro.skinner.reward import leftmost_reward, reward_function, scaled_delta_reward
from repro.skinner.state import JoinState, clamp_to_offsets, initial_state
from repro.skinner.timeouts import PyramidTimeoutScheme

CARDS = {"a": 10, "b": 20, "c": 5}


class TestJoinState:
    def test_defaults_to_zero_indices(self):
        state = JoinState(("a", "b"))
        assert state.indices == [0, 0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            JoinState(("a", "b"), [1])

    def test_copy_is_independent(self):
        state = JoinState(("a", "b"), [1, 2])
        copy = state.copy()
        copy.indices[0] = 9
        assert state.indices[0] == 1

    def test_index_of(self):
        state = JoinState(("a", "b"), [3, 7])
        assert state.index_of("b") == 7

    def test_is_ahead_of(self):
        earlier = JoinState(("a", "b"), [1, 5])
        later = JoinState(("a", "b"), [2, 0])
        assert later.is_ahead_of(earlier)
        assert not earlier.is_ahead_of(later)

    def test_is_ahead_requires_same_order(self):
        with pytest.raises(ValueError):
            JoinState(("a", "b")).is_ahead_of(JoinState(("b", "a")))

    def test_progress_fraction_monotone(self):
        order = ("a", "b", "c")
        low = JoinState(order, [1, 0, 0]).progress_fraction(CARDS)
        high = JoinState(order, [5, 10, 0]).progress_fraction(CARDS)
        assert 0.0 <= low < high <= 1.0

    def test_progress_fraction_full(self):
        order = ("a", "b")
        done = JoinState(order, [10, 0]).progress_fraction(CARDS)
        assert done == pytest.approx(1.0)

    def test_initial_state_uses_offsets(self):
        state = initial_state(("a", "b"), {"a": 3, "b": 0})
        assert state.indices == [3, 0]

    def test_clamp_raises_to_offsets_and_resets_deeper(self):
        state = JoinState(("a", "b", "c"), [2, 7, 3])
        clamped = clamp_to_offsets(state, {"a": 0, "b": 9, "c": 1}, CARDS)
        # b was below its offset: it is raised and c is reset to its offset.
        assert clamped.indices == [2, 9, 1]

    def test_clamp_no_change_when_above_offsets(self):
        state = JoinState(("a", "b"), [4, 4])
        clamped = clamp_to_offsets(state, {"a": 1, "b": 2}, CARDS)
        assert clamped.indices == [4, 4]

    def test_clamp_missing_cardinality_is_unbounded(self):
        """Regression: a missing cardinality must not drag a valid index down.

        Defaulting the cardinality to 0 used to clamp ``min(index, 0)``
        without setting ``raised``, silently rewinding the position while the
        deeper indices kept their (now stale) meaning.
        """
        state = JoinState(("a", "b", "c"), [3, 7, 2])
        clamped = clamp_to_offsets(state, {"a": 0, "b": 0, "c": 0}, {"a": 10, "c": 5})
        assert clamped.indices == [3, 7, 2]

    def test_clamp_missing_cardinality_still_raises_to_offsets(self):
        state = JoinState(("a", "b", "c"), [3, 1, 4])
        clamped = clamp_to_offsets(state, {"a": 0, "b": 5, "c": 0}, {"a": 10, "c": 5})
        # b is below its offset: raised, and c resets to its offset.
        assert clamped.indices == [3, 5, 0]

    def test_restore_with_alias_missing_from_cardinalities(self):
        """A tracker round-trip must preserve progress for unmapped aliases."""
        tracker = ProgressTracker(("a", "b", "c"))
        tracker.backup(JoinState(("a", "b", "c"), [3, 7, 2]))
        restored = tracker.restore(("a", "b", "c"), {"a": 10, "c": 5})
        assert restored.indices == [3, 7, 2]


class TestRewards:
    def test_scaled_delta_reward_in_unit_interval(self):
        order = ("a", "b")
        prior = JoinState(order, [0, 0])
        later = JoinState(order, [3, 10])
        reward = scaled_delta_reward(prior, later, CARDS)
        assert 0.0 < reward <= 1.0

    def test_scaled_delta_no_progress_is_zero(self):
        order = ("a", "b")
        state = JoinState(order, [2, 5])
        assert scaled_delta_reward(state, state.copy(), CARDS) == 0.0

    def test_leftmost_reward(self):
        order = ("a", "b")
        prior = JoinState(order, [2, 0])
        later = JoinState(order, [7, 19])
        assert leftmost_reward(prior, later, CARDS) == pytest.approx(0.5)

    def test_rewards_require_same_order(self):
        with pytest.raises(ValueError):
            scaled_delta_reward(JoinState(("a", "b")), JoinState(("b", "a")), CARDS)
        with pytest.raises(ValueError):
            leftmost_reward(JoinState(("a", "b")), JoinState(("b", "a")), CARDS)

    def test_reward_function_lookup(self):
        assert reward_function("scaled_deltas") is scaled_delta_reward
        assert reward_function("leftmost") is leftmost_reward
        with pytest.raises(ValueError):
            reward_function("bogus")


class TestResultSet:
    def test_deduplicates(self):
        results = JoinResultSet(("a", "b"))
        assert results.add((1, 2))
        assert not results.add((1, 2))
        assert results.add((1, 3))
        assert len(results) == 2

    def test_add_many_counts_new(self):
        results = JoinResultSet(("a",))
        assert results.add_many([(1,), (2,), (1,)]) == 2

    def test_to_relation_round_trip(self):
        results = JoinResultSet(("a", "b"))
        results.add((5, 6))
        results.add((1, 2))
        relation = results.to_relation()
        assert set(relation.index_tuples(["a", "b"])) == {(1, 2), (5, 6)}

    def test_contains_and_bytes(self):
        results = JoinResultSet(("a", "b"))
        results.add((1, 2))
        assert (1, 2) in results
        assert results.estimated_bytes() == 16


class TestProgressTracker:
    def test_restore_without_backup_is_initial(self):
        tracker = ProgressTracker(("a", "b"))
        state = tracker.restore(("a", "b"), CARDS)
        assert state.indices == [0, 0]

    def test_backup_and_restore_exact_order(self):
        tracker = ProgressTracker(("a", "b"))
        tracker.backup(JoinState(("a", "b"), [4, 7]))
        restored = tracker.restore(("a", "b"), CARDS)
        assert restored.indices == [4, 7]

    def test_backup_keeps_most_advanced(self):
        tracker = ProgressTracker(("a", "b"))
        tracker.backup(JoinState(("a", "b"), [4, 7]))
        tracker.backup(JoinState(("a", "b"), [3, 9]))
        assert tracker.restore(("a", "b"), CARDS).indices == [4, 7]

    def test_prefix_sharing_between_orders(self):
        tracker = ProgressTracker(("a", "b", "c"))
        tracker.backup(JoinState(("a", "b", "c"), [5, 3, 2]))
        restored = tracker.restore(("a", "c", "b"), CARDS)
        # Shares the length-1 prefix "a": everything below index 5 in a is done.
        assert restored.indices[0] == 5
        assert restored.indices[1:] == [0, 0]

    def test_prefix_sharing_disabled(self):
        tracker = ProgressTracker(("a", "b", "c"), share_prefixes=False)
        tracker.backup(JoinState(("a", "b", "c"), [5, 3, 2]))
        restored = tracker.restore(("a", "c", "b"), CARDS)
        assert restored.indices == [0, 0, 0]

    def test_offsets_clamp_restored_state(self):
        tracker = ProgressTracker(("a", "b"))
        tracker.backup(JoinState(("a", "b"), [2, 9]))
        tracker.advance_offset("a", 6)
        restored = tracker.restore(("a", "b"), CARDS)
        assert restored.indices == [6, 0]

    def test_offsets_only_advance(self):
        tracker = ProgressTracker(("a",))
        tracker.advance_offset("a", 5)
        tracker.advance_offset("a", 3)
        assert tracker.offsets["a"] == 5

    def test_node_and_order_counts(self):
        tracker = ProgressTracker(("a", "b", "c"))
        tracker.backup(JoinState(("a", "b", "c"), [1, 1, 1]))
        tracker.backup(JoinState(("b", "a", "c"), [2, 2, 2]))
        assert tracker.tracked_orders() == 2
        assert tracker.node_count() > 1
        assert tracker.estimated_bytes() > 0


class TestPyramidTimeouts:
    def test_budgets_are_powers_of_two_times_base(self):
        scheme = PyramidTimeoutScheme(base_timeout=100)
        for _ in range(50):
            choice = scheme.next_timeout()
            assert choice.budget == 100 * 2**choice.level

    def test_level_zero_first(self):
        scheme = PyramidTimeoutScheme()
        assert scheme.next_timeout().level == 0

    def test_time_per_level_never_differs_by_more_than_factor_two(self):
        # Lemma 5.5.
        scheme = PyramidTimeoutScheme()
        for _ in range(500):
            scheme.next_timeout()
            allocations = [v for v in scheme.time_per_level().values() if v > 0]
            assert max(allocations) <= 2 * min(allocations)

    def test_level_count_is_logarithmic(self):
        # Lemma 5.4.
        import math

        scheme = PyramidTimeoutScheme()
        total = 0
        for _ in range(2000):
            total += 2 ** scheme.next_timeout().level
        assert scheme.levels_used() <= math.log2(total) + 1

    def test_invalid_base_rejected(self):
        with pytest.raises(ValueError):
            PyramidTimeoutScheme(base_timeout=0)
