"""Tests for the benchmark workload generators."""

import pytest

from repro.baselines.traditional import TraditionalEngine
from repro.config import SkinnerConfig
from repro.skinner.skinner_c import SkinnerC
from repro.workloads.generators import Workload, correlated_column, make_rng, zipf_keys
from repro.workloads.job import make_job_workload
from repro.workloads.torture import (
    make_correlation_torture,
    make_trivial_workload,
    make_udf_torture,
)
from repro.workloads.tpch import QUERY_NAMES, make_tpch_workload

FAST = SkinnerConfig(slice_budget=64, batches_per_table=3, base_timeout=200)


class TestGeneratorHelpers:
    def test_zipf_keys_are_skewed(self):
        rng = make_rng(1)
        keys = zipf_keys(rng, 5000, 100, skew=1.3)
        assert keys.min() >= 0 and keys.max() < 100
        counts = {k: (keys == k).sum() for k in range(5)}
        assert counts[0] > counts[4]

    def test_zipf_without_skew_is_uniformish(self):
        rng = make_rng(2)
        keys = zipf_keys(rng, 1000, 10, skew=0)
        assert len(set(keys.tolist())) == 10

    def test_correlated_column_follows_base(self):
        rng = make_rng(3)
        base = zipf_keys(rng, 1000, 10, skew=0)
        corr = correlated_column(rng, base, 10, correlation=1.0)
        assert (corr == base % 10).all()

    def test_workload_query_lookup(self):
        workload = make_udf_torture(3, 10)
        name = workload.queries[0].name
        assert workload.query(name).name == name
        with pytest.raises(KeyError):
            workload.query("missing")
        assert workload.query_names() == [name]


class TestJobWorkload:
    def test_schema_and_determinism(self):
        first = make_job_workload(scale=0.1, seed=3)
        second = make_job_workload(scale=0.1, seed=3)
        assert sorted(first.catalog.table_names()) == sorted(second.catalog.table_names())
        assert first.catalog.table("title").num_rows == second.catalog.table("title").num_rows
        assert first.catalog.table("title").column("votes").values() == \
            second.catalog.table("title").column("votes").values()

    def test_scale_controls_sizes(self):
        small = make_job_workload(scale=0.1)
        large = make_job_workload(scale=0.3)
        assert large.catalog.table("cast_info").num_rows > small.catalog.table("cast_info").num_rows

    def test_queries_reference_existing_tables_and_columns(self):
        workload = make_job_workload(scale=0.1)
        assert len(workload.queries) >= 20
        for workload_query in workload.queries:
            query = workload_query.query
            for alias, table_name in query.tables:
                table = workload.catalog.table(table_name)
                for predicate in query.predicates:
                    for ref in predicate.left.columns():
                        if ref.table == alias:
                            assert table.has_column(ref.column)

    def test_hazard_queries_tagged(self):
        workload = make_job_workload(scale=0.1)
        assert len(workload.tagged("hazard")) >= 3

    def test_queries_execute_correctly_on_two_engines(self, job_workload):
        skinner = SkinnerC(job_workload.catalog, job_workload.udfs, FAST)
        traditional = TraditionalEngine(job_workload.catalog, job_workload.udfs)
        for workload_query in job_workload.queries[:6]:
            learned = skinner.execute(workload_query.query)
            planned = traditional.execute(workload_query.query)
            assert learned.rows == planned.rows, workload_query.name


class TestTpchWorkload:
    def test_contains_the_ten_paper_queries(self):
        workload = make_tpch_workload(scale=0.2)
        assert workload.query_names() == list(QUERY_NAMES)

    def test_schema_tables_present(self):
        workload = make_tpch_workload(scale=0.2)
        for table in ("region", "nation", "supplier", "customer", "part",
                      "partsupp", "orders", "lineitem"):
            assert workload.catalog.has_table(table)

    def test_udf_variant_registers_udfs_and_matches_standard(self):
        standard = make_tpch_workload(scale=0.2, variant="standard")
        udf = make_tpch_workload(scale=0.2, variant="udf")
        assert len(udf.udfs) > 0
        for name in ("q3", "q11", "q18"):
            plain_engine = TraditionalEngine(standard.catalog, standard.udfs)
            udf_engine = SkinnerC(udf.catalog, udf.udfs, FAST)
            plain = plain_engine.execute(standard.query(name).query)
            blind = udf_engine.execute(udf.query(name).query)
            assert plain.rows == blind.rows, name

    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            make_tpch_workload(variant="parquet")


class TestTortureWorkloads:
    def test_udf_torture_good_predicate_empties_result(self):
        for shape in ("chain", "star"):
            workload = make_udf_torture(4, 15, shape=shape)
            engine = SkinnerC(workload.catalog, workload.udfs, FAST)
            result = engine.execute(workload.queries[0].query)
            assert result.rows[0]["matches"] == 0, shape

    def test_udf_torture_without_good_predicate_is_cross_product(self):
        workload = make_udf_torture(3, 5, good_position=99)
        # good_position is clamped to the last edge; overriding every edge to
        # "bad" is not possible, so the result must still be empty.
        engine = SkinnerC(workload.catalog, workload.udfs, FAST)
        assert engine.execute(workload.queries[0].query).rows[0]["matches"] == 0

    def test_udf_torture_validation(self):
        with pytest.raises(ValueError):
            make_udf_torture(1, 10)
        with pytest.raises(ValueError):
            make_udf_torture(3, 10, shape="cycle")

    def test_correlation_torture_result_is_empty(self):
        workload = make_correlation_torture(4, 60, good_position=2)
        engine = SkinnerC(workload.catalog, workload.udfs, FAST)
        assert engine.execute(workload.queries[0].query).rows[0]["matches"] == 0

    def test_correlation_torture_good_table_is_anticorrelated(self):
        workload = make_correlation_torture(3, 60, good_position=2)
        good = workload.catalog.table("r2")
        a = good.column("a").values()
        b = good.column("b").values()
        assert all((x == 1 and y == 1) is False for x, y in zip(a, b))

    def test_trivial_workload_all_orders_similar_cost(self):
        workload = make_trivial_workload(3, 40)
        query = workload.queries[0].query
        engine = TraditionalEngine(workload.catalog, workload.udfs)
        costs = []
        for order in query.join_graph().valid_join_orders():
            result = engine.execute(query, forced_order=order)
            costs.append(result.metrics.intermediate_cardinality)
        assert max(costs) <= 3 * max(1, min(costs))

    def test_workload_is_a_dataclass_bundle(self):
        workload = make_trivial_workload(2, 10)
        assert isinstance(workload, Workload)
        assert workload.parameters["num_tables"] == 2
