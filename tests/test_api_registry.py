"""Tests for the engine registry: single dispatch point, pluggable engines."""

import pytest

from repro import ENGINE_NAMES, ReproError, SkinnerConfig, SkinnerDB, register_engine
from repro.api import DEFAULT_REGISTRY, EngineRegistry, EngineSpec, connect
from repro.result import QueryMetrics, QueryResult
from repro.serving import SERVABLE_ENGINES
from repro.storage.table import Table

FAST = SkinnerConfig(slice_budget=64, batches_per_table=3, base_timeout=200)

BUILTINS = (
    "skinner-c",
    "skinner-g",
    "skinner-h",
    "traditional",
    "eddy",
    "reoptimizer",
    "skinner_g_sqlite",
    "skinner_h_sqlite",
)


class ToyEngine:
    """A trivial engine answering every query with one constant row."""

    def __init__(self, context) -> None:
        self.context = context

    def execute(self, query) -> QueryResult:
        table = Table("result", {"answer": [42]})
        return QueryResult(table, QueryMetrics(engine="toy"))


@pytest.fixture
def db() -> SkinnerDB:
    db = SkinnerDB(config=FAST)
    db.create_table("r", {"id": [1, 2, 3], "x": [10, 20, 30]})
    return db


@pytest.fixture
def toy_registered():
    spec = register_engine(name="toy", factory=ToyEngine)
    try:
        yield spec
    finally:
        DEFAULT_REGISTRY.unregister("toy")


class TestRegistryBasics:
    def test_builtins_registered(self):
        assert DEFAULT_REGISTRY.names() == BUILTINS

    def test_engine_names_and_servable_engines_are_registry_views(self):
        assert tuple(ENGINE_NAMES) == DEFAULT_REGISTRY.names()
        assert tuple(SERVABLE_ENGINES) == DEFAULT_REGISTRY.names()
        assert ENGINE_NAMES == SERVABLE_ENGINES

    def test_views_are_live(self, toy_registered):
        assert "toy" in ENGINE_NAMES
        assert "toy" in SERVABLE_ENGINES
        assert list(ENGINE_NAMES) == list(SERVABLE_ENGINES)

    def test_resolve_is_case_insensitive(self):
        assert DEFAULT_REGISTRY.resolve("SKINNER-C").name == "skinner-c"

    def test_duplicate_registration_rejected(self, toy_registered):
        with pytest.raises(ReproError):
            register_engine(name="toy", factory=ToyEngine)
        register_engine(name="toy", factory=ToyEngine, replace=True)

    def test_spec_capabilities_default_off(self, toy_registered):
        spec = DEFAULT_REGISTRY.resolve("toy")
        assert not spec.supports_forced_order
        assert not spec.streamable
        assert not spec.episodic

    def test_custom_registry_is_isolated(self):
        registry = EngineRegistry()
        registry.register(EngineSpec("only", ToyEngine))
        assert registry.names() == ("only",)
        assert "only" not in DEFAULT_REGISTRY


class TestUnknownEngineError:
    """Satellite: the unknown-engine error comes from one place (the registry)
    with the same message on the serving and direct paths."""

    def _message(self, call) -> str:
        with pytest.raises(ReproError) as excinfo:
            call()
        return str(excinfo.value)

    def test_same_message_on_both_paths(self, db):
        served = self._message(lambda: db.execute("SELECT r.x FROM r", engine="sqlite"))
        direct = self._message(
            lambda: db.execute_direct("SELECT r.x FROM r", engine="sqlite")
        )
        assert served == direct
        assert "unknown engine 'sqlite'" in served
        assert "registered engines:" in served
        for name in BUILTINS:
            assert name in served

    def test_same_message_on_server_submit_and_cursor(self, db):
        submit = self._message(
            lambda: db.server.submit("SELECT r.x FROM r", engine="sqlite")
        )
        cursor = self._message(
            lambda: db.cursor().execute("SELECT r.x FROM r", engine="sqlite")
        )
        direct = self._message(
            lambda: db.execute_direct("SELECT r.x FROM r", engine="sqlite")
        )
        assert submit == cursor == direct


class TestCustomEngine:
    """Acceptance: a registered toy engine executes through both
    ``Connection.cursor()`` and ``SkinnerDB.execute`` without touching
    library code."""

    def test_toy_engine_via_facade(self, db, toy_registered):
        result = db.execute("SELECT r.x FROM r", engine="toy")
        assert result.rows == [{"answer": 42}]
        assert result.metrics.engine == "toy"

    def test_toy_engine_via_execute_direct(self, db, toy_registered):
        result = db.execute_direct("SELECT r.x FROM r", engine="toy")
        assert result.rows == [{"answer": 42}]

    def test_toy_engine_via_cursor(self, toy_registered):
        conn = connect(FAST)
        conn.create_table("r", {"id": [1], "x": [10]})
        cursor = conn.cursor()
        cursor.execute("SELECT r.x FROM r", engine="toy")
        assert cursor.fetchall() == [(42,)]

    def test_toy_engine_via_server_submit(self, db, toy_registered):
        ticket = db.server.submit("SELECT r.x FROM r", engine="toy")
        assert db.server.result(ticket).rows == [{"answer": 42}]

    def test_factory_receives_context(self, db, toy_registered):
        captured = {}

        def factory(context):
            captured["context"] = context
            return ToyEngine(context)

        register_engine(name="toy", factory=factory, replace=True)
        db.execute("SELECT r.x FROM r", engine="toy", profile="monetdb", threads=3)
        context = captured["context"]
        assert context.catalog is db.catalog
        assert context.profile == "monetdb"
        assert context.threads == 3


class TestForcedOrderCapability:
    def test_forced_order_rejected_without_capability(self, db):
        for call in (
            lambda: db.execute("SELECT r.x FROM r", engine="eddy", forced_order=("r",)),
            lambda: db.execute_direct(
                "SELECT r.x FROM r", engine="eddy", forced_order=("r",)
            ),
        ):
            with pytest.raises(ReproError, match="forced_order is not supported"):
                call()

    def test_forced_order_accepted_by_traditional(self, db):
        db.create_table("s", {"rid": [1, 2], "y": [5, 6]})
        result = db.execute(
            "SELECT r.x FROM r, s WHERE r.id = s.rid",
            engine="traditional",
            forced_order=("s", "r"),
        )
        assert result.metrics.final_join_order == ("s", "r")
