"""Tests for the external-DBMS execution backends (:mod:`repro.external`).

The acceptance properties of the sqlite reference adapter:

* ``skinner_g_sqlite`` / ``skinner_h_sqlite`` return **byte-identical
  rows** to their internal-executor counterparts on randomized queries —
  joins, unary predicate mixes, string dictionaries, NaN floats, and
  function expressions;
* every meter charge comes from the deterministic work-unit clock (sqlite
  progress-handler ticks + delivered rows), so repeated runs report
  identical :class:`~repro.engine.meter.WorkBreakdown` and simulated time;
* the engines resolve through every front door — cursor, facade, serving,
  and ``repro://`` — and obey the ``connect(engine=...)`` >
  ``REPRO_ENGINE`` > DSN ``?engine=`` resolution chain;
* mirrors are fingerprint-gated (transactions and rollback re-mirror),
  UDF queries fall back to the internal executor with a
  :class:`RuntimeWarning`, and scratch mirror databases are deleted when
  the owning connection closes.
"""

import os
import random

import pytest

from repro import InterfaceError, SkinnerConfig, connect
from repro.db import SkinnerDB
from repro.errors import UnsupportedQueryError
from repro.external import (
    SqliteAdapter,
    sqlite_adapter_for,
    table_fingerprint,
)
from repro.external.emitter import SqlEmitter
from repro.net.server import ServerThread
from repro.query.expressions import ColumnRef, FunctionCall, Literal
from repro.query.predicates import (
    Predicate,
    column_compare_literal,
    column_equals_column,
    udf_predicate,
)
from repro.query.query import SelectItem, make_query

FAST = SkinnerConfig(
    slice_budget=64,
    batches_per_table=3,
    base_timeout=200,
    serving_warm_start=False,
)

TAGS = ["red", "green", "blue", "gold", "grey"]


def seed_random_tables(conn, rng, *, with_nan=False):
    """Two joinable tables with int, string, and float columns."""
    n = rng.randint(8, 16)
    conn.create_table(
        "t0",
        {
            "id": [rng.randint(0, 5) for _ in range(n)],
            "val": [rng.randint(-4, 9) for _ in range(n)],
            "tag": [rng.choice(TAGS) for _ in range(n)],
        },
        replace=True,
    )
    m = rng.randint(8, 16)
    conn.create_table(
        "t1",
        {
            "id": [rng.randint(0, 5) for _ in range(m)],
            "score": [
                float("nan")
                if with_nan and rng.random() < 0.2
                else round(rng.uniform(-2.0, 8.0), 3)
                for _ in range(m)
            ],
        },
        replace=True,
    )
    conn.commit()


def random_join_query(rng):
    """A two-table join with a random mix of unary predicates."""
    predicates = [column_equals_column("a", "id", "b", "id")]
    pool = [
        column_compare_literal(
            "a", "val", rng.choice(["<", "<=", ">", ">=", "!=", "="]), rng.randint(-2, 6)
        ),
        column_compare_literal("a", "tag", "=", rng.choice(TAGS[:3])),
        column_compare_literal("b", "score", ">", round(rng.uniform(-1.0, 4.0), 2)),
        Predicate(
            FunctionCall("add", (ColumnRef("a", "val"), Literal(1))),
            ">=",
            Literal(rng.randint(-1, 5)),
        ),
    ]
    predicates.extend(rng.sample(pool, rng.randint(1, 3)))
    return make_query(
        [("a", "t0"), ("b", "t1")],
        predicates=predicates,
        select_items=[
            SelectItem(expression=ColumnRef("a", "id"), alias="id"),
            SelectItem(expression=ColumnRef("a", "val"), alias="val"),
            SelectItem(expression=ColumnRef("a", "tag"), alias="tag"),
            SelectItem(expression=ColumnRef("b", "score"), alias="score"),
        ],
    )


def rows_of(result):
    """Result rows as comparable tuples (NaN mapped to a sentinel that
    compares equal to itself, unlike ``float('nan')``)."""

    def norm(value):
        if isinstance(value, float) and value != value:
            return "<NaN>"
        return value

    return [tuple(norm(value) for value in row.values()) for row in result.rows]


class TestSqliteEquivalence:
    """Byte-identical rows between internal and sqlite-backed Skinner-G/H."""

    @pytest.mark.parametrize("seed", range(6))
    def test_skinner_g_rows_identical_on_random_queries(self, seed):
        rng = random.Random(seed)
        conn = connect(FAST)
        try:
            seed_random_tables(conn, rng, with_nan=True)
            for _ in range(3):
                query = random_join_query(rng)
                internal = conn.execute_direct(query, engine="skinner-g")
                external = conn.execute_direct(query, engine="skinner_g_sqlite")
                assert rows_of(external) == rows_of(internal)
        finally:
            conn.close()

    @pytest.mark.parametrize("seed", [0, 3, 5])
    def test_skinner_h_rows_identical_on_random_queries(self, seed):
        # NaN-free data: skinner-h's statistics collection histograms every
        # float column and does not tolerate all-NaN ranges.
        rng = random.Random(seed)
        conn = connect(FAST)
        try:
            seed_random_tables(conn, rng, with_nan=False)
            query = random_join_query(rng)
            internal = conn.execute_direct(query, engine="skinner-h")
            external = conn.execute_direct(query, engine="skinner_h_sqlite")
            assert rows_of(external) == rows_of(internal)
        finally:
            conn.close()

    def test_charges_are_deterministic_across_runs(self):
        rng = random.Random(11)
        readings = []
        for _ in range(2):
            conn = connect(FAST)
            try:
                seed_random_tables(conn, random.Random(11), with_nan=True)
                query = random_join_query(rng)
                rng = random.Random(11)  # reset so both runs build one query
                query = random_join_query(rng)
                result = conn.execute_direct(query, engine="skinner_g_sqlite")
                readings.append(
                    (
                        rows_of(result),
                        result.metrics.work,
                        result.metrics.simulated_time,
                    )
                )
            finally:
                conn.close()
        assert readings[0] == readings[1]

    def test_udf_query_falls_back_with_warning(self):
        conn = connect(FAST)
        try:
            seed_random_tables(conn, random.Random(2))
            conn.register_udf("same_parity", lambda a, b: a % 2 == b % 2)
            query = make_query(
                [("a", "t0"), ("b", "t1")],
                predicates=[
                    column_equals_column("a", "id", "b", "id"),
                    udf_predicate("same_parity", ("a", "val"), ("b", "id")),
                ],
                select_items=[
                    SelectItem(expression=ColumnRef("a", "val"), alias="val"),
                    SelectItem(expression=ColumnRef("b", "id"), alias="id"),
                ],
            )
            internal = conn.execute_direct(query, engine="skinner-g")
            with pytest.warns(RuntimeWarning, match="falling back"):
                external = conn.execute_direct(query, engine="skinner_g_sqlite")
            assert rows_of(external) == rows_of(internal)
        finally:
            conn.close()

    def test_streaming_cursor_matches_direct_rows(self):
        conn = connect(FAST)
        try:
            seed_random_tables(conn, random.Random(4))
            query = random_join_query(random.Random(4))
            direct = conn.execute_direct(query, engine="skinner_g_sqlite")
            with conn.cursor() as cursor:
                cursor.execute(query, engine="skinner_g_sqlite")
                streamed = []
                while True:
                    batch = cursor.fetchmany(3)
                    if not batch:
                        break
                    streamed.extend(batch)
            assert sorted(streamed) == sorted(rows_of(direct))
        finally:
            conn.close()


class TestMirrorLifecycle:
    def test_rollback_triggers_re_mirror(self):
        conn = connect(FAST)
        try:
            conn.create_table("t", {"x": [1, 2, 3]})
            conn.commit()
            query = make_query(
                [("t", "t")],
                select_items=[SelectItem(expression=ColumnRef("t", "x"), alias="x")],
            )
            before = rows_of(conn.execute_direct(query, engine="skinner_g_sqlite"))
            assert sorted(before) == [(1,), (2,), (3,)]
            conn.create_table("t", {"x": [7, 8]}, replace=True)
            replaced = rows_of(conn.execute_direct(query, engine="skinner_g_sqlite"))
            assert sorted(replaced) == [(7,), (8,)]
            conn.rollback()
            restored = rows_of(conn.execute_direct(query, engine="skinner_g_sqlite"))
            assert sorted(restored) == [(1,), (2,), (3,)]
        finally:
            conn.close()

    def test_fingerprint_tracks_content_not_ingest_history(self):
        conn = connect(FAST)
        try:
            conn.create_table("t", {"x": [1, 2, 3]})
            first = table_fingerprint(conn.catalog, "t")
            assert table_fingerprint(conn.catalog, "t") == first  # cached
            conn.create_table("t", {"x": [9, 9, 9]}, replace=True)
            assert table_fingerprint(conn.catalog, "t") != first
        finally:
            conn.close()

    def test_sibling_commit_leaves_untouched_mirror_file_alone(self):
        """Delta re-mirroring: a commit to one table must not rewrite the
        per-table mirror file of an untouched sibling (mtime and bytes both
        stable), while the touched table's file does change."""
        import hashlib

        def sha(path):
            with open(path, "rb") as handle:
                return hashlib.sha256(handle.read()).hexdigest()

        conn = connect(FAST)
        try:
            conn.create_table("a", {"x": [1, 2, 3]})
            conn.create_table("b", {"y": [1, 2]})
            conn.commit()
            query = make_query(
                [("a", "a"), ("b", "b")],
                predicates=[column_equals_column("a", "x", "b", "y")],
                select_items=[SelectItem(expression=ColumnRef("a", "x"), alias="x")],
            )
            assert sorted(rows_of(conn.execute_direct(query, engine="skinner_g_sqlite"))) \
                == [(1,), (2,)]
            adapter = sqlite_adapter_for(conn.catalog)
            a_path, b_path = adapter.table_path("a"), adapter.table_path("b")
            b_mtime, b_sha = os.stat(b_path).st_mtime_ns, sha(b_path)
            a_sha = sha(a_path)
            conn.create_table("a", {"x": [2, 9]}, replace=True)
            conn.commit()
            assert sorted(rows_of(conn.execute_direct(query, engine="skinner_g_sqlite"))) \
                == [(2,)]
            assert adapter.table_path("b") == b_path  # path is stable too
            assert os.stat(b_path).st_mtime_ns == b_mtime
            assert sha(b_path) == b_sha
            assert sha(a_path) != a_sha
        finally:
            conn.close()

    def test_mirror_file_removed_on_connection_close(self):
        conn = connect(FAST)
        conn.create_table("t", {"x": [1, 2]})
        query = make_query(
            [("t", "t")],
            select_items=[SelectItem(expression=ColumnRef("t", "x"), alias="x")],
        )
        conn.execute_direct(query, engine="skinner_g_sqlite")
        path = sqlite_adapter_for(conn.catalog).path
        assert os.path.exists(path)
        conn.close()
        assert not os.path.exists(path)

    def test_adapter_close_is_idempotent(self):
        adapter = SqliteAdapter()
        adapter.connect()
        path = adapter.path
        adapter.close()
        adapter.close()
        assert not os.path.exists(path)


class TestEmitterRejections:
    def test_bare_udf_predicate_is_unsupported(self, tiny_catalog):
        query = make_query(
            [("o", "orders")],
            predicates=[udf_predicate("is_big", ("o", "amount"))],
            select_items=[SelectItem(expression=ColumnRef("o", "amount"), alias="a")],
        )
        with pytest.raises(UnsupportedQueryError):
            SqlEmitter(tiny_catalog, query)

    def test_mixed_string_numeric_comparison_is_unsupported(self, tiny_catalog):
        query = make_query(
            [("c", "customers")],
            predicates=[column_compare_literal("c", "country", "<", 5)],
            select_items=[SelectItem(expression=ColumnRef("c", "cid"), alias="cid")],
        )
        with pytest.raises(UnsupportedQueryError):
            SqlEmitter(tiny_catalog, query)


class TestEngineSelection:
    """The engine= kwarg > REPRO_ENGINE > DSN ?engine= resolution chain."""

    def test_unknown_engine_rejected_at_connect(self):
        with pytest.raises(InterfaceError, match="unknown engine"):
            connect(FAST, engine="no-such-engine")

    def test_env_variable_selects_default_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "skinner_g_sqlite")
        conn = connect(FAST)
        try:
            assert conn.default_engine == "skinner_g_sqlite"
            assert conn.info()["engine"] == "skinner_g_sqlite"
        finally:
            conn.close()

    def test_kwarg_beats_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "skinner-g")
        conn = connect(FAST, engine="skinner-c")
        try:
            assert conn.default_engine == "skinner-c"
        finally:
            conn.close()

    def test_invalid_env_engine_names_its_origin(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "   ")
        with pytest.raises(InterfaceError, match="REPRO_ENGINE"):
            connect(FAST)

    def test_cursor_inherits_connection_default(self):
        conn = connect(FAST, engine="skinner-g")
        try:
            with conn.cursor() as cursor:
                assert cursor.engine == "skinner-g"
        finally:
            conn.close()

    def test_facade_runs_external_engine(self):
        db = SkinnerDB(FAST)
        try:
            db.create_table("t", {"x": [3, 1, 2]})
            result = db.execute("SELECT t.x FROM t", engine="skinner_g_sqlite")
            assert sorted(row["x"] for row in result.rows) == [1, 2, 3]
        finally:
            db.close()


class TestRemoteSelection:
    """Engine parity across the repro:// wire."""

    def test_dsn_engine_selects_server_side_default(self):
        with ServerThread(config=FAST) as live:
            live.connection.create_table("t", {"x": [1, 2, 3]})
            live.connection.commit()
            conn = connect(f"{live.dsn}?engine=skinner_g_sqlite")
            try:
                assert conn.default_engine == "skinner_g_sqlite"
                assert conn.info()["engine"] == "skinner_g_sqlite"
                result = conn.execute("SELECT t.x FROM t")
                assert sorted(row["x"] for row in result.rows) == [1, 2, 3]
            finally:
                conn.close()

    def test_unknown_engine_rejected_in_handshake(self):
        with ServerThread(config=FAST) as live:
            with pytest.raises(InterfaceError, match="unknown engine"):
                connect(live.dsn, engine="no-such-engine")
