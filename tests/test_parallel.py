"""Tests for morsel-parallel Skinner-C and the ExecutionBackend API.

The central property: the worker pool changes *where* a query's morsels
run, never *what* they compute.  A query executed with N workers must
produce byte-identical result rows and identical meter charges to the same
query with 1 worker — and identical rows to the plain single-process
Skinner-C task — because the morsel plan is a pure function of the data
and the morsel knobs, never of the pool size.  On top of that the new
surface is pinned: ``connect(workers=)`` / ``?workers=N`` validation,
``Connection.info()``, registry conformance validation, fallback rules,
and shared-memory / worker-pool hygiene.
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import DEFAULT_REGISTRY, EngineSpec, connect
from repro.config import DEFAULT_CONFIG, SkinnerConfig
from repro.engine.task import EngineTask, ExecutionBackend, validate_task_contract
from repro.errors import InterfaceError, ReproError
from repro.query.predicates import (
    column_compare_literal,
    column_equals_column,
    udf_predicate,
)
from repro.query.query import make_query
from repro.query.udf import UdfRegistry
from repro.serving import QueryServer
from repro.skinner.parallel import (
    ParallelSkinnerCTask,
    live_segment_count,
    plan_morsels,
    shutdown_workers,
)
from repro.skinner.skinner_c import SkinnerC, SkinnerCTask
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.generators import make_rng

#: Morsel knobs small enough that test-sized tables actually morselize.
PARALLEL = DEFAULT_CONFIG.with_overrides(
    parallel_morsels=4, parallel_min_morsel_rows=8
)


def build_catalog(seed: int = 7, n1: int = 400, n2: int = 300) -> Catalog:
    rng = make_rng(seed)
    catalog = Catalog()
    catalog.add_table(Table("t1", {
        "id": [int(x) for x in rng.integers(0, 50, n1)],
        "v": [int(x) for x in rng.integers(0, 10, n1)],
    }))
    catalog.add_table(Table("t2", {
        "fk": [int(x) for x in rng.integers(0, 50, n2)],
        "w": [int(x) for x in rng.integers(0, 10, n2)],
    }))
    return catalog


def join_query(limit_v: int = 8):
    return make_query(
        ["t1", "t2"],
        predicates=[
            column_equals_column("t1", "id", "t2", "fk"),
            column_compare_literal("t1", "v", "<", limit_v),
        ],
    )


def run_parallel(catalog, query, workers: int, config: SkinnerConfig = PARALLEL):
    task = ParallelSkinnerCTask(
        catalog, query, None, config.with_overrides(parallel_workers=workers)
    )
    try:
        while not task.finished:
            task.run_episode()
        return task.finalize()
    finally:
        task.close()


@pytest.fixture(scope="module", autouse=True)
def _pool_hygiene():
    """After the module: no worker processes, no shared-memory segments."""
    yield
    shutdown_workers()
    assert multiprocessing.active_children() == []
    assert live_segment_count() == 0


class TestByteIdentity:
    """Rows and charges are invariant under the worker count."""

    def test_identical_across_worker_counts(self):
        catalog = build_catalog()
        query = join_query()
        plain = SkinnerC(catalog, None, DEFAULT_CONFIG).execute(query)
        results = {w: run_parallel(catalog, query, w) for w in (1, 2, 3)}
        reference = results[1]
        assert reference.table.rows() == plain.table.rows()
        for workers, result in results.items():
            assert result.table.rows() == reference.table.rows(), workers
            assert result.metrics.work == reference.metrics.work, workers
            assert result.metrics.time_slices == reference.metrics.time_slices
            assert result.metrics.uct_nodes == reference.metrics.uct_nodes
            assert result.metrics.final_join_order == reference.metrics.final_join_order
            assert result.metrics.simulated_time == reference.metrics.simulated_time

    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 1_000),
        n1=st.integers(40, 160),
        n2=st.integers(40, 160),
        limit_v=st.integers(1, 10),
    )
    def test_randomized_rows_and_charges(self, seed, n1, n2, limit_v):
        catalog = build_catalog(seed=seed, n1=n1, n2=n2)
        query = join_query(limit_v)
        plain = SkinnerC(catalog, None, DEFAULT_CONFIG).execute(query)
        single = run_parallel(catalog, query, 1)
        multi = run_parallel(catalog, query, 2)
        assert single.table.rows() == multi.table.rows() == plain.table.rows()
        assert single.metrics.work == multi.metrics.work
        assert single.metrics.simulated_time == multi.metrics.simulated_time

    def test_engine_routing_matches_plain(self):
        catalog = build_catalog()
        query = join_query()
        plain = SkinnerC(catalog, None, DEFAULT_CONFIG).execute(query)
        routed = SkinnerC(
            catalog, None, PARALLEL.with_overrides(parallel_workers=2)
        ).execute(query)
        assert routed.table.rows() == plain.table.rows()
        assert routed.metrics.extra["parallel_workers"] == 2

    def test_morsel_plan_ignores_worker_count(self):
        catalog = build_catalog()
        query = join_query()
        import numpy as np

        filtered = {
            "t1": np.arange(catalog.table("t1").num_rows, dtype=np.int64),
            "t2": np.arange(catalog.table("t2").num_rows, dtype=np.int64),
        }
        aliases = tuple(alias for alias, _ in query.tables)
        plans = {
            w: plan_morsels(
                filtered, aliases, PARALLEL.with_overrides(parallel_workers=w)
            )
            for w in (1, 2, 7)
        }
        assert plans[1] == plans[2] == plans[7]


class TestFallbacks:
    def test_udf_query_falls_back_with_warning(self):
        catalog = build_catalog()
        udfs = UdfRegistry()
        udfs.register("is_even", lambda value: value % 2 == 0)
        query = make_query(
            ["t1", "t2"],
            predicates=[
                column_equals_column("t1", "id", "t2", "fk"),
                udf_predicate("is_even", ("t1", "v")),
            ],
        )
        engine = SkinnerC(catalog, udfs, PARALLEL.with_overrides(parallel_workers=2))
        with pytest.warns(RuntimeWarning, match="UDF"):
            task = engine.task(query)
        assert isinstance(task, SkinnerCTask)
        assert not isinstance(task, ParallelSkinnerCTask)

    def test_tiny_input_falls_back_silently(self):
        catalog = build_catalog(n1=10, n2=10)
        config = PARALLEL.with_overrides(
            parallel_workers=2, parallel_min_morsel_rows=64
        )
        task = SkinnerC(catalog, None, config).task(join_query())
        assert not isinstance(task, ParallelSkinnerCTask)

    def test_workers_one_uses_plain_task(self):
        catalog = build_catalog()
        task = SkinnerC(catalog, None, DEFAULT_CONFIG).task(join_query())
        assert isinstance(task, SkinnerCTask)
        assert not isinstance(task, ParallelSkinnerCTask)


class TestConnectWorkers:
    def test_workers_kwarg_sets_config(self):
        conn = connect(workers=3)
        try:
            assert conn.config.parallel_workers == 3
            info = conn.info()
            assert info["workers"] == 3
            assert info["remote"] is False
            assert "skinner-c" in info["engines"]
        finally:
            conn.close()

    def test_default_is_single_process(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_WORKERS", raising=False)
        conn = connect()
        try:
            assert conn.info()["workers"] == 1
        finally:
            conn.close()

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "two", True])
    def test_invalid_workers_rejected_at_connect(self, bad):
        with pytest.raises(InterfaceError, match="workers"):
            connect(workers=bad)

    def test_env_variable_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "2")
        conn = connect()
        try:
            assert conn.config.parallel_workers == 2
        finally:
            conn.close()

    def test_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "2")
        conn = connect(workers=4)
        try:
            assert conn.config.parallel_workers == 4
        finally:
            conn.close()

    def test_bad_env_rejected_at_connect(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "many")
        with pytest.raises(InterfaceError, match="REPRO_PARALLEL_WORKERS"):
            connect()


class TestRegistryConformance:
    def test_streamable_without_task_class_rejected(self):
        spec = EngineSpec("bad-stream", lambda ctx: None, streamable=True)
        with pytest.raises(ReproError, match="task_class"):
            DEFAULT_REGISTRY.register(spec)

    def test_parallelizable_needs_parallel_capable_task(self):
        class Task:  # episodic surface, but not parallel-capable
            def run_episode(self):
                return True

            def work_total(self):
                return 0

            def finalize(self):
                raise NotImplementedError

        spec = EngineSpec(
            "bad-parallel", lambda ctx: None,
            episodic=True, parallelizable=True, task_class=Task,
        )
        with pytest.raises(ReproError, match="parallel_capable"):
            DEFAULT_REGISTRY.register(spec)

    def test_capability_free_registration_unaffected(self):
        spec = EngineSpec("plain-engine", lambda ctx: None)
        DEFAULT_REGISTRY.register(spec)
        try:
            assert "plain-engine" in DEFAULT_REGISTRY.names()
        finally:
            DEFAULT_REGISTRY.unregister("plain-engine")

    def test_builtin_skinner_c_declares_parallelizable(self):
        spec = DEFAULT_REGISTRY.resolve("skinner-c")
        assert spec.parallelizable
        assert spec.task_class is SkinnerCTask
        assert SkinnerCTask.parallel_capable

    def test_validate_contract_checks_episodic_methods(self):
        class Partial:
            def run_episode(self):
                return True

        with pytest.raises(ReproError, match="work_total"):
            validate_task_contract("p", Partial, episodic=True)

    def test_abcs_are_exported(self):
        assert issubclass(SkinnerCTask, EngineTask)
        assert issubclass(SkinnerC, ExecutionBackend)


class TestServingIntegration:
    def test_cancel_mid_query_releases_segments(self):
        catalog = build_catalog()
        config = PARALLEL.with_overrides(
            parallel_workers=2, slice_budget=16, serving_warm_start=False
        )
        server = QueryServer(catalog, config=config)
        query = join_query()
        ticket = server.submit(query, use_result_cache=False)
        for _ in range(3):
            if not server.step():
                break
        assert server.cancel(ticket) or server.poll(ticket)["state"] == "finished"
        assert live_segment_count() == 0

    def test_served_parallel_matches_direct(self):
        catalog = build_catalog()
        config = PARALLEL.with_overrides(
            parallel_workers=2, serving_warm_start=False
        )
        server = QueryServer(catalog, config=config)
        query = join_query()
        ticket = server.submit(query, use_result_cache=False)
        while server.step():
            pass
        served = server.result(ticket)
        direct = run_parallel(catalog, query, 2, config)
        assert served.table.rows() == direct.table.rows()
        assert served.metrics.work == direct.metrics.work
        assert live_segment_count() == 0


class TestWireWorkers:
    def test_dsn_workers_applies_server_side(self):
        from repro.net.server import ServerThread

        config = SkinnerConfig(
            slice_budget=64, parallel_morsels=4, parallel_min_morsel_rows=8,
            serving_warm_start=False,
        )
        with ServerThread(config=config) as live:
            catalog = build_catalog()
            for name in ("t1", "t2"):
                live.connection.add_table(catalog.table(name))
            conn = connect(live.dsn + "?workers=2")
            try:
                assert conn.info()["workers"] == 2
                sql = "SELECT t1.v, t2.w FROM t1, t2 WHERE t1.id = t2.fk"
                remote = conn.execute(sql)
                assert remote.metrics.extra["parallel_workers"] == 2
                local = connect(config)
                try:
                    for name in ("t1", "t2"):
                        local.add_table(catalog.table(name))
                    expected = local.execute(sql)
                finally:
                    local.close()
                assert remote.table.rows() == expected.table.rows()
            finally:
                conn.close()

    def test_remote_bad_workers_rejected_client_side(self):
        with pytest.raises(InterfaceError, match="workers"):
            connect("repro://127.0.0.1:1/?workers=nope")
