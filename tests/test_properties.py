"""Property-based tests (hypothesis) for core invariants.

The most important property is differential correctness: for randomly
generated schemas, data, and SPJ queries, every engine must produce exactly
the same join result as a brute-force oracle.  Further properties cover the
pyramid timeout scheme (Lemmas 5.4/5.5), the UCT tree, reward bounds, and
column round-trips.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SkinnerConfig
from repro.engine.meter import CostMeter
from repro.query.predicates import column_compare_literal, column_equals_column
from repro.query.query import make_query
from repro.skinner.skinner_c import SkinnerC
from repro.skinner.skinner_g import SkinnerG
from repro.skinner.state import JoinState
from repro.skinner.reward import scaled_delta_reward
from repro.skinner.timeouts import PyramidTimeoutScheme
from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType
from repro.storage.table import Table
from repro.uct.tree import UctJoinTree
from repro.baselines.eddy import EddyEngine
from repro.baselines.traditional import TraditionalEngine
from tests.conftest import reference_join_tuples

FAST = SkinnerConfig(slice_budget=32, batches_per_table=2, base_timeout=150)

# ----------------------------------------------------------------------
# random schema / data / query strategy
# ----------------------------------------------------------------------
_small_int = st.integers(min_value=0, max_value=4)


@st.composite
def catalog_and_query(draw):
    """A random 2-3 table catalog plus a random SPJ query over it."""
    num_tables = draw(st.integers(min_value=2, max_value=3))
    catalog = Catalog()
    aliases = []
    for table_index in range(num_tables):
        name = f"t{table_index}"
        num_rows = draw(st.integers(min_value=0, max_value=7))
        catalog.add_table(Table(name, {
            "k": [draw(_small_int) for _ in range(num_rows)],
            "v": [draw(_small_int) for _ in range(num_rows)],
        }))
        aliases.append(name)
    predicates = []
    # Chain of equality join predicates keeps the join graph connected.
    for i in range(num_tables - 1):
        predicates.append(column_equals_column(aliases[i], "k", aliases[i + 1], "k"))
    # Optional unary filters.
    for alias in aliases:
        if draw(st.booleans()):
            op = draw(st.sampled_from(["=", "<", ">", ">=", "<=", "!="]))
            predicates.append(column_compare_literal(alias, "v", op, draw(_small_int)))
    query = make_query(aliases, predicates=predicates)
    return catalog, query


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(catalog_and_query())
def test_all_engines_match_brute_force_oracle(bundle):
    catalog, query = bundle
    expected = reference_join_tuples(catalog, query)
    engines = [
        SkinnerC(catalog, config=FAST),
        SkinnerG(catalog, config=FAST),
        TraditionalEngine(catalog),
        EddyEngine(catalog),
    ]
    for engine in engines:
        result = engine.execute(query)
        assert result.table.num_rows == len(expected), type(engine).__name__


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(catalog_and_query(), st.permutations([0, 1, 2]))
def test_plan_executor_order_invariance(bundle, permutation):
    """Any valid join order produces the same result set."""
    from repro.engine.executor import PlanExecutor

    catalog, query = bundle
    expected = reference_join_tuples(catalog, query)
    graph = query.join_graph()
    orders = graph.valid_join_orders()
    order = orders[permutation[0] % len(orders)]
    executor = PlanExecutor(catalog, query)
    relation = executor.execute_order(list(order), CostMeter())
    assert set(relation.index_tuples(query.aliases)) == expected


# ----------------------------------------------------------------------
# pyramid timeout scheme
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=400))
def test_pyramid_scheme_balance_invariant(iterations):
    """Lemma 5.5: per-level time never differs by more than a factor of two."""
    scheme = PyramidTimeoutScheme()
    for _ in range(iterations):
        scheme.next_timeout()
    allocations = [v for v in scheme.time_per_level().values() if v > 0]
    assert max(allocations) <= 2 * min(allocations)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=400))
def test_pyramid_scheme_level_count_logarithmic(iterations):
    """Lemma 5.4: the number of levels is at most log2 of total time."""
    scheme = PyramidTimeoutScheme()
    total = 0
    for _ in range(iterations):
        total += 2 ** scheme.next_timeout().level
    assert scheme.levels_used() <= math.log2(total) + 1


# ----------------------------------------------------------------------
# UCT tree
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.integers(min_value=1, max_value=60),
       st.randoms(use_true_random=False))
def test_uct_tree_invariants(num_tables, rounds, rng):
    aliases = [f"t{i}" for i in range(num_tables)]
    predicates = [column_equals_column(aliases[i], "a", aliases[i + 1], "a")
                  for i in range(num_tables - 1)]
    graph = make_query(aliases, predicates=predicates).join_graph()
    tree = UctJoinTree(graph, seed=7)
    valid = set(graph.valid_join_orders())
    for _ in range(rounds):
        before = tree.node_count()
        order = tree.choose_order()
        assert order in valid
        tree.update(order, rng.random())
        after = tree.node_count()
        assert after - before <= 1
        assert 0.0 <= tree.root.average_reward <= 1.0
    assert tree.root.visits == rounds


# ----------------------------------------------------------------------
# rewards and state
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=9), min_size=2, max_size=4),
       st.lists(st.integers(min_value=0, max_value=9), min_size=2, max_size=4))
def test_scaled_delta_reward_is_bounded(prior_indices, current_indices):
    size = min(len(prior_indices), len(current_indices))
    order = tuple(f"t{i}" for i in range(size))
    cards = {alias: 10 for alias in order}
    prior = JoinState(order, prior_indices[:size])
    current = JoinState(order, current_indices[:size])
    reward = scaled_delta_reward(prior, current, cards)
    assert 0.0 <= reward <= 1.0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=-3, max_value=12), min_size=1, max_size=5))
def test_progress_fraction_bounded(indices):
    order = tuple(f"t{i}" for i in range(len(indices)))
    cards = {alias: 10 for alias in order}
    state = JoinState(order, [max(0, min(10, i)) for i in indices])
    assert 0.0 <= state.progress_fraction(cards) <= 1.0


# ----------------------------------------------------------------------
# columns
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=-10**6, max_value=10**6), min_size=1, max_size=50))
def test_int_column_round_trip(values):
    column = Column(values)
    assert column.ctype is ColumnType.INT
    assert column.values() == values


@settings(max_examples=60, deadline=None)
@given(st.lists(st.text(alphabet="abcde", min_size=0, max_size=4), min_size=1, max_size=40))
def test_string_column_round_trip_and_dictionary(values):
    column = Column(values, ColumnType.STRING)
    assert column.values() == values
    assert column.distinct_count() == len(set(values))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=40),
       st.integers(min_value=0, max_value=20))
def test_column_compare_matches_python_semantics(values, literal):
    column = Column(values)
    for op, fn in (("=", lambda a: a == literal), ("<", lambda a: a < literal),
                   (">=", lambda a: a >= literal)):
        mask = column.compare(op, literal)
        assert mask.tolist() == [fn(v) for v in values]


# ----------------------------------------------------------------------
# cost meter
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(
    st.sampled_from(["tuples_scanned", "predicate_evals", "hash_probes",
                     "intermediate_tuples", "output_tuples", "udf_invocations"]),
    st.integers(min_value=0, max_value=50)), max_size=20))
def test_cost_meter_total_is_sum_of_charges(charges):
    meter = CostMeter()
    expected = 0
    for kind, amount in charges:
        meter.charge(kind, amount)
        expected += amount
    assert meter.total == expected
    assert meter.snapshot().total == expected
