"""Tests for the churn driver (:mod:`repro.docstore.churn`).

The driver itself is the assertion machine — it runs one deterministic
schedule of axis queries and subtree mutations twice (interleaved with
streaming fetches vs serialized replay) and compares rows, simulated
time, and ledger charges pairwise.  The tests here pin that it *reports
a match* on in-memory and durable catalogs, that its schedule builder is
deterministic and well-formed, and that the CLI wires through.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import SkinnerConfig
from repro.docstore.churn import ChurnOp, build_schedule, main, run_churn

FAST = SkinnerConfig(
    slice_budget=64,
    batches_per_table=3,
    base_timeout=200,
)

SMALL = dict(steps=10, seed=11, documents=2, items_per_document=5, depth=1,
             fetch_rows=2, config=FAST)


class TestSchedule:
    def test_deterministic_and_well_formed(self):
        one = build_schedule(steps=20, seed=9)
        two = build_schedule(steps=20, seed=9)
        assert one == two
        assert len(one) == 20
        assert one[0].kind == "query"  # streams must exist before mutations
        kinds = {op.kind for op in one}
        assert kinds <= {"query", "insert", "update", "delete"}
        for op in one:
            if op.kind == "query":
                assert op.sql.startswith("SELECT ")
                assert "DISTINCT" not in op.sql  # keeps streaming incremental
            if op.kind == "insert":
                assert op.subtree is not None

    def test_ops_are_frozen(self):
        op = build_schedule(steps=1, seed=1)[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            op.kind = "delete"
        assert isinstance(op, ChurnOp)


class TestRunChurn:
    def test_in_memory_interleaving_matches_replay(self):
        report = run_churn(**SMALL)
        assert report.matched, report.summary()
        assert report.steps == 10
        assert report.queries + report.mutations == report.steps
        assert report.interleaved_work == report.replay_work
        assert len(report.per_query) == report.queries
        # every mutation commit clears the serving caches exactly once
        assert report.invalidations >= report.mutations
        assert "MATCH" in report.summary()

    def test_durable_catalogs_match_too(self, tmp_path):
        report = run_churn(**SMALL, data_dir=tmp_path / "churn")
        assert report.matched, report.summary()
        assert (tmp_path / "churn" / "interleaved").is_dir()
        assert (tmp_path / "churn" / "replay").is_dir()

    @pytest.mark.parametrize("engine", ["skinner-g", "traditional"])
    def test_other_engines_uphold_the_contract(self, engine):
        # Non-streamable paths buffer rows until completion; byte-identity
        # must hold regardless of when rows become fetchable.
        report = run_churn(**{**SMALL, "steps": 6}, engine=engine)
        assert report.matched, report.summary()


class TestCli:
    def test_main_returns_zero_on_match(self, capsys, tmp_path):
        code = main(["--steps", "6", "--seed", "3",
                     "--data-dir", str(tmp_path / "cli")])
        out = capsys.readouterr().out
        assert code == 0
        assert "MATCH" in out and "invalidations" in out
