"""Tests for the PEP 249 connection/cursor API and streaming fetches.

The property tests check the acceptance criteria of the API redesign: rows
obtained through ``fetchmany``-streaming, ``fetchall``, ``db.execute``, and
``db.execute_direct`` are byte-identical on randomized queries across all
registered engines — including under concurrent cursor interleaving and
mid-stream ``Cursor.close()`` (which must not leak admission slots) — and
streamed queries are charged exactly like unstreamed ones.
"""

import random

import pytest

import repro.api
from repro import ReproError, SkinnerConfig, SkinnerDB, connect
from repro.errors import CatalogError, ParseError
from repro.serving.session import SessionState

#: Small budgets so learning engines converge quickly on the tiny fixtures;
#: warm start off so served runs are solo-equivalent (the property tests
#: compare against directly executed references).
FAST = SkinnerConfig(
    slice_budget=64,
    batches_per_table=3,
    base_timeout=200,
    serving_warm_start=False,
)


def make_connection(**overrides):
    conn = connect(FAST.with_overrides(**overrides) if overrides else FAST)
    conn.create_table("r", {
        "id": [1, 2, 3, 4, 5, 6],
        "a": [10, 20, 10, 30, 20, 10],
        "name": ["ann", "bob", "cat", "dan", "eve", "fox"],
    })
    conn.create_table("s", {
        "rid": [1, 1, 2, 3, 5, 6, 6],
        "c": [7, 8, 9, 7, 8, 9, 7],
    })
    conn.commit()
    return conn


def table_rows(result):
    """A QueryResult's rows as tuples in column order (cursor-comparable)."""
    names = result.table.column_names
    return [tuple(row[name] for name in names) for row in result.rows]


class TestPep249Surface:
    def test_module_globals(self):
        assert repro.api.apilevel == "2.0"
        assert repro.api.paramstyle == "qmark"
        assert repro.api.threadsafety in (0, 1, 2, 3)

    def test_description_before_fetching(self):
        cursor = make_connection().cursor()
        cursor.execute("SELECT r.a AS alpha, r.name FROM r")
        assert [entry[0] for entry in cursor.description] == ["alpha", "name"]
        assert all(len(entry) == 7 for entry in cursor.description)

    def test_description_star_expansion(self):
        cursor = make_connection().cursor()
        cursor.execute("SELECT * FROM s")
        assert [entry[0] for entry in cursor.description] == ["s_rid", "s_c"]

    def test_fetchone_exhausts_to_none(self):
        cursor = make_connection().cursor()
        cursor.execute("SELECT r.id FROM r WHERE r.a = 30")
        assert cursor.fetchone() == (4,)
        assert cursor.fetchone() is None

    def test_fetchmany_respects_arraysize(self):
        cursor = make_connection().cursor()
        cursor.arraysize = 4
        cursor.execute("SELECT r.id FROM r")
        first = cursor.fetchmany()
        assert 0 < len(first) <= 4

    def test_iteration_protocol(self):
        cursor = make_connection().cursor()
        cursor.execute("SELECT r.id FROM r WHERE r.a = 10")
        assert sorted(cursor) == [(1,), (3,), (6,)]

    def test_rowcount_known_after_completion(self):
        cursor = make_connection().cursor()
        cursor.execute("SELECT r.id FROM r")
        cursor.fetchall()
        assert cursor.rowcount == 6

    def test_execute_returns_cursor_for_chaining(self):
        cursor = make_connection().cursor()
        assert cursor.execute("SELECT r.id FROM r") is cursor

    def test_fetch_without_execute_raises(self):
        cursor = make_connection().cursor()
        with pytest.raises(ReproError, match="no query"):
            cursor.fetchall()

    def test_closed_cursor_raises(self):
        cursor = make_connection().cursor()
        cursor.close()
        with pytest.raises(ReproError, match="cursor is closed"):
            cursor.execute("SELECT r.id FROM r")

    def test_closed_connection_raises(self):
        conn = make_connection()
        conn.close()
        with pytest.raises(ReproError, match="connection is closed"):
            conn.cursor()

    def test_context_managers(self):
        with make_connection() as conn:
            with conn.cursor() as cursor:
                cursor.execute("SELECT COUNT(*) AS n FROM r")
                assert cursor.fetchone() == (6,)
            assert cursor.closed
        assert conn.closed

    def test_ordered_query_delivers_in_order(self):
        cursor = make_connection().cursor()
        cursor.execute("SELECT r.id FROM r ORDER BY r.id DESC LIMIT 3")
        assert cursor.fetchall() == [(6,), (5,), (4,)]


class TestParameterBinding:
    def test_qmark_parameters(self):
        cursor = make_connection().cursor()
        cursor.execute("SELECT r.id FROM r WHERE r.a = ? AND r.id > ?", (10, 1))
        assert sorted(cursor.fetchall()) == [(3,), (6,)]

    def test_named_parameters(self):
        cursor = make_connection().cursor()
        cursor.execute(
            "SELECT r.id FROM r WHERE r.name = :who", {"who": "eve"}
        )
        assert cursor.fetchall() == [(5,)]

    def test_string_parameters_are_not_interpolated(self):
        cursor = make_connection().cursor()
        cursor.execute("SELECT r.id FROM r WHERE r.name = ?", ("o' brien",))
        assert cursor.fetchall() == []

    def test_parameter_count_mismatch(self):
        cursor = make_connection().cursor()
        with pytest.raises(ParseError, match="positional parameter"):
            cursor.execute("SELECT r.id FROM r WHERE r.a = ?", (1, 2))

    def test_missing_parameters(self):
        cursor = make_connection().cursor()
        with pytest.raises(ParseError, match="no parameters were given"):
            cursor.execute("SELECT r.id FROM r WHERE r.a = ?")

    def test_missing_named_parameter(self):
        cursor = make_connection().cursor()
        with pytest.raises(ParseError, match="missing named parameter"):
            cursor.execute("SELECT r.id FROM r WHERE r.a = :a", {"b": 1})

    def test_mixed_styles_rejected(self):
        cursor = make_connection().cursor()
        with pytest.raises(ParseError, match="mix"):
            cursor.execute("SELECT r.id FROM r WHERE r.a = ? AND r.id = :i", (1,))

    def test_superfluous_parameters_rejected(self):
        cursor = make_connection().cursor()
        with pytest.raises(ParseError, match="no parameter placeholders"):
            cursor.execute("SELECT r.id FROM r", (1,))

    def test_executemany(self):
        cursor = make_connection().cursor()
        cursor.executemany(
            "SELECT r.id FROM r WHERE r.a = ?", [(10,), (20,), (30,)]
        )
        # PEP 249: result sets of executemany are discarded; the cursor
        # stays usable for the next execute.
        cursor.execute("SELECT COUNT(*) AS n FROM r")
        assert cursor.fetchone() == (6,)

    def test_facade_execute_accepts_params(self):
        db = SkinnerDB(config=FAST)
        db.create_table("r", {"id": [1, 2], "a": [5, 7]})
        result = db.execute("SELECT r.id FROM r WHERE r.a = ?", params=(7,))
        assert table_rows(result) == [(2,)]


class TestSchemaTransactions:
    def test_rollback_restores_tables(self):
        conn = make_connection()
        conn.create_table("tmp", {"x": [1]})
        assert conn.catalog.has_table("tmp")
        conn.rollback()
        assert not conn.catalog.has_table("tmp")
        assert conn.catalog.has_table("r")

    def test_rollback_restores_replaced_table(self):
        conn = make_connection()
        conn.create_table("r", {"id": [99]}, replace=True)
        conn.rollback()
        cursor = conn.cursor()
        cursor.execute("SELECT COUNT(*) AS n FROM r")
        assert cursor.fetchone() == (6,)

    def test_commit_makes_changes_permanent(self):
        conn = make_connection()
        conn.create_table("tmp", {"x": [1]})
        conn.commit()
        conn.rollback()
        assert conn.catalog.has_table("tmp")

    def test_rollback_restores_udfs(self):
        conn = make_connection()
        conn.register_udf("double", lambda v: v * 2)
        assert conn.udfs.has("double")
        conn.rollback()
        assert not conn.udfs.has("double")

    def test_close_rolls_back(self):
        conn = make_connection()
        conn.create_table("tmp", {"x": [1]})
        conn.close()
        assert not conn.catalog.has_table("tmp")

    def test_context_manager_commits_on_success(self):
        with make_connection() as conn:
            conn.create_table("tmp", {"x": [1]})
        assert conn.catalog.has_table("tmp")

    def test_facade_autocommits(self):
        db = SkinnerDB(config=FAST)
        db.create_table("t", {"x": [1]})
        db.connection.rollback()  # no open transaction: a no-op
        assert db.catalog.has_table("t")


class TestLoadCsvReplace:
    """Satellite: ``load_csv`` gains ``replace=`` for parity with
    ``create_table`` / ``add_table``."""

    def _write_csv(self, tmp_path, rows):
        path = tmp_path / "cities.csv"
        path.write_text("city,pop\n" + "\n".join(rows) + "\n")
        return path

    def test_facade_reload_requires_replace(self, tmp_path):
        db = SkinnerDB(config=FAST)
        path = self._write_csv(tmp_path, ["rome,3", "oslo,1"])
        db.load_csv(path)
        with pytest.raises(CatalogError):
            db.load_csv(path)
        path = self._write_csv(tmp_path, ["rome,4"])
        db.load_csv(path, replace=True)
        assert db.execute("SELECT COUNT(*) AS n FROM cities").rows[0]["n"] == 1

    def test_connection_reload_requires_replace(self, tmp_path):
        conn = connect(FAST)
        path = self._write_csv(tmp_path, ["rome,3"])
        conn.load_csv(path)
        with pytest.raises(CatalogError):
            conn.load_csv(path)
        conn.load_csv(path, replace=True)


class TestStreaming:
    """Acceptance: fetchmany returns its first batch strictly before query
    completion, measured on the deterministic work-unit clock."""

    @staticmethod
    def _big_connection(rows=3000, seed=11, **overrides):
        rng = random.Random(seed)
        conn = connect(FAST.with_overrides(slice_budget=500, **overrides))
        keys = max(1, rows // 3)
        conn.create_table("a", {
            "k": [rng.randrange(keys) for _ in range(rows)],
            "v": [rng.randrange(100) for _ in range(rows)],
        })
        conn.create_table("b", {
            "k": [rng.randrange(keys) for _ in range(rows)],
            "w": [rng.randrange(100) for _ in range(rows)],
        })
        conn.commit()
        return conn

    SQL = "SELECT a.v, b.w FROM a, b WHERE a.k = b.k AND a.v < 10"

    def test_first_batch_strictly_before_completion(self):
        conn = self._big_connection()
        cursor = conn.cursor()
        cursor.execute(self.SQL, use_result_cache=False)
        first = cursor.fetchmany(5)
        assert first, "streaming produced no first batch"
        session = conn.server.session(cursor.ticket)
        assert session.stream is not None and session.stream.incremental
        assert session.state is SessionState.RUNNING, (
            "first batch must arrive while the query is still running"
        )
        first_at = session.stream.first_rows_at_work
        rest = cursor.fetchall()
        completed_at = session.completed_at_work
        assert first_at is not None and completed_at is not None
        assert first_at < completed_at
        reference = conn.execute_direct(self.SQL)
        assert sorted(first + rest) == sorted(table_rows(reference))

    def test_streamed_charges_identical_to_unstreamed(self):
        conn = self._big_connection()
        cursor = conn.cursor()
        cursor.execute(self.SQL, use_result_cache=False)
        cursor.fetchmany(5)
        streamed = cursor.result().metrics
        direct = conn.execute_direct(self.SQL).metrics
        assert streamed.work == direct.work

    def test_blocking_queries_deliver_at_completion(self):
        conn = self._big_connection()
        cursor = conn.cursor()
        cursor.execute(
            "SELECT a.v, COUNT(*) AS n FROM a, b WHERE a.k = b.k GROUP BY a.v",
            use_result_cache=False,
        )
        rows = cursor.fetchall()
        session = conn.server.session(cursor.ticket)
        assert session.stream is not None and not session.stream.incremental
        reference = conn.execute_direct(
            "SELECT a.v, COUNT(*) AS n FROM a, b WHERE a.k = b.k GROUP BY a.v"
        )
        assert rows == table_rows(reference)

    def test_cache_hit_streams_completed_result(self):
        conn = self._big_connection()
        warm = conn.cursor()
        warm.execute(self.SQL)
        expected = warm.fetchall()
        cached = conn.cursor()
        cached.execute(self.SQL)
        session = conn.server.session(cached._ticket)
        assert session.cache_hit
        assert sorted(cached.fetchall()) == sorted(expected)

    def test_mid_stream_close_releases_admission_slot(self):
        conn = self._big_connection(serving_max_inflight=1)
        hog = conn.cursor()
        hog.execute(self.SQL, use_result_cache=False)
        assert hog.fetchmany(3)  # running, holding the only slot
        waiting = conn.cursor()
        waiting.execute("SELECT COUNT(*) AS n FROM a", use_result_cache=False)
        assert conn.server.stats()["queued"] == 1
        hog.close()  # mid-stream: must hand the slot to the queued query
        assert waiting.fetchone()[0] == 3000
        stats = conn.server.stats()
        assert stats["inflight"] == 0 and stats["queued"] == 0


def _random_query(rng: random.Random) -> str:
    """A randomized SPJ(+postprocessing) query over the r/s fixtures."""
    shape = rng.randrange(3)
    if shape == 0:
        where = rng.choice(["", " WHERE r.a > ?"])
        sql = f"SELECT r.id, r.a FROM r{where}"
        return sql.replace("?", str(rng.choice([5, 15, 25])))
    if shape == 1:
        predicates = ["r.id = s.rid"]
        if rng.random() < 0.5:
            predicates.append(f"s.c > {rng.choice([6, 7, 8])}")
        if rng.random() < 0.5:
            predicates.append(f"r.a < {rng.choice([15, 25, 35])}")
        select = rng.choice(["r.name, s.c", "r.id, r.a, s.c", "s.c"])
        return f"SELECT {select} FROM r, s WHERE {' AND '.join(predicates)}"
    return (
        "SELECT r.a, COUNT(*) AS n FROM r, s WHERE r.id = s.rid "
        "GROUP BY r.a ORDER BY r.a"
    )


class TestPropertyByteIdentical:
    """Property: fetchmany-streamed rows, fetchall, db.execute, and
    db.execute_direct agree on randomized queries across all registered
    engines (same rows, same meter charges)."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_four_paths_agree_across_engines(self, seed):
        rng = random.Random(seed)
        for _ in range(3):
            sql = _random_query(rng)
            for engine in repro.api.engine_names():
                conn = make_connection()
                streaming = conn.cursor()
                streaming.execute(sql, engine=engine, use_result_cache=False)
                streamed = []
                while True:
                    batch = streaming.fetchmany(3)
                    if not batch:
                        break
                    streamed.extend(batch)
                charges = streaming.result().metrics.work

                whole = conn.cursor()
                whole.execute(sql, engine=engine, use_result_cache=False)
                fetched = whole.fetchall()

                served = conn.execute(sql, engine=engine, use_result_cache=False)
                direct = conn.execute_direct(sql, engine=engine)

                key = (sql, engine)
                assert sorted(streamed) == sorted(table_rows(direct)), key
                assert sorted(fetched) == sorted(table_rows(direct)), key
                assert sorted(table_rows(served)) == sorted(table_rows(direct)), key
                assert charges == direct.metrics.work, key
                assert served.metrics.work == direct.metrics.work, key

    @pytest.mark.parametrize("seed", [4, 5])
    def test_concurrent_interleaving_agrees(self, seed):
        rng = random.Random(seed)
        conn = make_connection()
        engines = ["skinner-c", "skinner-g", "traditional"]
        plans = [(engine, _random_query(rng)) for engine in engines]
        cursors = []
        for engine, sql in plans:
            cursor = conn.cursor()
            cursor.execute(sql, engine=engine, use_result_cache=False)
            cursors.append(cursor)
        collected = [[] for _ in cursors]
        exhausted = [False] * len(cursors)
        while not all(exhausted):
            for index, cursor in enumerate(cursors):
                if exhausted[index]:
                    continue
                batch = cursor.fetchmany(2)
                if batch:
                    collected[index].extend(batch)
                else:
                    exhausted[index] = True
        for (engine, sql), rows, cursor in zip(plans, collected, cursors):
            direct = conn.execute_direct(sql, engine=engine)
            assert sorted(rows) == sorted(table_rows(direct)), (engine, sql)
            assert cursor.result().metrics.work == direct.metrics.work, (engine, sql)

    @pytest.mark.parametrize("seed", [6, 7])
    def test_mid_stream_close_under_interleaving(self, seed):
        rng = random.Random(seed)
        conn = make_connection(serving_max_inflight=2)
        sqls = [_random_query(rng) for _ in range(4)]
        cursors = []
        for sql in sqls:
            cursor = conn.cursor()
            cursor.execute(sql, use_result_cache=False)
            cursors.append(cursor)
        cursors[0].fetchmany(1)
        cursors[0].close()  # mid-stream
        cursors[2].close()  # possibly still queued
        for sql, cursor in zip(sqls, cursors):
            if cursor.closed:
                continue
            direct = conn.execute_direct(sql)
            assert sorted(cursor.fetchall()) == sorted(table_rows(direct)), sql
        stats = conn.server.stats()
        assert stats["inflight"] == 0 and stats["queued"] == 0


class TestFetchEdgeCases:
    """Regressions: fetch on sessions that have no stream buffer yet."""

    def test_fetch_on_queued_session_drives_the_scheduler(self):
        # With one admission slot, the second cursor's session is QUEUED
        # (no stream buffer yet); fetching from it must drive the scheduler
        # until it is admitted and produces rows — not raise.
        conn = make_connection(serving_max_inflight=1)
        hog = conn.cursor()
        hog.execute("SELECT r.name, s.c FROM r, s WHERE r.id = s.rid",
                    use_result_cache=False)
        waiting = conn.cursor()
        waiting.execute("SELECT COUNT(*) AS n FROM r", use_result_cache=False)
        assert conn.server.session(waiting.ticket).state is SessionState.QUEUED
        assert waiting.fetchone() == (6,)
        assert sorted(hog.fetchall()) == sorted(
            table_rows(conn.execute_direct(
                "SELECT r.name, s.c FROM r, s WHERE r.id = s.rid"))
        )

    def test_fetch_surfaces_task_construction_failure(self):
        # A streaming session that fails before activation completes (here:
        # a UDF raising during pre-processing) has no stream buffer; fetch
        # must raise the real error, not a bogus stream=True complaint.
        conn = make_connection()

        def broken(value):
            raise RuntimeError("udf exploded")

        conn.register_udf("broken", broken)
        cursor = conn.cursor()
        cursor.execute("SELECT r.id FROM r WHERE broken(r.a)",
                       use_result_cache=False)
        with pytest.raises(RuntimeError, match="udf exploded"):
            cursor.fetchall()

    def test_fetch_without_stream_submission_rejected(self):
        conn = make_connection()
        ticket = conn.server.submit("SELECT r.id FROM r")
        with pytest.raises(ReproError, match="stream=True"):
            conn.server.fetch(ticket)


class TestPrebuiltQueryParameters:
    """Regression: parameters next to a prebuilt Query must not be dropped."""

    def test_cursor_rejects_params_with_query_object(self):
        conn = make_connection()
        query = conn.parse("SELECT r.id FROM r")
        with pytest.raises(ReproError, match="prebuilt Query"):
            conn.cursor().execute(query, (1,))

    def test_connection_paths_reject_params_with_query_object(self):
        conn = make_connection()
        query = conn.parse("SELECT r.id FROM r")
        with pytest.raises(ReproError, match="prebuilt Query"):
            conn.execute(query, params=(1,))
        with pytest.raises(ReproError, match="prebuilt Query"):
            conn.execute_direct(query, params=(1,))

    def test_query_object_without_params_still_works(self):
        conn = make_connection()
        query = conn.parse("SELECT COUNT(*) AS n FROM r")
        cursor = conn.cursor()
        cursor.execute(query)
        assert cursor.fetchone() == (6,)


class TestFingerprintCollisions:
    """Regression: a bound string containing quote/SQL text must never share
    a result-cache fingerprint with a structurally different query."""

    def test_injection_shaped_parameter_does_not_poison_the_cache(self):
        conn = make_connection()
        bound = conn.execute(
            "SELECT r.id FROM r WHERE r.name = ?",
            params=("ann' AND r.name = 'bob",),
        )
        assert bound.rows == []
        literal = conn.execute("SELECT r.id FROM r WHERE r.name = 'ann'")
        assert literal.metrics.extra.get("result_cache") is None
        assert table_rows(literal) == [(1,)]

    def test_escaped_display_reparses_to_same_literal(self):
        conn = make_connection()
        query = conn.parse("SELECT r.id FROM r WHERE r.name = ?",
                           params=("o' brien",))
        reparsed = conn.parse(query.display())
        assert reparsed.predicates[0].right == query.predicates[0].right


class TestEngineUnregisteredMidFlight:
    """Regression: an engine vanishing between submission and activation
    fails its own session, not whichever session's step() promoted it."""

    def test_promotion_failure_hits_the_right_session(self):
        from repro.api import DEFAULT_REGISTRY, register_engine
        from repro.result import QueryMetrics, QueryResult
        from repro.storage.table import Table

        class Toy:
            def __init__(self, context):
                pass

            def execute(self, query):
                return QueryResult(Table("result", {"x": [1]}),
                                   QueryMetrics(engine="toy2"))

        register_engine(name="toy2", factory=Toy)
        try:
            conn = make_connection(serving_max_inflight=1)
            first = conn.server.submit(
                "SELECT r.name, s.c FROM r, s WHERE r.id = s.rid",
                use_result_cache=False,
            )
            second = conn.server.submit("SELECT r.id FROM r", engine="toy2",
                                        use_result_cache=False)
            DEFAULT_REGISTRY.unregister("toy2")
            # The first query must complete normally; the second must fail
            # with the unknown-engine error once it gets promoted.
            result = conn.server.result(first)
            assert result.table.num_rows > 0
            with pytest.raises(ReproError, match="unknown engine 'toy2'"):
                conn.server.result(second)
            stats = conn.server.stats()
            assert stats["inflight"] == 0 and stats["queued"] == 0
        finally:
            DEFAULT_REGISTRY.unregister("toy2")


class TestLimitPushdown:
    """LIMIT on a streamable query stops scheduling once the cursor's row
    budget is filled and releases the admission slot early."""

    SQL = "SELECT a.v, b.w FROM a, b WHERE a.k = b.k LIMIT 4"

    @staticmethod
    def _conn(**overrides):
        return TestStreaming._big_connection(**overrides)

    def test_limited_query_completes_early_with_less_work(self):
        conn = self._conn()
        limited = conn.cursor()
        limited.execute(self.SQL, use_result_cache=False)
        rows = limited.fetchall()
        assert len(rows) == 4
        session = conn.server.session(limited.ticket)
        assert session.state is SessionState.FINISHED
        assert session.result.metrics.extra.get("limit_pushdown") is True
        # The full (unlimited) join costs strictly more work.
        full = conn.cursor()
        full.execute(self.SQL.replace(" LIMIT 4", ""), use_result_cache=False)
        full.fetchall()
        limited_work = session.result.metrics.work.total
        full_work = conn.server.session(full.ticket).result.metrics.work.total
        assert 0 < limited_work < full_work

    def test_limited_rows_are_a_subset_of_the_full_result(self):
        conn = self._conn()
        limited = conn.cursor()
        limited.execute(self.SQL, use_result_cache=False)
        rows = limited.fetchall()
        reference = set(table_rows(conn.execute_direct(
            self.SQL.replace(" LIMIT 4", ""))))
        assert len(rows) == 4 and all(row in reference for row in rows)
        assert limited.rowcount == 4

    def test_limit_completion_releases_admission_slot_without_close(self):
        conn = self._conn(serving_max_inflight=1)
        limited = conn.cursor()
        limited.execute(self.SQL, use_result_cache=False)
        waiting = conn.cursor()
        waiting.execute("SELECT COUNT(*) AS n FROM a", use_result_cache=False)
        assert conn.server.stats()["queued"] == 1
        assert len(limited.fetchall()) == 4
        # The limited cursor stays open; completing the limit alone must
        # have handed the slot onward.
        assert waiting.fetchone() == (3000,)
        stats = conn.server.stats()
        assert stats["inflight"] == 0 and stats["queued"] == 0

    def test_limited_results_never_enter_the_result_cache(self):
        # A pushed-down LIMIT returns *a* valid prefix, not the canonical
        # completion-ordered one — caching it would leak that choice into
        # later submissions.
        conn = self._conn()
        first = conn.cursor()
        first.execute(self.SQL)
        first.fetchall()
        again = conn.cursor()
        again.execute(self.SQL)
        again.fetchall()
        assert not conn.server.session(again.ticket).cache_hit

    def test_blocking_limit_still_delivers_canonical_order(self):
        conn = self._conn()
        cursor = conn.cursor()
        sql = "SELECT a.v FROM a WHERE a.v < 50 ORDER BY a.v LIMIT 5"
        cursor.execute(sql, use_result_cache=False)
        session = conn.server.session(cursor.ticket)
        assert cursor.fetchall() == table_rows(conn.execute_direct(sql))
        assert not session.stream.incremental
        assert session.result.metrics.extra.get("limit_pushdown") is None

    def test_pushdown_disabled_by_config_restores_blocking_limit(self):
        conn = self._conn(serving_limit_pushdown=False)
        cursor = conn.cursor()
        cursor.execute(self.SQL, use_result_cache=False)
        rows = cursor.fetchall()
        session = conn.server.session(cursor.ticket)
        assert len(rows) == 4
        assert not session.stream.incremental
        assert session.result.metrics.extra.get("limit_pushdown") is None

    def test_duplicate_output_names_collapse_like_a_full_run(self):
        # Result tables are dict-keyed, so "SELECT a.v, b.v" collapses to a
        # single column in a full run; the push-down's early result table
        # must collapse identically instead of mispairing rows and names.
        conn = self._conn()
        conn.create_table("b2", {"k": [0, 1, 2], "v": [7, 8, 9]})
        conn.commit()
        sql = "SELECT a.v, b2.v FROM a, b2 WHERE a.k = b2.k"
        limited = conn.cursor()
        limited.execute(sql + " LIMIT 3", use_result_cache=False)
        rows = limited.fetchall()
        session = conn.server.session(limited.ticket)
        assert session.result.metrics.extra.get("limit_pushdown") is True
        assert len(rows) == 3
        assert session.result.table.column_names == ["v"]
        full = conn.cursor()
        full.execute(sql, use_result_cache=False)
        assert rows == full.fetchall()[:3]


class TestPep249Errors:
    """Use-after-close raises InterfaceError (a ReproError subclass, so
    pre-existing except-clauses keep working); close() is idempotent."""

    def test_interface_error_is_a_repro_error(self):
        from repro import InterfaceError
        assert issubclass(InterfaceError, ReproError)

    def test_connection_close_is_idempotent(self):
        conn = make_connection()
        conn.close()
        conn.close()
        assert conn.closed

    def test_all_cursor_methods_raise_interface_error_after_close(self):
        from repro import InterfaceError
        conn = make_connection()
        cursor = conn.cursor()
        cursor.execute("SELECT r.id FROM r")
        cursor.close()
        cursor.close()  # idempotent too
        for call in (
            lambda: cursor.execute("SELECT r.id FROM r"),
            cursor.fetchone,
            cursor.fetchmany,
            cursor.fetchall,
            cursor.result,
            lambda: cursor.metrics,
        ):
            with pytest.raises(InterfaceError, match="cursor is closed"):
                call()

    def test_connection_methods_raise_interface_error_after_close(self):
        from repro import InterfaceError
        conn = make_connection()
        conn.close()
        for call in (
            conn.cursor,
            lambda: conn.execute("SELECT r.id FROM r"),
            lambda: conn.execute_direct("SELECT r.id FROM r"),
            lambda: conn.create_table("x", {"a": [1]}),
            lambda: conn.drop_table("r"),
            conn.commit,
            conn.stats,
        ):
            with pytest.raises(InterfaceError, match="connection is closed"):
                call()

    def test_fetch_before_execute_raises_interface_error(self):
        from repro import InterfaceError
        cursor = make_connection().cursor()
        with pytest.raises(InterfaceError, match="no query has been executed"):
            cursor.fetchall()


class TestExecuteDirectDeprecation:
    def test_facade_execute_direct_warns_and_still_works(self):
        import warnings
        db = SkinnerDB(config=FAST)
        db.create_table("r", {"id": [1, 2], "a": [10, 20]})
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = db.execute_direct("SELECT COUNT(*) AS n FROM r")
        assert result.rows == [{"n": 2}]
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert any("cursor.execute" in str(w.message) for w in caught)
