"""Integration tests: every engine produces correct results and sane metrics."""

import pytest

from repro.baselines.eddy import EddyEngine
from repro.baselines.random_order import make_random_order_engine, random_skinner_config
from repro.baselines.reoptimizer import ReOptimizerEngine
from repro.baselines.traditional import TraditionalEngine
from repro.config import DEFAULT_CONFIG
from repro.query.expressions import ColumnRef, Star
from repro.query.predicates import column_compare_literal, column_equals_column, udf_predicate
from repro.query.query import AggregateSpec, SelectItem, make_query
from repro.query.udf import UdfRegistry
from repro.skinner.skinner_c import SkinnerC
from repro.skinner.skinner_g import SkinnerG
from repro.skinner.skinner_h import SkinnerH
from tests.conftest import reference_join_count, reference_join_tuples, result_multiset

FAST_CONFIG = DEFAULT_CONFIG.with_overrides(
    slice_budget=64, batches_per_table=3, base_timeout=200
)


def all_engines(catalog, udfs=None):
    """One instance of every engine, all sharing the same catalog."""
    return {
        "skinner-c": SkinnerC(catalog, udfs, FAST_CONFIG),
        "skinner-g": SkinnerG(catalog, udfs, FAST_CONFIG),
        "skinner-h": SkinnerH(catalog, udfs, FAST_CONFIG),
        "traditional": TraditionalEngine(catalog, udfs),
        "eddy": EddyEngine(catalog, udfs),
        "reoptimizer": ReOptimizerEngine(catalog, udfs),
    }


class TestCrossEngineCorrectness:
    def test_join_query_counts_agree_with_oracle(self, tiny_catalog, tiny_join_query):
        expected = reference_join_count(tiny_catalog, tiny_join_query)
        query = make_query(
            tiny_join_query.tables,
            predicates=tiny_join_query.predicates,
            select_items=[SelectItem(aggregate=AggregateSpec("count", Star()), alias="n")],
        )
        for name, engine in all_engines(tiny_catalog).items():
            result = engine.execute(query)
            assert result.rows[0]["n"] == expected, f"{name} returned a wrong count"

    def test_projection_rows_identical_across_engines(self, tiny_catalog):
        query = make_query(
            [("c", "customers"), ("o", "orders")],
            predicates=[column_equals_column("c", "cid", "o", "cid"),
                        column_compare_literal("o", "amount", ">", 90)],
            select_items=[SelectItem(expression=ColumnRef("c", "country"), alias="country"),
                          SelectItem(expression=ColumnRef("o", "amount"), alias="amount")],
        )
        reference = None
        for name, engine in all_engines(tiny_catalog).items():
            rows = result_multiset(engine.execute(query))
            if reference is None:
                reference = rows
            assert rows == reference, f"{name} disagrees on projected rows"

    def test_udf_join_query_across_engines(self, tiny_catalog):
        udfs = UdfRegistry()
        udfs.register("same_parity", lambda a, b: a % 2 == b % 2)
        query = make_query(
            [("c", "customers"), ("o", "orders")],
            predicates=[udf_predicate("same_parity", ("c", "cid"), ("o", "oid"))],
            select_items=[SelectItem(aggregate=AggregateSpec("count", Star()), alias="n")],
        )
        expected = len(reference_join_tuples(tiny_catalog, query, udfs))
        for name, engine in all_engines(tiny_catalog, udfs).items():
            assert engine.execute(query).rows[0]["n"] == expected, name

    def test_single_table_query(self, tiny_catalog):
        query = make_query(
            [("o", "orders")],
            predicates=[column_compare_literal("o", "amount", ">=", 100)],
            select_items=[SelectItem(aggregate=AggregateSpec("count", Star()), alias="n")],
        )
        for name, engine in all_engines(tiny_catalog).items():
            assert engine.execute(query).rows[0]["n"] == 4, name

    def test_empty_result_query(self, tiny_catalog):
        query = make_query(
            [("c", "customers"), ("o", "orders")],
            predicates=[column_equals_column("c", "cid", "o", "cid"),
                        column_compare_literal("c", "country", "=", "xx")],
            select_items=[SelectItem(aggregate=AggregateSpec("count", Star()), alias="n")],
        )
        for name, engine in all_engines(tiny_catalog).items():
            assert engine.execute(query).rows[0]["n"] == 0, name

    def test_group_by_across_engines(self, tiny_catalog):
        query = make_query(
            [("c", "customers"), ("o", "orders")],
            predicates=[column_equals_column("c", "cid", "o", "cid")],
            select_items=[
                SelectItem(expression=ColumnRef("c", "country"), alias="country"),
                SelectItem(aggregate=AggregateSpec("sum", ColumnRef("o", "amount")), alias="total"),
            ],
            group_by=[ColumnRef("c", "country")],
        )
        reference = None
        for name, engine in all_engines(tiny_catalog).items():
            rows = result_multiset(engine.execute(query))
            if reference is None:
                reference = rows
            assert rows == reference, f"{name} disagrees on grouped result"


class TestSkinnerC:
    def test_metrics_populated(self, tiny_catalog, tiny_join_query):
        result = SkinnerC(tiny_catalog, config=FAST_CONFIG).execute(tiny_join_query)
        metrics = result.metrics
        assert metrics.engine == "skinner-c"
        assert metrics.time_slices >= 1
        assert metrics.uct_nodes >= 1
        assert metrics.final_join_order is not None
        assert metrics.simulated_time > 0
        assert metrics.result_tuple_count == reference_join_count(tiny_catalog, tiny_join_query)

    def test_trace_collection(self, tiny_catalog, tiny_join_query):
        result = SkinnerC(tiny_catalog, config=FAST_CONFIG).execute(tiny_join_query, trace=True)
        trace = result.metrics.extra["trace"]
        assert len(trace) == result.metrics.time_slices
        assert all("uct_nodes" in entry for entry in trace)

    @pytest.mark.parametrize("overrides", [
        {"use_hash_jump": False},
        {"share_progress": False},
        {"use_offsets": False},
        {"reward_function": "leftmost"},
        {"order_selection": "random"},
        {"use_hash_jump": False, "share_progress": False, "use_offsets": False},
    ])
    def test_ablations_preserve_correctness(self, tiny_catalog, tiny_join_query, overrides):
        config = FAST_CONFIG.with_overrides(**overrides)
        result = SkinnerC(tiny_catalog, config=config).execute(tiny_join_query)
        assert result.metrics.result_tuple_count == reference_join_count(
            tiny_catalog, tiny_join_query
        )

    def test_execute_with_forced_order(self, tiny_catalog, tiny_join_query):
        engine = SkinnerC(tiny_catalog, config=FAST_CONFIG)
        for order in (("c", "o", "i"), ("i", "o", "c")):
            result = engine.execute_with_order(tiny_join_query, order)
            assert result.metrics.result_tuple_count == reference_join_count(
                tiny_catalog, tiny_join_query
            )
            assert result.metrics.final_join_order == order

    def test_invalid_order_selection_rejected(self, tiny_catalog):
        with pytest.raises(ValueError):
            SkinnerC(tiny_catalog, order_selection="psychic")


class TestSkinnerG:
    def test_uses_pyramid_timeouts(self, tiny_catalog, tiny_join_query):
        result = SkinnerG(tiny_catalog, config=FAST_CONFIG).execute(tiny_join_query)
        levels = result.metrics.extra["timeout_levels"]
        assert levels and 0 in levels
        assert result.metrics.time_slices >= 1

    def test_name_includes_profile(self, tiny_catalog):
        assert "postgres" in SkinnerG(tiny_catalog, dbms_profile="postgres").name
        assert "monetdb" in SkinnerG(tiny_catalog, dbms_profile="monetdb").name


class TestSkinnerH:
    def test_reports_winner(self, tiny_catalog, tiny_join_query):
        result = SkinnerH(tiny_catalog, config=FAST_CONFIG).execute(tiny_join_query)
        assert result.metrics.extra["winner"] in ("traditional", "learning")
        assert result.metrics.extra["rounds"] >= 0

    def test_bounded_overhead_versus_traditional(self, tiny_catalog, tiny_join_query):
        traditional = TraditionalEngine(tiny_catalog).execute(tiny_join_query)
        hybrid = SkinnerH(tiny_catalog, config=FAST_CONFIG).execute(tiny_join_query)
        # Theorem 5.8: the hybrid is at most a constant factor slower than the
        # traditional optimizer; allow generous slack for the tiny input.
        assert hybrid.metrics.work.total <= 25 * max(traditional.metrics.work.total, 1)


class TestTraditionalEngine:
    def test_forced_order_changes_plan(self, tiny_catalog, tiny_join_query):
        engine = TraditionalEngine(tiny_catalog)
        default = engine.execute(tiny_join_query)
        forced = engine.execute(tiny_join_query, forced_order=("i", "o", "c"))
        assert forced.metrics.final_join_order == ("i", "o", "c")
        assert forced.table.num_rows == default.table.num_rows

    def test_work_budget_times_out(self, tiny_catalog, tiny_join_query):
        engine = TraditionalEngine(tiny_catalog)
        result = engine.execute(tiny_join_query, work_budget=3)
        assert result.metrics.extra["timed_out"]
        assert result.table.num_rows == 0

    def test_plan_exposes_cost(self, tiny_catalog, tiny_join_query):
        plan = TraditionalEngine(tiny_catalog).plan(tiny_join_query)
        assert plan.cost > 0
        assert sorted(plan.order) == ["c", "i", "o"]

    def test_invalid_optimizer_rejected(self, tiny_catalog):
        with pytest.raises(ValueError):
            TraditionalEngine(tiny_catalog, optimizer="quantum")


class TestRandomOrderBaseline:
    def test_factory_variants(self, tiny_catalog, tiny_join_query):
        expected = reference_join_count(tiny_catalog, tiny_join_query)
        for variant in ("skinner-c", "skinner-g", "skinner-h"):
            engine = make_random_order_engine(variant, tiny_catalog, config=FAST_CONFIG)
            count_query = make_query(
                tiny_join_query.tables,
                predicates=tiny_join_query.predicates,
                select_items=[SelectItem(aggregate=AggregateSpec("count", Star()), alias="n")],
            )
            assert engine.execute(count_query).rows[0]["n"] == expected, variant

    def test_unknown_variant_rejected(self, tiny_catalog):
        with pytest.raises(ValueError):
            make_random_order_engine("skinner-z", tiny_catalog)

    def test_random_config_flag(self):
        assert random_skinner_config().order_selection == "random"


class TestReOptimizer:
    def test_records_rounds(self, tiny_catalog, tiny_join_query):
        result = ReOptimizerEngine(tiny_catalog).execute(tiny_join_query)
        assert result.metrics.extra["reoptimization_rounds"] >= 0
        assert result.metrics.engine == "reoptimizer"

    def test_corrections_on_misleading_data(self):
        from repro.workloads.torture import make_correlation_torture

        workload = make_correlation_torture(3, 60, good_position=2)
        engine = ReOptimizerEngine(workload.catalog, workload.udfs)
        result = engine.execute(workload.queries[0].query)
        assert result.rows[0]["matches"] == 0
