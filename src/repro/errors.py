"""Exception hierarchy for the repro (SkinnerDB reproduction) package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  More specific subclasses are raised close to the place
where the problem is detected and carry a human-readable message.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CatalogError(ReproError):
    """A table, column, or UDF was not found or is defined twice."""


class SchemaError(ReproError):
    """A table schema is inconsistent (e.g. columns of different length)."""


class ParseError(ReproError):
    """The SQL text could not be parsed.

    Attributes
    ----------
    position:
        Character offset in the SQL string at which the error was detected,
        or ``None`` if unknown.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class PlanningError(ReproError):
    """A query plan could not be constructed (e.g. empty join order)."""


class ExecutionError(ReproError):
    """Query execution failed for a reason other than exceeding a budget."""


class BudgetExceeded(ReproError):
    """Raised internally when a work-unit budget is exhausted.

    Budgeted executors use this to abandon a partially processed batch, in
    the same way Skinner-G aborts the underlying DBMS call when the timeout
    per batch elapses.
    """

    def __init__(self, message: str = "work budget exceeded", spent: int = 0) -> None:
        super().__init__(message)
        self.spent = spent


class UnsupportedQueryError(ReproError):
    """The query uses a feature the chosen engine does not support."""


class InterfaceError(ReproError):
    """The database interface was misused (PEP 249's interface error).

    Raised for client-side protocol violations: operating on a closed
    connection or cursor, fetching before ``execute()``, or requesting a
    capability the connection's transport does not provide (e.g. registering
    a Python UDF over a remote connection).
    """


class OperationalError(ReproError):
    """A database operation failed for reasons outside the caller's control.

    Raised by the remote transport for lost connections, handshake or
    framing violations, request timeouts, and server-side failures that do
    not map onto a more specific :class:`ReproError` subclass.
    """
