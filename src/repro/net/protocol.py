"""The wire protocol: length-prefixed JSON frames over TCP.

Framing is a 4-byte big-endian payload length followed by a UTF-8 JSON
document; :data:`MAX_FRAME` bounds the payload so a corrupt or hostile
length prefix cannot make either side allocate unboundedly.  JSON (rather
than a binary codec) keeps the protocol dependency-free and debuggable
with a packet capture; every value the engine produces — column values
are plain ``int`` / ``float`` / ``str`` — round-trips losslessly.

One request/response exchange:

* request — ``{"v": verb, "id": n, "args": {...}}``; ``id`` is a
  client-chosen sequence number echoed back, so a client can pipeline and
  still match responses.
* success — ``{"id": n, "ok": true, "data": {...}}``.
* failure — ``{"id": n, "ok": false, "error": {"type": ..., "message":
  ...}}`` where ``type`` is the :class:`~repro.errors.ReproError` subclass
  name.  :func:`error_from_wire` reconstructs the same exception class
  client-side (including :class:`ParseError`'s position and
  :class:`BudgetExceeded`'s spent counter), so remote error behaviour is
  indistinguishable from local; unknown server-side types degrade to
  :class:`~repro.errors.OperationalError`.

The first exchange on a connection must be the ``hello`` handshake, which
pins the protocol version and the client's tenant identity; the tenant
cannot be changed afterwards (quota accounting is per-connection).
See ``docs/serving.md`` for the full verb table.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

from repro.errors import (
    BudgetExceeded,
    CatalogError,
    ExecutionError,
    InterfaceError,
    OperationalError,
    ParseError,
    PlanningError,
    ReproError,
    SchemaError,
    UnsupportedQueryError,
)
from repro.engine.meter import WorkBreakdown
from repro.result import QueryMetrics, QueryResult
from repro.storage.table import Table

#: Protocol revision; bumped on any incompatible wire change.  The server
#: rejects a ``hello`` with a different version.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON payload (64 MiB).
MAX_FRAME = 64 * 1024 * 1024

LENGTH_PREFIX = struct.Struct(">I")


class FrameError(OperationalError):
    """The byte stream violated the framing rules (not a valid peer)."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialize one message to its on-wire bytes (length prefix + JSON)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return LENGTH_PREFIX.pack(len(body)) + body


def decode_payload(body: bytes) -> dict[str, Any]:
    """Parse a frame payload; framing errors surface as :class:`FrameError`."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise FrameError("frame payload must be a JSON object")
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    EOF in the middle of a frame (a peer that died mid-message) raises
    :class:`FrameError` — callers treat both as a disconnect but the
    distinction matters for logging.
    """
    try:
        prefix = await reader.readexactly(LENGTH_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise FrameError("connection closed mid-frame") from None
    (length,) = LENGTH_PREFIX.unpack(prefix)
    if length > MAX_FRAME:
        raise FrameError(f"announced frame of {length} bytes exceeds MAX_FRAME")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise FrameError("connection closed mid-frame") from None
    return decode_payload(body)


# ----------------------------------------------------------------------
# error mapping
# ----------------------------------------------------------------------
#: Exception classes that cross the wire under their own name.  Anything
#: else (including non-Repro exceptions escaping the server) is reported
#: as OperationalError so a server bug cannot crash the protocol.
_ERROR_TYPES: dict[str, type[ReproError]] = {
    cls.__name__: cls
    for cls in (
        ReproError,
        CatalogError,
        SchemaError,
        ParseError,
        PlanningError,
        ExecutionError,
        BudgetExceeded,
        UnsupportedQueryError,
        InterfaceError,
        OperationalError,
        FrameError,
    )
}


def error_to_wire(exc: BaseException) -> dict[str, Any]:
    """Serialize an exception for the failure envelope."""
    name = type(exc).__name__
    wire: dict[str, Any] = {"type": name, "message": str(exc)}
    if isinstance(exc, ParseError):
        wire["position"] = exc.position
    if isinstance(exc, BudgetExceeded):
        wire["spent"] = exc.spent
    if name not in _ERROR_TYPES:
        # A non-Repro exception escaped the dispatch — degrade explicitly.
        wire["type"] = "OperationalError"
        wire["message"] = f"server error {name}: {exc}"
    return wire


def error_from_wire(wire: dict[str, Any]) -> ReproError:
    """Reconstruct the exception a failure envelope describes."""
    cls = _ERROR_TYPES.get(str(wire.get("type")), OperationalError)
    message = str(wire.get("message", "unknown server error"))
    if cls is ParseError:
        position = wire.get("position")
        return ParseError(message, position if isinstance(position, int) else None)
    if cls is BudgetExceeded:
        spent = wire.get("spent")
        return BudgetExceeded(message, spent if isinstance(spent, int) else 0)
    return cls(message)


# ----------------------------------------------------------------------
# result and metrics codecs
# ----------------------------------------------------------------------
def metrics_to_wire(metrics: QueryMetrics) -> dict[str, Any]:
    """Serialize :class:`QueryMetrics` (work counters exactly, as ints)."""
    work = metrics.work
    return {
        "engine": metrics.engine,
        "work": {
            "tuples_scanned": work.tuples_scanned,
            "predicate_evals": work.predicate_evals,
            "hash_probes": work.hash_probes,
            "intermediate_tuples": work.intermediate_tuples,
            "output_tuples": work.output_tuples,
            "udf_invocations": work.udf_invocations,
        },
        "simulated_time": metrics.simulated_time,
        "wall_time_seconds": metrics.wall_time_seconds,
        "intermediate_cardinality": metrics.intermediate_cardinality,
        "result_rows": metrics.result_rows,
        "final_join_order": (
            list(metrics.final_join_order)
            if metrics.final_join_order is not None
            else None
        ),
        "time_slices": metrics.time_slices,
        "uct_nodes": metrics.uct_nodes,
        "tracker_nodes": metrics.tracker_nodes,
        "result_tuple_count": metrics.result_tuple_count,
        # Engine extras are JSON-normalized (tuples become lists); the
        # byte-identity tests compare charges, not extras' container types.
        "extra": metrics.extra,
    }


def metrics_from_wire(wire: dict[str, Any]) -> QueryMetrics:
    """Reconstruct :class:`QueryMetrics` from its wire form."""
    order = wire.get("final_join_order")
    return QueryMetrics(
        engine=wire["engine"],
        work=WorkBreakdown(**wire["work"]),
        simulated_time=wire["simulated_time"],
        wall_time_seconds=wire["wall_time_seconds"],
        intermediate_cardinality=wire["intermediate_cardinality"],
        result_rows=wire["result_rows"],
        final_join_order=tuple(order) if order is not None else None,
        time_slices=wire["time_slices"],
        uct_nodes=wire["uct_nodes"],
        tracker_nodes=wire["tracker_nodes"],
        result_tuple_count=wire["result_tuple_count"],
        extra=dict(wire.get("extra") or {}),
    )


def result_to_wire(result: QueryResult) -> dict[str, Any]:
    """Serialize a completed :class:`QueryResult` (columns + metrics)."""
    table = result.table
    columns = [table.column(name).values() for name in table.column_names]
    return {
        "name": table.name,
        "columns": list(table.column_names),
        "rows": [list(row) for row in zip(*columns)],
        "metrics": metrics_to_wire(result.metrics),
    }


def result_from_wire(wire: dict[str, Any]) -> QueryResult:
    """Reconstruct a :class:`QueryResult` from its wire form."""
    rows = [tuple(row) for row in wire["rows"]]
    table = Table.from_rows(wire["name"], wire["columns"], rows)
    return QueryResult(table, metrics_from_wire(wire["metrics"]))
