"""Network front door: a TCP server and client for the serving layer.

The package turns the in-process :class:`~repro.serving.server.QueryServer`
into a multi-tenant network service:

* :mod:`repro.net.protocol` — the length-prefixed JSON wire protocol
  (framing, verb/response envelopes, error and result codecs);
* :mod:`repro.net.server` — the :class:`ReproServer` asyncio front door
  (per-client handshake, episode pump, tenant backpressure, disconnect
  cleanup) plus :class:`ServerThread` for embedding a live server in tests
  and benchmarks;
* :mod:`repro.net.client` — the blocking-socket
  :class:`~repro.net.client.RemoteTransport` behind
  ``connect("repro://host:port/?tenant=...")``.

``python -m repro.net`` starts a standalone server (see ``__main__.py``).
"""

from repro.net.client import RemoteTransport, parse_dsn
from repro.net.protocol import PROTOCOL_VERSION
from repro.net.server import ReproServer, ServerThread

__all__ = [
    "PROTOCOL_VERSION",
    "RemoteTransport",
    "ReproServer",
    "ServerThread",
    "parse_dsn",
]
