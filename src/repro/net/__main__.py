"""Standalone server entry point: ``python -m repro.net``.

Starts a :class:`~repro.net.server.ReproServer` on the given address and
serves until SIGTERM or SIGINT, then shuts down cleanly (stops listening,
ends the episode pump, drops client sockets) and exits 0 — the CI smoke
job asserts exactly this contract.

``--demo-data`` seeds the quickstart's movie-rental schema so a fresh
server is immediately queryable::

    python -m repro.net --port 7439 --demo-data &
    python examples/remote_quickstart.py --dsn repro://127.0.0.1:7439/
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.api.connection import connect
from repro.net.client import DEFAULT_PORT
from repro.net.server import ReproServer


def seed_demo_data(connection) -> None:
    """The quickstart's movie-rental schema (films/rentals/customers)."""
    connection.create_table("films", {
        "fid": [1, 2, 3, 4, 5, 6],
        "title": ["heat", "alien", "brazil", "clue", "diva", "eden"],
        "year": [1995, 1979, 1985, 1985, 1981, 1996],
        "genre": ["crime", "scifi", "scifi", "comedy", "crime", "drama"],
    })
    connection.create_table("rentals", {
        "rid": list(range(1, 11)),
        "fid": [1, 1, 2, 3, 3, 3, 4, 5, 6, 6],
        "price": [4, 3, 5, 2, 2, 3, 1, 4, 2, 2],
    })
    connection.create_table("customers", {
        "rid": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        "segment": ["gold", "gold", "silver", "silver", "gold",
                    "bronze", "silver", "gold", "bronze", "gold"],
    })
    connection.commit()


async def _serve(args: argparse.Namespace) -> int:
    connection = connect(data_dir=args.data_dir)
    if args.demo_data:
        seed_demo_data(connection)
    server = ReproServer(connection, host=args.host, port=args.port)
    await server.start()
    print(f"repro server listening on {server.dsn}", flush=True)

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    await stop.wait()
    print("repro server shutting down", flush=True)
    await server.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="Serve the repro wire protocol over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"listen port (default {DEFAULT_PORT}; 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--demo-data", action="store_true",
        help="seed the quickstart schema before serving",
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="serve durable storage from this directory (created and "
             "recovered on start; omit for the in-memory catalog)",
    )
    args = parser.parse_args(argv)
    return asyncio.run(_serve(args))


if __name__ == "__main__":
    sys.exit(main())
