"""The asyncio network front door over a :class:`QueryServer`.

:class:`ReproServer` listens on TCP and serves the wire protocol of
:mod:`repro.net.protocol` against one server-side in-process
:class:`~repro.api.connection.Connection`.  The design keeps the serving
layer's central invariant intact — all episodes still run on one thread:

* a single **pump** coroutine calls ``QueryServer.step()`` while any
  session is runnable (yielding to the event loop between grants, so
  socket I/O interleaves with execution) and sleeps on a work event when
  idle;
* client handlers never execute queries; they translate verbs into
  ``submit`` / ``poll`` / ``fetch(drive=False)`` calls and *wait on a
  progress event* the pump sets after every grant — the asyncio
  equivalent of the cooperative driving that in-process callers do;
* **backpressure**: a handler stops reading its socket while its tenant's
  backlog (non-terminal sessions) is at ``serving_tenant_backlog``, so a
  flooding client is throttled by TCP flow control instead of growing an
  unbounded server-side queue.  The gate sits *between* requests — the
  previous response is always sent first — and sessions complete without
  being fetched, so a gated tenant's backlog always drains;
* **disconnect cleanup**: when a client's socket closes (EOF, reset, or a
  framing violation), every non-terminal ticket that client submitted is
  cancelled and forgotten, releasing its admission slot — a vanished
  client cannot starve the tenants that stayed.

:class:`ServerThread` hosts a server on a background thread with an
ephemeral port for tests, benchmarks, and the self-contained quickstart.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from typing import Any

from repro.api.connection import Connection, connect
from repro.config import DEFAULT_CONFIG, SkinnerConfig
from repro.errors import InterfaceError, OperationalError, ReproError
from repro.net.protocol import (
    PROTOCOL_VERSION,
    FrameError,
    encode_frame,
    error_to_wire,
    read_frame,
    result_to_wire,
)


def _same_path(a: str, b: str) -> bool:
    """Whether two paths name the same location (symlinks resolved)."""
    return os.path.realpath(a) == os.path.realpath(b)


class _Client:
    """Per-connection state: the handshaken tenant and owned tickets."""

    def __init__(self, peer: str) -> None:
        self.peer = peer
        self.tenant = "default"
        self.workers: int | None = None
        self.engine: str | None = None
        self.tickets: set[int] = set()


class ReproServer:
    """A TCP front door serving the wire protocol over one connection.

    Parameters
    ----------
    connection:
        The server-side :class:`Connection` holding the catalog and the
        serving layer.  When omitted, a fresh local connection is created
        from ``config``.
    config:
        Configuration for the implicit connection (ignored when
        ``connection`` is given).  ``serving_tenant_backlog`` bounds each
        tenant's non-terminal sessions before its sockets stop being read.
    host, port:
        Listen address; port 0 picks an ephemeral port (read back from
        :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        connection: Connection | None = None,
        *,
        config: SkinnerConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if connection is None:
            connection = connect(config if config is not None else DEFAULT_CONFIG)
        if connection.is_remote:
            raise InterfaceError("a ReproServer needs a local connection to serve")
        self.connection = connection
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._pump_task: asyncio.Task | None = None
        self._work: asyncio.Event = asyncio.Event()
        self._progress: asyncio.Event = asyncio.Event()
        self._stopping = False
        self._clients: set[_Client] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start the episode pump."""
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._pump_task = asyncio.create_task(self._pump())

    async def serve_forever(self) -> None:
        """:meth:`start` then serve until cancelled or :meth:`stop`."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Stop listening, end the pump, and drop live client sockets."""
        if self._stopping:
            return
        self._stopping = True
        self._work.set()
        self._notify_progress()  # wake handlers blocked on fetch/backpressure
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._pump_task is not None:
            await self._pump_task
        for writer in list(self._writers):
            writer.close()

    @property
    def dsn(self) -> str:
        """A DSN clients can :func:`repro.api.connect` with."""
        return f"repro://{self.host}:{self.port}/"

    # ------------------------------------------------------------------
    # the episode pump
    # ------------------------------------------------------------------
    async def _pump(self) -> None:
        """Run scheduling grants while work exists; sleep on the work event.

        Yielding after every grant keeps socket I/O responsive even under
        sustained load — one grant is bounded by the work quantum and (when
        configured) the wall-clock grant budget.
        """
        server = self.connection.server
        while not self._stopping:
            if server.step():
                self._notify_progress()
                await asyncio.sleep(0)
            else:
                self._work.clear()
                # Re-check after clearing: a submit may have raced the clear.
                if server.step():
                    self._notify_progress()
                    await asyncio.sleep(0)
                    continue
                if self._stopping:
                    break
                await self._work.wait()

    def _notify_progress(self) -> None:
        """Wake every coroutine waiting for serving-state changes."""
        event, self._progress = self._progress, asyncio.Event()
        event.set()

    async def _await_progress(self) -> None:
        """Park until the next grant/submission/cancellation, or shutdown."""
        if self._stopping:
            raise OperationalError("server is shutting down")
        event = self._progress
        self._work.set()
        await event.wait()
        if self._stopping:
            raise OperationalError("server is shutting down")

    # ------------------------------------------------------------------
    # client handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        client = _Client(str(peername))
        self._writers.add(writer)
        try:
            if not await self._handshake(client, reader, writer):
                return
            self._clients.add(client)
            qs = self.connection.server
            backlog_bound = max(1, self.connection.config.serving_tenant_backlog)
            while not self._stopping:
                # Backpressure: stop reading this tenant's socket while its
                # backlog is full; TCP flow control throttles the client.
                while qs.tenant_backlog(client.tenant) >= backlog_bound:
                    await self._await_progress()
                request = await read_frame(reader)
                if request is None:
                    return  # clean disconnect
                await self._respond(client, writer, request)
        except (FrameError, ConnectionResetError, BrokenPipeError, OperationalError):
            return  # broken peer: cleanup below still runs
        finally:
            self._writers.discard(writer)
            self._clients.discard(client)
            self._abandon_client(client)
            writer.close()

    async def _handshake(
        self, client: _Client, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """First exchange: protocol version check and tenant binding."""
        request = await read_frame(reader)
        if request is None:
            return False
        request_id = request.get("id")
        if request.get("v") != "hello":
            await self._write(
                writer, request_id,
                error=OperationalError("first request must be hello"),
            )
            return False
        args = request.get("args") or {}
        version = args.get("version")
        if version != PROTOCOL_VERSION:
            await self._write(
                writer, request_id,
                error=OperationalError(
                    f"protocol version {version} unsupported (server speaks "
                    f"{PROTOCOL_VERSION})"
                ),
            )
            return False
        client.tenant = str(args.get("tenant") or "default")
        workers = args.get("workers")
        if workers is not None:
            if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
                await self._write(
                    writer, request_id,
                    error=InterfaceError(
                        f"workers must be a positive integer, got {workers!r}"
                    ),
                )
                return False
            client.workers = workers
        effective = (
            client.workers
            if client.workers is not None
            else self.connection.config.parallel_workers
        )
        requested_engine = args.get("engine")
        if requested_engine is not None:
            # Engine names resolve against the *server's* registry; an
            # unknown name would otherwise surface only at the first
            # submit, long after the session looked healthy.
            if not isinstance(requested_engine, str) or not requested_engine.strip():
                await self._write(
                    writer, request_id,
                    error=InterfaceError(
                        f"engine must be a non-empty engine name, "
                        f"got {requested_engine!r}"
                    ),
                )
                return False
            engine_name = requested_engine.lower()
            if engine_name not in self.connection.registry:
                await self._write(
                    writer, request_id,
                    error=InterfaceError(
                        f"unknown engine {engine_name!r}; registered engines: "
                        f"{', '.join(sorted(self.connection.registry.names()))}"
                    ),
                )
                return False
            client.engine = engine_name
        server_dir = self.connection.config.data_dir
        requested_dir = args.get("data_dir")
        if requested_dir is not None:
            # data_dir names server-side storage; a client asking for a
            # directory this server does not serve would silently run
            # against the wrong (or no) durable state, so mismatches fail
            # the handshake.
            if not isinstance(requested_dir, str) or not requested_dir.strip():
                await self._write(
                    writer, request_id,
                    error=InterfaceError(
                        f"data_dir must be a non-empty path, got {requested_dir!r}"
                    ),
                )
                return False
            if server_dir is None or not _same_path(requested_dir, server_dir):
                await self._write(
                    writer, request_id,
                    error=InterfaceError(
                        f"server data_dir is {server_dir!r}; "
                        f"refusing session asking for {requested_dir!r}"
                    ),
                )
                return False
        await self._write(
            writer, request_id,
            data={
                "version": PROTOCOL_VERSION,
                "tenant": client.tenant,
                "server": "repro",
                "workers": effective,
                "data_dir": server_dir,
                "engine": (
                    client.engine
                    if client.engine is not None
                    else self.connection.config.default_engine
                ),
            },
        )
        return True

    async def _respond(
        self, client: _Client, writer: asyncio.StreamWriter, request: dict[str, Any]
    ) -> None:
        request_id = request.get("id")
        verb = request.get("v")
        args = request.get("args") or {}
        try:
            data = await self._dispatch(client, str(verb), args)
        except ReproError as exc:
            await self._write(writer, request_id, error=exc)
        except Exception as exc:  # noqa: BLE001 - a server bug becomes an
            # OperationalError on the wire instead of killing the socket.
            await self._write(writer, request_id, error=exc)
        else:
            await self._write(writer, request_id, data=data)

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        request_id: Any,
        *,
        data: dict[str, Any] | None = None,
        error: BaseException | None = None,
    ) -> None:
        if error is not None:
            payload = {"id": request_id, "ok": False, "error": error_to_wire(error)}
        else:
            payload = {"id": request_id, "ok": True, "data": data or {}}
        writer.write(encode_frame(payload))
        await writer.drain()

    def _abandon_client(self, client: _Client) -> None:
        """Cancel and forget every non-terminal ticket a client left behind."""
        qs = self.connection.server
        for ticket in sorted(client.tickets):
            try:
                qs.cancel(ticket)
                qs.forget(ticket)
            except ReproError:
                pass  # already forgotten
        client.tickets.clear()
        self._notify_progress()
        self._work.set()

    # ------------------------------------------------------------------
    # verb dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, client: _Client, verb: str, args: dict[str, Any]
    ) -> dict[str, Any]:
        handler = getattr(self, f"_verb_{verb}", None)
        if handler is None:
            raise OperationalError(f"unknown verb {verb!r}")
        return await handler(client, args)

    async def _verb_submit(self, client: _Client, args: dict[str, Any]) -> dict[str, Any]:
        conn = self.connection
        parsed = conn.parse(str(args["sql"]), args.get("params"))
        config = args.get("config")
        forced = args.get("forced_order")
        if config is not None:
            # A per-submission config carries its own parallel_workers —
            # the client serialized the whole dataclass, session defaults
            # must not override an explicit choice.
            effective_config = SkinnerConfig(**config)
        elif client.workers is not None:
            effective_config = conn.config.with_overrides(
                parallel_workers=client.workers
            )
        else:
            effective_config = conn.config
        ticket = conn.server.submit(
            parsed,
            engine=(
                args.get("engine")
                or client.engine
                or conn.config.default_engine
            ),
            profile=args.get("profile", "postgres"),
            config=effective_config,
            threads=int(args.get("threads", 1)),
            forced_order=tuple(forced) if forced is not None else None,
            use_result_cache=bool(args.get("use_result_cache", True)),
            weight=float(args.get("weight", 1.0)),
            priority=int(args.get("priority", 0)),
            tenant=client.tenant,
            stream=bool(args.get("stream", True)),
        )
        client.tickets.add(ticket)
        self._work.set()
        return {
            "ticket": ticket,
            "columns": list(parsed.output_names(conn.catalog)),
        }

    async def _verb_poll(self, client: _Client, args: dict[str, Any]) -> dict[str, Any]:
        return self.connection.server.poll(int(args["ticket"]))

    async def _verb_fetch(self, client: _Client, args: dict[str, Any]) -> dict[str, Any]:
        """Next streamed batch; parks on the progress event until rows exist."""
        qs = self.connection.server
        ticket = int(args["ticket"])
        max_rows = args.get("max_rows")
        while True:
            session = qs.session(ticket)  # unknown tickets raise here
            if session.done or (session.stream is not None and len(session.stream)):
                rows = qs.fetch(ticket, max_rows, drive=False)
                return {"rows": [list(row) for row in rows]}
            await self._await_progress()

    async def _verb_result(self, client: _Client, args: dict[str, Any]) -> dict[str, Any]:
        """The completed result; parks until the session is terminal."""
        qs = self.connection.server
        ticket = int(args["ticket"])
        while not qs.session(ticket).done:
            await self._await_progress()
        return result_to_wire(qs.result(ticket, drive=False))

    async def _verb_cancel(self, client: _Client, args: dict[str, Any]) -> dict[str, Any]:
        cancelled = self.connection.server.cancel(int(args["ticket"]))
        self._notify_progress()
        self._work.set()
        return {"cancelled": cancelled}

    async def _verb_forget(self, client: _Client, args: dict[str, Any]) -> dict[str, Any]:
        ticket = int(args["ticket"])
        forgotten = self.connection.server.forget(ticket)
        client.tickets.discard(ticket)
        return {"forgotten": forgotten}

    async def _verb_create_table(
        self, client: _Client, args: dict[str, Any]
    ) -> dict[str, Any]:
        table = self.connection.create_table(
            str(args["name"]), args["columns"], replace=bool(args.get("replace", False))
        )
        return {"name": table.name, "rows": table.num_rows}

    async def _verb_drop_table(self, client: _Client, args: dict[str, Any]) -> dict[str, Any]:
        self.connection.drop_table(str(args["name"]))
        return {}

    async def _verb_commit(self, client: _Client, args: dict[str, Any]) -> dict[str, Any]:
        self.connection.commit()
        return {}

    async def _verb_rollback(self, client: _Client, args: dict[str, Any]) -> dict[str, Any]:
        self.connection.rollback()
        return {}

    async def _verb_set_quota(self, client: _Client, args: dict[str, Any]) -> dict[str, Any]:
        self.connection.server.set_tenant_quota(
            str(args["tenant"]), float(args["share"])
        )
        return {}

    async def _verb_stats(self, client: _Client, args: dict[str, Any]) -> dict[str, Any]:
        stats = self.connection.server.stats()
        stats["clients"] = len(self._clients)
        stats["uptime_seconds"] = time.monotonic() - self._started_at
        stats["protocol_version"] = PROTOCOL_VERSION
        return stats


class ServerThread:
    """A live :class:`ReproServer` on a daemon thread (tests, benchmarks).

    >>> from repro.net.server import ServerThread  # doctest: +SKIP
    >>> with ServerThread() as server:             # doctest: +SKIP
    ...     conn = connect(server.dsn)
    """

    def __init__(
        self,
        connection: Connection | None = None,
        *,
        config: SkinnerConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.server = ReproServer(connection, config=config, host=host, port=port)
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-net-server", daemon=True
        )
        self._error: BaseException | None = None

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def start(self) -> ServerThread:
        """Start the thread; returns once the socket is listening."""
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise OperationalError("server thread did not become ready")
        if self._error is not None:
            raise OperationalError(f"server thread failed: {self._error}")
        return self

    def stop(self) -> None:
        """Shut the server down and join the thread (idempotent)."""
        if self._loop is not None and self._thread.is_alive():
            assert self._stop_event is not None
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30)

    @property
    def dsn(self) -> str:
        """DSN of the live server (valid after :meth:`start`)."""
        return self.server.dsn

    @property
    def connection(self) -> Connection:
        """The server-side connection (seed schema through this)."""
        return self.server.connection

    def __enter__(self) -> ServerThread:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
