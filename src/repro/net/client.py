"""The remote transport: a blocking socket client for the wire protocol.

``connect("repro://host:port/?tenant=...")`` resolves here.  The client is
deliberately synchronous — the PEP 249 surface is blocking, so the
transport is one :class:`SocketChannel` issuing strictly ordered
request/response exchanges under a lock (thread-safe, like the local
transport's cooperative driving).  Long waits are server-side: a ``fetch``
or ``result`` request parks in the server's event loop until rows exist,
so the client needs no polling loop and no timeout by default (pass
``timeout=`` seconds to bound every exchange instead).

Capability limits of the wire (both raise
:class:`~repro.errors.InterfaceError` client-side, before any bytes are
sent): prebuilt :class:`~repro.query.query.Query` objects cannot be
submitted (SQL text travels; the server parses against *its* catalog), and
Python UDFs cannot be registered.  CSV loads read the file client-side and
ship the parsed columns.

Lost connections, framing violations, timeouts, and unknown server errors
surface as :class:`~repro.errors.OperationalError`; typed engine errors
(parse, catalog, budget, ...) are reconstructed as their original classes
by :func:`repro.net.protocol.error_from_wire`.
"""

from __future__ import annotations

import dataclasses
import itertools
import socket
import threading
from collections.abc import Callable, Mapping, Sequence
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.api.transport import SubmitHandle, Transport
from repro.config import SkinnerConfig
from repro.errors import InterfaceError, OperationalError
from repro.net.protocol import (
    LENGTH_PREFIX,
    MAX_FRAME,
    PROTOCOL_VERSION,
    FrameError,
    decode_payload,
    encode_frame,
    error_from_wire,
    result_from_wire,
)
from repro.result import QueryResult
from repro.storage.loader import load_csv as _load_csv_file
from repro.storage.table import Table

#: Default TCP port of ``python -m repro.net`` (and DSNs without a port).
DEFAULT_PORT = 7439


def parse_dsn(
    dsn: str,
) -> tuple[str, int, str | None, float | None, int | None, str | None, str | None]:
    """Parse ``repro://host:port/?tenant=name&timeout=s&workers=N&data_dir=path&engine=name``.

    Returns ``(host, port, tenant, timeout, workers, data_dir, engine)``
    with ``None`` for parameters the DSN does not set.  Unknown query
    parameters are rejected — a typo in ``tenant`` would otherwise
    silently land the client in the default quota bucket.
    """
    parts = urlsplit(dsn)
    if parts.scheme != "repro":
        raise InterfaceError(f"DSN scheme must be repro://, got {dsn!r}")
    if parts.path not in ("", "/"):
        raise InterfaceError(f"DSN has no path component, got {parts.path!r}")
    host = parts.hostname or "127.0.0.1"
    port = parts.port if parts.port is not None else DEFAULT_PORT
    params = parse_qs(parts.query, keep_blank_values=True)
    unknown = set(params) - {"tenant", "timeout", "workers", "data_dir", "engine"}
    if unknown:
        raise InterfaceError(f"unknown DSN parameter(s): {', '.join(sorted(unknown))}")
    tenant = params["tenant"][0] if "tenant" in params else None
    timeout: float | None = None
    if "timeout" in params:
        try:
            timeout = float(params["timeout"][0])
        except ValueError:
            raise InterfaceError(
                f"DSN timeout must be a number of seconds, got {params['timeout'][0]!r}"
            ) from None
    workers: int | None = None
    if "workers" in params:
        raw = params["workers"][0]
        try:
            workers = int(raw)
        except ValueError:
            raise InterfaceError(
                f"DSN workers must be a positive integer, got {raw!r}"
            ) from None
        if workers < 1:
            raise InterfaceError(f"DSN workers must be a positive integer, got {raw!r}")
    data_dir: str | None = None
    if "data_dir" in params:
        data_dir = params["data_dir"][0]
        if not data_dir.strip():
            raise InterfaceError("DSN data_dir must be a non-empty path")
    engine: str | None = None
    if "engine" in params:
        engine = params["engine"][0]
        if not engine.strip():
            raise InterfaceError("DSN engine must be a non-empty engine name")
        engine = engine.lower()
    return host, port, tenant, timeout, workers, data_dir, engine


class SocketChannel:
    """One blocking protocol connection: framed, lock-serialized exchanges."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        timeout: float | None = None,
        workers: int | None = None,
        data_dir: str | None = None,
        engine: str | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._closed = False
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise OperationalError(f"cannot connect to {host}:{port}: {exc}") from None
        # TCP_NODELAY: every exchange is one small frame each way; Nagle
        # would add 40ms to each request under load.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello = self.request(
            "hello",
            version=PROTOCOL_VERSION,
            tenant=tenant,
            workers=workers,
            data_dir=data_dir,
            engine=engine,
        )
        self.tenant: str = str(hello.get("tenant", tenant))
        #: Effective intra-query parallelism the server granted this session
        #: (the handshake echoes it back; ``1`` means single-process).
        self.workers: int = int(hello.get("workers", workers or 1))
        #: The server's durable data directory (``None`` = in-memory);
        #: echoed by the handshake, which rejects a mismatched request.
        raw_dir = hello.get("data_dir")
        self.data_dir: str | None = str(raw_dir) if raw_dir is not None else None
        #: Session default engine the server acknowledged (queries that
        #: name no engine run on this); validated during the handshake, so
        #: an unknown name fails the connect, not the first query.
        raw_engine = hello.get("engine")
        self.engine: str | None = str(raw_engine) if raw_engine is not None else None

    def request(self, verb: str, **args: Any) -> dict[str, Any]:
        """One request/response exchange; returns the response data."""
        with self._lock:
            if self._closed:
                raise InterfaceError("connection is closed")
            request_id = next(self._seq)
            frame = encode_frame({"v": verb, "id": request_id, "args": args})
            try:
                self._sock.sendall(frame)
                response = self._read_frame()
            except socket.timeout:
                self._teardown()
                raise OperationalError(f"request {verb!r} timed out") from None
            except OSError as exc:
                self._teardown()
                raise OperationalError(f"connection lost during {verb!r}: {exc}") from None
        if response.get("id") != request_id:
            self.close()
            raise OperationalError(
                f"response id {response.get('id')!r} does not match request {request_id}"
            )
        if response.get("ok"):
            data = response.get("data")
            return data if isinstance(data, dict) else {}
        raise error_from_wire(response.get("error") or {})

    def _read_frame(self) -> dict[str, Any]:
        prefix = self._recv_exact(LENGTH_PREFIX.size)
        (length,) = LENGTH_PREFIX.unpack(prefix)
        if length > MAX_FRAME:
            raise FrameError(f"announced frame of {length} bytes exceeds MAX_FRAME")
        return decode_payload(self._recv_exact(length))

    def _recv_exact(self, count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            chunk = self._sock.recv(count - len(chunks))
            if not chunk:
                self._teardown()
                raise OperationalError("server closed the connection")
            chunks.extend(chunk)
        return bytes(chunks)

    def _teardown(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the socket (idempotent)."""
        with self._lock:
            if not self._closed:
                self._teardown()


class RemoteTransport(Transport):
    """The :class:`Transport` over a :class:`SocketChannel`.

    Construct via :func:`from_dsn` (what ``connect()`` does) — the
    positional form exists for tests that already know host and port.
    """

    remote = True

    def __init__(
        self,
        host: str,
        port: int = DEFAULT_PORT,
        *,
        tenant: str = "default",
        timeout: float | None = None,
        workers: int | None = None,
        data_dir: str | None = None,
        engine: str | None = None,
    ) -> None:
        self._channel = SocketChannel(
            host, port, tenant=tenant, timeout=timeout, workers=workers,
            data_dir=data_dir, engine=engine,
        )
        self.tenant = self._channel.tenant
        self.workers = self._channel.workers
        self.data_dir = self._channel.data_dir
        self.engine = self._channel.engine

    @classmethod
    def from_dsn(
        cls,
        dsn: str,
        *,
        tenant: str | None = None,
        timeout: float | None = None,
        workers: int | None = None,
        data_dir: str | None = None,
        engine: str | None = None,
    ) -> RemoteTransport:
        """Resolve a ``repro://`` DSN; keyword arguments win over the DSN's."""
        (host, port, dsn_tenant, dsn_timeout, dsn_workers, dsn_data_dir,
         dsn_engine) = parse_dsn(dsn)
        return cls(
            host,
            port,
            tenant=tenant if tenant is not None else (dsn_tenant or "default"),
            timeout=timeout if timeout is not None else dsn_timeout,
            workers=workers if workers is not None else dsn_workers,
            data_dir=data_dir if data_dir is not None else dsn_data_dir,
            engine=engine if engine is not None else dsn_engine,
        )

    # ------------------------------------------------------------------
    # argument marshalling
    # ------------------------------------------------------------------
    @staticmethod
    def _sql_text(operation: str | Any) -> str:
        if not isinstance(operation, str):
            raise InterfaceError(
                "a remote connection takes SQL text only; prebuilt Query "
                "objects cannot cross the wire (the server parses against "
                "its own catalog)"
            )
        return operation

    @staticmethod
    def _wire_params(
        parameters: Sequence[Any] | Mapping[str, Any] | None,
    ) -> list[Any] | dict[str, Any] | None:
        if parameters is None:
            return None
        if isinstance(parameters, Mapping):
            return dict(parameters)
        return list(parameters)

    @staticmethod
    def _wire_config(config: SkinnerConfig | None) -> dict[str, Any] | None:
        # None means "use the server's default config" — the client never
        # implicitly overrides server-side settings (byte-identity with
        # in-process runs against the same server config depends on this).
        return dataclasses.asdict(config) if config is not None else None

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def submit(
        self,
        operation: str | Any,
        parameters: Sequence[Any] | Mapping[str, Any] | None,
        *,
        engine: str,
        profile: str,
        config: SkinnerConfig | None,
        threads: int,
        forced_order: Sequence[str] | None,
        use_result_cache: bool,
        weight: float,
        priority: int,
        stream: bool = True,
    ) -> SubmitHandle:
        data = self._channel.request(
            "submit",
            sql=self._sql_text(operation),
            params=self._wire_params(parameters),
            engine=engine,
            profile=profile,
            config=self._wire_config(config),
            threads=threads,
            forced_order=list(forced_order) if forced_order is not None else None,
            use_result_cache=use_result_cache,
            weight=weight,
            priority=priority,
            stream=stream,
        )
        return SubmitHandle(int(data["ticket"]), tuple(data["columns"]))

    def fetch(self, ticket: int, max_rows: int | None) -> list[tuple[Any, ...]]:
        data = self._channel.request("fetch", ticket=ticket, max_rows=max_rows)
        return [tuple(row) for row in data["rows"]]

    def poll(self, ticket: int) -> dict[str, Any]:
        return self._channel.request("poll", ticket=ticket)

    def result(self, ticket: int) -> QueryResult:
        return result_from_wire(self._channel.request("result", ticket=ticket))

    def cancel(self, ticket: int) -> bool:
        return bool(self._channel.request("cancel", ticket=ticket).get("cancelled"))

    def forget(self, ticket: int) -> bool:
        return bool(self._channel.request("forget", ticket=ticket).get("forgotten"))

    def execute(
        self,
        operation: str | Any,
        parameters: Sequence[Any] | Mapping[str, Any] | None,
        *,
        engine: str,
        profile: str,
        config: SkinnerConfig | None,
        threads: int,
        forced_order: Sequence[str] | None,
        use_result_cache: bool,
    ) -> QueryResult:
        handle = self.submit(
            operation,
            parameters,
            engine=engine,
            profile=profile,
            config=config,
            threads=threads,
            forced_order=forced_order,
            use_result_cache=use_result_cache,
            weight=1.0,
            priority=0,
            stream=False,
        )
        try:
            return self.result(handle.ticket)
        finally:
            try:
                self.forget(handle.ticket)
            except OperationalError:
                pass  # the wire died after the result round trip

    # ------------------------------------------------------------------
    # schema and transactions
    # ------------------------------------------------------------------
    def _ship_table(self, table: Table, *, replace: bool) -> None:
        columns = {
            name: table.column(name).values() for name in table.column_names
        }
        self._channel.request(
            "create_table", name=table.name, columns=columns, replace=replace
        )

    def create_table(
        self, name: str, columns: Mapping[str, Sequence[Any]], *, replace: bool
    ) -> Table:
        table = Table(name, {key: list(values) for key, values in columns.items()})
        self._ship_table(table, replace=replace)
        return table

    def add_table(self, table: Table, *, replace: bool) -> None:
        self._ship_table(table, replace=replace)

    def drop_table(self, name: str) -> None:
        self._channel.request("drop_table", name=name)

    def load_csv(
        self, path: str | Path, table_name: str | None, *, replace: bool
    ) -> Table:
        table = _load_csv_file(path, table_name)
        self._ship_table(table, replace=replace)
        return table

    def register_udf(
        self,
        name: str,
        function: Callable[..., Any],
        *,
        cost: int,
        selectivity_hint: float,
        replace: bool,
    ) -> None:
        raise InterfaceError(
            "Python UDFs cannot be registered over a remote connection; "
            "register them on the server's own connection"
        )

    def commit(self) -> None:
        self._channel.request("commit")

    def rollback(self) -> None:
        if not self._channel.closed:
            self._channel.request("rollback")

    # ------------------------------------------------------------------
    # lifecycle and health
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        return self._channel.request("stats")

    def set_tenant_quota(self, tenant: str, share: float) -> None:
        """Set a tenant's quota share on the server (admin verb)."""
        self._channel.request("set_quota", tenant=tenant, share=share)

    def close(self) -> None:
        self._channel.close()
