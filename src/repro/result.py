"""Query results and execution metrics shared by every engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engine.meter import WorkBreakdown
from repro.engine.profiles import EngineProfile
from repro.storage.table import Table


@dataclass
class QueryMetrics:
    """What an engine reports about one query execution.

    Attributes
    ----------
    engine:
        Engine name (``skinner-c``, ``traditional(postgres)``, ...).
    work:
        Work-unit breakdown charged during execution (join phase plus
        pre/post-processing).
    simulated_time:
        Weighted work under the engine's profile (abstract milliseconds) —
        the repository's substitute for wall-clock time, see DESIGN.md §1.
    wall_time_seconds:
        Actual Python wall-clock time, recorded for reference only.
    intermediate_cardinality:
        Total intermediate-result tuples produced by the executed plan(s);
        the engine-independent join-order-quality metric of Tables 1 and 2.
    result_rows:
        Number of rows in the final result.
    final_join_order:
        For learning engines, the join order considered best at the end.
    time_slices:
        Number of time slices / iterations executed (learning engines).
    uct_nodes, tracker_nodes, result_tuple_count:
        Memory-related counters used by Figure 8.
    extra:
        Engine-specific details (timeout levels used, re-optimization count,
        ablation flags, ...).
    """

    engine: str
    work: WorkBreakdown = field(default_factory=WorkBreakdown)
    simulated_time: float = 0.0
    wall_time_seconds: float = 0.0
    intermediate_cardinality: int = 0
    result_rows: int = 0
    final_join_order: tuple[str, ...] | None = None
    time_slices: int = 0
    uct_nodes: int = 0
    tracker_nodes: int = 0
    result_tuple_count: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line human-readable summary."""
        order = " ".join(self.final_join_order) if self.final_join_order else "-"
        return (
            f"{self.engine}: time={self.simulated_time:.1f} "
            f"card={self.intermediate_cardinality} rows={self.result_rows} order=[{order}]"
        )


@dataclass
class QueryResult:
    """A result table together with the metrics of producing it."""

    table: Table
    metrics: QueryMetrics

    @property
    def rows(self) -> list[dict[str, Any]]:
        """Result rows as dictionaries (decoded values)."""
        return self.table.rows()

    def __len__(self) -> int:
        return self.table.num_rows


def simulate_time(
    profile: EngineProfile, work: WorkBreakdown, *, threads: int = 1
) -> float:
    """Convenience wrapper converting work units to simulated time."""
    return profile.simulated_time(work, threads=threads)
