"""Hash indexes mapping column values to sorted row positions.

Two consumers rely on these indexes:

* the traditional executor's hash-join operator, which probes the index of
  the inner table for each outer value, and
* Skinner-C's multi-way join, which uses :meth:`HashIndex.next_position` to
  "jump" the tuple index of a table directly to the next row satisfying all
  applicable equality predicates (paper §4.5, last paragraph).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.storage.column import Column

_EMPTY = np.empty(0, dtype=np.int64)


class HashIndex:
    """Hash index over a single column.

    The index maps each physical column value (dictionary code for strings)
    to the ascending array of row positions holding that value.
    """

    def __init__(self, column: Column) -> None:
        self._column = column
        buckets: dict[Any, list[int]] = {}
        data = column.data
        for position in range(len(column)):
            buckets.setdefault(data[position].item(), []).append(position)
        self._buckets: dict[Any, np.ndarray] = {
            value: np.asarray(positions, dtype=np.int64)
            for value, positions in buckets.items()
        }

    @property
    def column(self) -> Column:
        """The indexed column."""
        return self._column

    def __len__(self) -> int:
        return len(self._buckets)

    def positions(self, value: Any, *, encoded: bool = False) -> np.ndarray:
        """Row positions whose column value equals ``value``.

        Parameters
        ----------
        value:
            The lookup key.  By default it is a decoded (user-level) value and
            is translated via :meth:`Column.encode`; pass ``encoded=True`` when
            the caller already holds a physical value (e.g. taken from another
            column's ``data`` array during a join).
        """
        key = value if encoded else self._column.encode(value)
        if hasattr(key, "item"):
            key = key.item()
        return self._buckets.get(key, _EMPTY)

    def next_position(self, value: Any, min_position: int, *, encoded: bool = True) -> int | None:
        """Smallest row position ``>= min_position`` holding ``value``.

        Returns ``None`` if no such row exists.  This is the "jump" primitive
        used by the hash-accelerated multi-way join: instead of advancing the
        tuple index one row at a time, Skinner-C jumps to the next row that
        can satisfy the applicable equality predicates.
        """
        positions = self.positions(value, encoded=encoded)
        if positions.shape[0] == 0:
            return None
        i = int(np.searchsorted(positions, min_position, side="left"))
        if i >= positions.shape[0]:
            return None
        return int(positions[i])

    def count(self, value: Any, *, encoded: bool = False) -> int:
        """Number of rows holding ``value``."""
        return int(self.positions(value, encoded=encoded).shape[0])
