"""The catalog: the set of tables known to a database instance."""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.errors import CatalogError
from repro.storage.buffer import BufferManager, InMemoryBufferManager
from repro.storage.index import HashIndex
from repro.storage.table import Table


class Catalog:
    """Registry of tables and their hash indexes.

    The catalog deliberately stores *no statistics*: statistics live in
    :mod:`repro.optimizer.statistics` and are only consulted by the
    traditional optimizer baselines, never by the Skinner strategies
    (SkinnerDB "maintains no data statistics", paper §1).

    *Where* tables physically live — RAM arrays or memory-mapped files
    under a ``data_dir`` — is the buffer manager's business: the catalog
    forwards every state transition (registration, drops, transaction
    marks, commits) to it and keeps only the name-to-table mapping.  With
    a durable backend, :meth:`bootstrap`-recovered tables appear here on
    construction and :meth:`commit` makes mutations survive the process.
    """

    def __init__(self, buffer_manager: BufferManager | None = None) -> None:
        self._buffer = buffer_manager if buffer_manager is not None else InMemoryBufferManager()
        self._tables: dict[str, Table] = self._buffer.bootstrap()
        self._indexes: dict[tuple[str, str], HashIndex] = {}

    @property
    def buffer_manager(self) -> BufferManager:
        """The storage backend serving this catalog's tables."""
        return self._buffer

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def add_table(self, table: Table, *, replace: bool = False) -> None:
        """Register a table; raises if the name exists unless ``replace``."""
        if table.name in self._tables and not replace:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = self._buffer.register_table(table, replace=replace)
        self._indexes = {
            key: index for key, index in self._indexes.items() if key[0] != table.name
        }

    def drop_table(self, name: str) -> None:
        """Remove a table and its indexes."""
        if name not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        self._buffer.drop_table(name)
        del self._tables[name]
        self._indexes = {key: index for key, index in self._indexes.items() if key[0] != name}

    def table(self, name: str) -> Table:
        """Return a table by name."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise CatalogError(f"table {name!r} does not exist") from exc

    def has_table(self, name: str) -> bool:
        """Whether a table with this name is registered."""
        return name in self._tables

    def table_names(self) -> list[str]:
        """All registered table names."""
        return list(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    # ------------------------------------------------------------------
    # ingest fingerprints (idempotent load_csv)
    # ------------------------------------------------------------------
    def record_ingest(self, name: str, fingerprint: str) -> None:
        """Remember the source-file fingerprint behind an ingested table."""
        self._buffer.record_ingest(name, fingerprint)

    def ingest_fingerprint(self, name: str) -> str | None:
        """The recorded ingest fingerprint of a table, if any."""
        return self._buffer.ingest_fingerprint(name)

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def build_index(self, table_name: str, column_name: str) -> HashIndex:
        """Build (or fetch a cached) hash index on ``table.column``."""
        key = (table_name, column_name)
        if key not in self._indexes:
            column = self.table(table_name).column(column_name)
            self._indexes[key] = HashIndex(column)
        return self._indexes[key]

    def index(self, table_name: str, column_name: str) -> HashIndex | None:
        """Return an existing index or ``None``."""
        return self._indexes.get((table_name, column_name))

    def index_count(self) -> int:
        """Number of materialized hash indexes."""
        return len(self._indexes)

    # ------------------------------------------------------------------
    # snapshots (schema transactions)
    # ------------------------------------------------------------------
    def snapshot(self) -> Any:
        """An opaque restorable mark of the current schema state.

        The in-memory backend returns a shallow copy of the name-to-table
        mapping (tables are immutable, so that captures the full state);
        the durable backend returns a write-ahead-log byte offset, so no
        state is copied at all.  The PEP 249 connection takes one at the
        first mutation of a transaction and rolls back to it via
        :meth:`restore`.
        """
        return self._buffer.snapshot(self._tables)

    def restore(self, snapshot: Any) -> None:
        """Reset the catalog to a previously taken :meth:`snapshot`.

        All materialized indexes are dropped: an index built between
        snapshot and restore may describe a table object the rollback just
        discarded, and indexes are pure caches that rebuild on demand.
        """
        self._tables = self._buffer.restore(snapshot)
        self._indexes = {}

    def commit(self) -> None:
        """Make every mutation since the last commit durable."""
        self._buffer.commit()

    def close(self) -> None:
        """Release the storage backend (checkpoint + close handles)."""
        self._buffer.close()
