"""Column-store storage substrate.

This package provides the minimal in-memory column store that every engine
in the repository (traditional executor, Skinner variants, Eddies, ...) runs
on top of:

* :class:`~repro.storage.column.Column` — a typed, immutable column holding
  64-bit integers, floats, or dictionary-encoded strings.
* :class:`~repro.storage.table.Table` — a named collection of equal-length
  columns.
* :class:`~repro.storage.index.HashIndex` — a hash index from column value to
  the sorted row positions holding that value; used both by the traditional
  hash-join operators and by Skinner-C's hash-jump multi-way join.
* :class:`~repro.storage.catalog.Catalog` — the set of tables known to a
  database instance.
* :mod:`~repro.storage.loader` — CSV import/export helpers.
"""

from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType
from repro.storage.index import HashIndex
from repro.storage.loader import load_csv, save_csv
from repro.storage.table import Table

__all__ = [
    "Catalog",
    "Column",
    "ColumnType",
    "HashIndex",
    "Table",
    "load_csv",
    "save_csv",
]
