"""Column-store storage substrate.

This package provides the column store that every engine in the repository
(traditional executor, Skinner variants, Eddies, ...) runs on top of:

* :class:`~repro.storage.column.Column` — a typed, immutable column holding
  64-bit integers, floats, or dictionary-encoded strings.
* :class:`~repro.storage.table.Table` — a named collection of equal-length
  columns.
* :class:`~repro.storage.index.HashIndex` — a hash index from column value to
  the sorted row positions holding that value; used both by the traditional
  hash-join operators and by Skinner-C's hash-jump multi-way join.
* :class:`~repro.storage.catalog.Catalog` — the set of tables known to a
  database instance.
* :class:`~repro.storage.buffer.BufferManager` — where those tables
  physically live: :class:`~repro.storage.buffer.InMemoryBufferManager`
  keeps the historical RAM-resident semantics, while
  :class:`~repro.storage.durable.DurableBufferManager` persists columns as
  memory-mapped files under a ``data_dir`` with a JSON catalog and a
  write-ahead log (see ``docs/storage.md``).
* :mod:`~repro.storage.loader` — CSV import/export helpers.
"""

from repro.storage.buffer import BufferManager, ColumnSource, InMemoryBufferManager, PageCache
from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType
from repro.storage.durable import DurableBufferManager
from repro.storage.index import HashIndex
from repro.storage.loader import file_fingerprint, load_csv, parse_count, save_csv
from repro.storage.table import Table
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BufferManager",
    "Catalog",
    "Column",
    "ColumnSource",
    "ColumnType",
    "DurableBufferManager",
    "HashIndex",
    "InMemoryBufferManager",
    "PageCache",
    "Table",
    "WriteAheadLog",
    "file_fingerprint",
    "load_csv",
    "parse_count",
    "save_csv",
]
