"""A record-structured write-ahead log for the durable storage backend.

The log is an append-only file of self-describing records.  Each record is
framed as an 8-byte header — little-endian ``(payload_length, crc32)`` —
followed by a UTF-8 JSON payload.  The CRC covers the payload bytes, so a
torn write (process killed mid-append, disk full) is detected as a framing
or checksum violation and everything from the damaged record onwards is
discarded on replay.  This is exactly the classical ARIES-style contract
the recovery protocol in ``docs/storage.md`` relies on:

* mutation records (``add_table`` / ``drop_table`` / ``ingest``) are
  appended — and flushed to the OS — *before* the in-memory catalog state
  changes;
* a ``commit`` record is appended with an ``fsync`` when the transaction
  commits, making everything before it durable;
* on open, records are replayed **up to the last commit record**; any tail
  after it (an uncommitted transaction, or garbage from a torn write) is
  ignored and truncated away by the next checkpoint.

The log stores only *metadata* (schemas, file locators, fingerprints) —
column payloads live in their own memory-mapped files, written and fsynced
before the record that references them is appended (the usual
data-before-log-pointer ordering for out-of-line payloads).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any

#: Record header: payload byte length + CRC32 of the payload bytes.
RECORD_HEADER = struct.Struct("<II")

#: The record terminating a transaction; everything before the last one of
#: these is durable, everything after it is discarded on replay.
COMMIT_OP = "commit"


class WriteAheadLog:
    """Append-only record log with torn-tail detection.

    One instance owns one log file.  Appends go through a single handle
    opened lazily in append mode and flushed per record (so a concurrent
    :meth:`read_records` — e.g. a rollback rebuilding state — observes every
    record written so far); ``fsync`` happens only on :meth:`commit`, which
    is what makes commits the durability boundary.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._file: Any = None
        #: Records appended since the last commit record (or open).
        self._uncommitted = 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _handle(self):
        if self._file is None:
            self._file = open(self._path, "ab")
        return self._file

    def append(self, record: dict[str, Any], *, sync: bool = False) -> int:
        """Append one record; returns the log size after the append.

        The record is flushed to the OS (visible to readers, survives the
        *process* dying) but only fsynced — durable against the *machine*
        dying — when ``sync`` is true.
        """
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        header = RECORD_HEADER.pack(len(payload), zlib.crc32(payload))
        handle = self._handle()
        handle.write(header + payload)
        handle.flush()
        if sync:
            os.fsync(handle.fileno())
        if record.get("op") == COMMIT_OP:
            self._uncommitted = 0
        else:
            self._uncommitted += 1
        return handle.tell()

    def commit(self) -> int:
        """Append a fsynced commit record (the durability boundary)."""
        return self.append({"op": COMMIT_OP}, sync=True)

    @property
    def uncommitted_records(self) -> int:
        """Records appended since the last commit (this handle's view)."""
        return self._uncommitted

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Current log size in bytes (the snapshot mark for rollbacks)."""
        if self._file is not None:
            return self._file.tell()
        try:
            return self._path.stat().st_size
        except FileNotFoundError:
            return 0

    def read_records(self) -> tuple[list[tuple[int, dict[str, Any]]], bool]:
        """All well-formed records as ``(end_offset, record)`` pairs.

        Returns ``(records, clean)`` where ``clean`` is false when the file
        ends in a torn or corrupt record (which is then excluded, along with
        everything after it).
        """
        try:
            raw = self._path.read_bytes()
        except FileNotFoundError:
            return [], True
        records: list[tuple[int, dict[str, Any]]] = []
        offset = 0
        while offset < len(raw):
            if offset + RECORD_HEADER.size > len(raw):
                return records, False
            length, crc = RECORD_HEADER.unpack_from(raw, offset)
            start = offset + RECORD_HEADER.size
            end = start + length
            if end > len(raw):
                return records, False
            payload = raw[start:end]
            if zlib.crc32(payload) != crc:
                return records, False
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                return records, False
            if not isinstance(record, dict):
                return records, False
            records.append((end, record))
            offset = end
        return records, True

    @staticmethod
    def committed_prefix(
        records: list[tuple[int, dict[str, Any]]],
    ) -> list[dict[str, Any]]:
        """The records of completed transactions: up to the last commit.

        Commit markers themselves are filtered out — callers get exactly the
        mutation records that must be replayed onto the checkpoint state.
        """
        last_commit = -1
        for i, (_, record) in enumerate(records):
            if record.get("op") == COMMIT_OP:
                last_commit = i
        return [
            record
            for _, record in records[: last_commit + 1]
            if record.get("op") != COMMIT_OP
        ]

    # ------------------------------------------------------------------
    # rollback / checkpoint
    # ------------------------------------------------------------------
    def truncate(self, offset: int) -> None:
        """Cut the log back to ``offset`` bytes (rollback to a mark)."""
        self.close()
        if self._path.exists():
            with open(self._path, "r+b") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())
        self._uncommitted = 0

    def reset(self) -> None:
        """Empty the log (after a checkpoint made its contents redundant)."""
        self.truncate(0)

    def close(self) -> None:
        """Close the append handle (reopened lazily on the next append)."""
        if self._file is not None:
            self._file.close()
            self._file = None
