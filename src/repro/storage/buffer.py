"""Buffer managers: the storage substrate behind the catalog.

Every engine in the repository reads base-table columns through
:class:`~repro.storage.column.Column` objects registered in a
:class:`~repro.storage.catalog.Catalog`.  The catalog in turn delegates
*where those columns physically live* to a :class:`BufferManager`:

* :class:`InMemoryBufferManager` — the historical behavior and the A/B
  reference: columns are plain in-process numpy arrays, nothing survives
  the process, snapshots are shallow dictionary copies.
* :class:`~repro.storage.durable.DurableBufferManager` — columns persist
  as memory-mapped files under a ``data_dir`` with a JSON catalog and a
  write-ahead log; physical arrays are served lazily through a bounded
  :class:`PageCache`, and snapshots/restores are WAL marks instead of
  copies.

The execution layers never see the difference: rows and meter charges are
byte-identical across backends (property-tested like ``join_mode`` and
``batch_size`` before them), which is what makes the substrate swappable
without the engines noticing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    from repro.storage.table import Table


@dataclass(frozen=True)
class ColumnSource:
    """Locator of one column's persistent physical representation.

    Durable-backed columns carry one of these (``Column.source``); the
    morsel-parallel executor uses it to hand workers a *file path* instead
    of copying the array into shared memory, and the buffer manager uses it
    as the page-cache key.
    """

    path: str
    dtype: str
    length: int
    dictionary_path: str | None = None


class PageCache:
    """A bounded LRU cache of materialized column arrays.

    The durable backend serves every physical-array access through one of
    these: a hit returns the already-mapped array, a miss opens the memmap
    (and may evict least-recently-used entries to stay under the byte
    capacity).  Eviction statistics are exposed for tests and capacity
    tuning — an eviction storm on a hot query means ``buffer_pool_bytes``
    is too small for the working set.
    """

    def __init__(self, capacity_bytes: int) -> None:
        self._capacity = max(0, int(capacity_bytes))
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str, loader: Callable[[], np.ndarray]) -> np.ndarray:
        """The cached array for ``key``, loading (and caching) on a miss."""
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        array = loader()
        self._entries[key] = array
        self._bytes += int(array.nbytes)
        self._evict()
        return array

    def _evict(self) -> None:
        while self._bytes > self._capacity and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= int(evicted.nbytes)
            self.evictions += 1

    def invalidate(self, key: str) -> None:
        """Drop one entry (e.g. its backing file was checkpointed away)."""
        dropped = self._entries.pop(key, None)
        if dropped is not None:
            self._bytes -= int(dropped.nbytes)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()
        self._bytes = 0

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters and current occupancy."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "cached_bytes": self._bytes,
            "capacity_bytes": self._capacity,
        }


class BufferManager(ABC):
    """Where a catalog's tables physically live.

    The catalog forwards every state transition here — registration, drops,
    ingest fingerprints, transaction boundaries — and keeps only the
    name-to-:class:`~repro.storage.table.Table` mapping itself.  A backend
    may rewrite registered tables (the durable one re-wraps columns as
    lazily materialized memmap views), which is why :meth:`register_table`
    returns the table the catalog must actually expose.
    """

    #: Whether tables survive the process (drives ``Connection.info()``).
    durable: bool = False

    @property
    def data_dir(self) -> Path | None:
        """Root directory of persistent state (``None`` when in-memory)."""
        return None

    @abstractmethod
    def bootstrap(self) -> dict[str, Table]:
        """Open (and, if durable, recover) the stored tables."""

    @abstractmethod
    def register_table(self, table: Table, *, replace: bool = False) -> Table:
        """Persist a table's columns; returns the table to register."""

    @abstractmethod
    def drop_table(self, name: str) -> None:
        """Record a table drop."""

    @abstractmethod
    def record_ingest(self, name: str, fingerprint: str) -> None:
        """Remember the source fingerprint of an ingested table."""

    @abstractmethod
    def ingest_fingerprint(self, name: str) -> str | None:
        """The recorded ingest fingerprint of a table, if any."""

    @abstractmethod
    def snapshot(self, tables: dict[str, Table]) -> Any:
        """An opaque restorable mark of the current schema state."""

    @abstractmethod
    def restore(self, token: Any) -> dict[str, Table]:
        """Roll state back to a :meth:`snapshot` mark; returns the tables."""

    @abstractmethod
    def commit(self) -> None:
        """Make every mutation since the last commit durable."""

    def cache_stats(self) -> dict[str, int] | None:
        """Page-cache statistics (``None`` for backends without one)."""
        return None

    def close(self) -> None:
        """Release backend resources (checkpoint, close handles)."""


class InMemoryBufferManager(BufferManager):
    """The historical RAM-resident backend (and the A/B reference).

    Tables are whatever :class:`~repro.storage.table.Table` objects the
    caller registered; snapshots are shallow copies (tables are immutable,
    so a copied name map captures the full state); commits are no-ops
    because nothing outlives the process.
    """

    durable = False

    def __init__(self) -> None:
        self._ingests: dict[str, str] = {}

    def bootstrap(self) -> dict[str, Table]:
        return {}

    def register_table(self, table: Table, *, replace: bool = False) -> Table:
        return table

    def drop_table(self, name: str) -> None:
        self._ingests.pop(name, None)

    def record_ingest(self, name: str, fingerprint: str) -> None:
        self._ingests[name] = fingerprint

    def ingest_fingerprint(self, name: str) -> str | None:
        return self._ingests.get(name)

    def snapshot(self, tables: dict[str, Table]) -> Any:
        return (dict(tables), dict(self._ingests))

    def restore(self, token: Any) -> dict[str, Table]:
        tables, ingests = token
        self._ingests = dict(ingests)
        return dict(tables)

    def commit(self) -> None:
        pass
