"""Tables: named, equal-length collections of columns."""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import CatalogError, SchemaError
from repro.storage.column import Column, ColumnType


class Table:
    """An immutable in-memory table.

    Parameters
    ----------
    name:
        Table name as referenced in queries.
    columns:
        Mapping from column name to :class:`Column` (or raw value sequences,
        which are wrapped).  All columns must have the same length.
    """

    def __init__(self, name: str, columns: Mapping[str, Column | Sequence[Any]]) -> None:
        self.name = name
        self._columns: dict[str, Column] = {}
        length: int | None = None
        for col_name, col in columns.items():
            if not isinstance(col, Column):
                col = Column(col)
            if length is None:
                length = len(col)
            elif len(col) != length:
                raise SchemaError(
                    f"column {col_name!r} of table {name!r} has length {len(col)}, "
                    f"expected {length}"
                )
            self._columns[col_name] = col
        self._num_rows = length or 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        name: str,
        column_names: Sequence[str],
        rows: Iterable[Sequence[Any]],
    ) -> "Table":
        """Build a table from an iterable of row tuples."""
        rows = list(rows)
        columns = {
            col_name: [row[i] for row in rows] for i, col_name in enumerate(column_names)
        }
        return cls(name, columns)

    def renamed(self, new_name: str) -> "Table":
        """Return a view of this table under a different name (for aliases)."""
        return Table(new_name, self._columns)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return list(self._columns)

    def column(self, name: str) -> Column:
        """Return a column by name."""
        try:
            return self._columns[name]
        except KeyError as exc:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from exc

    def has_column(self, name: str) -> bool:
        """Whether the table defines a column called ``name``."""
        return name in self._columns

    def __len__(self) -> int:
        return self._num_rows

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self._num_rows}, cols={self.column_names})"

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def row(self, position: int) -> dict[str, Any]:
        """Return one row as a dict of decoded values."""
        return {name: col.value(position) for name, col in self._columns.items()}

    def rows(self) -> list[dict[str, Any]]:
        """Return all rows (decoded); intended for small tables and tests."""
        return [self.row(i) for i in range(self._num_rows)]

    # ------------------------------------------------------------------
    # bulk operations
    # ------------------------------------------------------------------
    def select(self, positions: np.ndarray | Sequence[int]) -> "Table":
        """Return a new table containing only the given row positions."""
        positions = np.asarray(positions, dtype=np.int64)
        return Table(self.name, {name: col.take(positions) for name, col in self._columns.items()})

    def filter_mask(self, mask: np.ndarray) -> "Table":
        """Return a new table containing rows where ``mask`` is True."""
        if mask.shape[0] != self._num_rows:
            raise SchemaError("filter mask has wrong length")
        return self.select(np.flatnonzero(mask))

    def column_types(self) -> dict[str, ColumnType]:
        """Mapping from column name to its logical type."""
        return {name: col.ctype for name, col in self._columns.items()}
