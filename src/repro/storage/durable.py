"""The durable buffer manager: memory-mapped columns, catalog, and WAL.

On-disk layout under ``data_dir`` (full format in ``docs/storage.md``)::

    data_dir/
      catalog.json     # checkpoint: schemas, column locators, fingerprints
      wal.log          # record-structured WAL since the last checkpoint
      cols/
        <table>-<generation>.<column>.arr    # raw little-endian int64/float64
        <table>-<generation>.<column>.dict   # JSON string dictionary sidecar

Column payloads are written (and fsynced) *before* the WAL record that
references them, WAL commit records are fsynced, and ``catalog.json`` is
replaced atomically at checkpoints — so a process killed at any instant
reopens to exactly the last committed transaction:

1. load ``catalog.json`` (the checkpoint state);
2. replay the WAL's committed prefix on top of it; discard any tail after
   the last commit record (an uncommitted transaction or a torn write);
3. checkpoint the recovered state, truncate the WAL, and delete column
   files no table references anymore (payloads of rolled-back or replaced
   generations).

Physical arrays are served through a bounded :class:`~repro.storage.buffer.
PageCache` of ``np.memmap`` views, so the working set — not the dataset —
must fit the buffer pool; a fresh process answers its first query without
re-parsing CSVs (ingest fingerprints make ``load_csv`` idempotent).
Snapshots for schema transactions are WAL byte offsets: rollback truncates
the log to the mark and rebuilds state by replaying it, instead of deep
copies.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import InterfaceError, SchemaError
from repro.storage.buffer import BufferManager, ColumnSource, PageCache
from repro.storage.column import Column, ColumnType
from repro.storage.table import Table
from repro.storage.wal import WriteAheadLog

#: On-disk format version; bumped on layout changes.  Opening a data_dir
#: written by a different version fails fast instead of misreading it.
FORMAT_VERSION = 1

_CATALOG_FILE = "catalog.json"
_WAL_FILE = "wal.log"
_COLS_DIR = "cols"

#: Default checkpoint threshold: commit() folds the WAL into catalog.json
#: once the log outgrows this, bounding replay work on the next open.
_CHECKPOINT_BYTES = 4 * 2**20

_DTYPE_OF_CTYPE = {
    ColumnType.INT: "<i8",
    ColumnType.FLOAT: "<f8",
    ColumnType.STRING: "<i8",  # dictionary codes
}


class DurableBufferManager(BufferManager):
    """Columns as memmap files + JSON catalog + write-ahead log.

    Parameters
    ----------
    data_dir:
        Root directory; created (with parents) when missing.
    pool_bytes:
        Byte capacity of the page cache serving physical arrays.
    checkpoint_bytes:
        WAL size above which a commit also checkpoints.
    """

    durable = True

    def __init__(
        self,
        data_dir: str | Path,
        *,
        pool_bytes: int = 256 * 2**20,
        checkpoint_bytes: int = _CHECKPOINT_BYTES,
    ) -> None:
        self._dir = Path(data_dir)
        self._cache = PageCache(pool_bytes)
        self._checkpoint_bytes = checkpoint_bytes
        self._wal = WriteAheadLog(self._dir / _WAL_FILE)
        self._state: dict[str, Any] = {}
        self._generation = 0
        #: Facts about the last bootstrap, for tests and diagnostics.
        self.recovery_info: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # bootstrap / recovery
    # ------------------------------------------------------------------
    @property
    def data_dir(self) -> Path:
        return self._dir

    def bootstrap(self) -> dict[str, Table]:
        if self._dir.exists() and not self._dir.is_dir():
            raise InterfaceError(f"data_dir {str(self._dir)!r} is not a directory")
        (self._dir / _COLS_DIR).mkdir(parents=True, exist_ok=True)
        catalog_path = self._dir / _CATALOG_FILE
        if catalog_path.exists():
            try:
                state = json.loads(catalog_path.read_text())
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise InterfaceError(
                    f"data_dir {str(self._dir)!r} has a corrupt catalog.json"
                ) from exc
            version = state.get("format_version")
            if version != FORMAT_VERSION:
                raise InterfaceError(
                    f"data_dir {str(self._dir)!r} has format version {version!r}; "
                    f"this build reads version {FORMAT_VERSION}"
                )
            self._state = state
        else:
            self._state = _empty_state()
        records, clean = self._wal.read_records()
        committed = WriteAheadLog.committed_prefix(records)
        for record in committed:
            self._apply(record)
        self.recovery_info = {
            "replayed_records": len(committed),
            "discarded_records": len(records) - self._commit_marker_count(records)
            - len(committed),
            "torn_tail": not clean,
        }
        self._generation = self._max_generation() + 1
        # Fold the recovered state into a fresh checkpoint: the WAL empties,
        # and payload files of discarded (uncommitted / torn) transactions
        # are deleted.  Idempotent, so a clean open just rewrites the same
        # catalog.json.
        self._checkpoint()
        return self._build_tables()

    @staticmethod
    def _commit_marker_count(records: list[tuple[int, dict[str, Any]]]) -> int:
        return sum(1 for _, record in records if record.get("op") == "commit")

    def _max_generation(self) -> int:
        generations = [
            int(meta.get("generation", 0)) for meta in self._state["tables"].values()
        ]
        return max(generations, default=int(self._state.get("next_generation", 1)) - 1)

    def _apply(self, record: dict[str, Any]) -> None:
        """Apply one WAL mutation record to the in-memory state."""
        op = record.get("op")
        if op == "add_table":
            self._state["tables"][record["name"]] = record["meta"]
        elif op == "drop_table":
            self._state["tables"].pop(record["name"], None)
            self._state["ingests"].pop(record["name"], None)
        elif op == "ingest":
            self._state["ingests"][record["name"]] = record["fingerprint"]
        # Unknown ops are ignored: forward-compatible replay within one
        # format version.

    # ------------------------------------------------------------------
    # table materialization (lazy memmap views)
    # ------------------------------------------------------------------
    def _build_tables(self) -> dict[str, Table]:
        return {
            name: self._build_table(name, meta)
            for name, meta in self._state["tables"].items()
        }

    def _build_table(self, name: str, meta: dict[str, Any]) -> Table:
        columns: dict[str, Column] = {}
        for column_meta in meta["columns"]:
            columns[column_meta["name"]] = self._build_column(column_meta)
        return Table(name, columns)

    def _build_column(self, meta: dict[str, Any]) -> Column:
        ctype = ColumnType(meta["ctype"])
        source = ColumnSource(
            path=str(self._dir / meta["file"]),
            dtype=meta["dtype"],
            length=int(meta["length"]),
            dictionary_path=(
                str(self._dir / meta["dictionary_file"])
                if meta.get("dictionary_file")
                else None
            ),
        )
        fetch = lambda: self._cache.get(  # noqa: E731 - closure over source
            source.path, lambda: _open_array(source)
        )
        dictionary_fetch = (
            (lambda: _load_dictionary(source.dictionary_path))
            if source.dictionary_path is not None
            else None
        )
        return Column.lazy(
            ctype,
            source.length,
            fetch,
            dictionary_fetch=dictionary_fetch,
            source=source,
        )

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def register_table(self, table: Table, *, replace: bool = False) -> Table:
        """Write the table's columns to files and log the registration.

        The returned table's columns are lazily materialized memmap views
        served by the page cache — the caller's RAM-resident arrays become
        garbage once the caller drops them.
        """
        generation = self._generation
        self._generation += 1
        columns_meta: list[dict[str, Any]] = []
        for column_name in table.column_names:
            column = table.column(column_name)
            stem = f"{table.name}-{generation}.{column_name}"
            array_file = f"{_COLS_DIR}/{stem}.arr"
            _write_array(self._dir / array_file, column.data)
            dictionary_file = None
            if column.ctype is ColumnType.STRING:
                dictionary_file = f"{_COLS_DIR}/{stem}.dict"
                _write_json(self._dir / dictionary_file, column.dictionary)
            columns_meta.append({
                "name": column_name,
                "ctype": column.ctype.value,
                "dtype": _DTYPE_OF_CTYPE[column.ctype],
                "file": array_file,
                "length": len(column),
                "dictionary_file": dictionary_file,
            })
        meta = {
            "generation": generation,
            "rows": table.num_rows,
            "columns": columns_meta,
        }
        record = {"op": "add_table", "name": table.name, "replace": bool(replace),
                  "meta": meta}
        self._wal.append(record)
        self._apply(record)
        return self._build_table(table.name, meta)

    def drop_table(self, name: str) -> None:
        record = {"op": "drop_table", "name": name}
        self._wal.append(record)
        self._apply(record)

    def record_ingest(self, name: str, fingerprint: str) -> None:
        record = {"op": "ingest", "name": name, "fingerprint": fingerprint}
        self._wal.append(record)
        self._apply(record)

    def ingest_fingerprint(self, name: str) -> str | None:
        return self._state["ingests"].get(name)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def snapshot(self, tables: dict[str, Table]) -> Any:
        """A WAL byte-offset mark.

        Taken at the first mutation of a transaction, i.e. when every log
        record so far belongs to a committed transaction — rollback can
        therefore rebuild state by truncating to the mark and replaying
        everything that remains.
        """
        return ("wal", self._wal.size())

    def restore(self, token: Any) -> dict[str, Table]:
        kind, offset = token
        if kind != "wal":  # pragma: no cover - defensive
            raise SchemaError(f"not a durable snapshot token: {token!r}")
        self._wal.truncate(int(offset))
        catalog_path = self._dir / _CATALOG_FILE
        self._state = (
            json.loads(catalog_path.read_text())
            if catalog_path.exists()
            else _empty_state()
        )
        records, _ = self._wal.read_records()
        for _, record in records:
            self._apply(record)
        # Generations stay monotonic across rollbacks so a re-registered
        # table can never collide with an orphaned payload file that a
        # live column still maps.
        self._generation = max(self._generation, self._max_generation() + 1)
        return self._build_tables()

    def commit(self) -> None:
        """Fsync a commit record; checkpoint when the WAL has outgrown."""
        if self._wal.uncommitted_records == 0:
            return
        size = self._wal.commit()
        if size >= self._checkpoint_bytes:
            self._checkpoint()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _checkpoint(self) -> None:
        """Fold the committed state into catalog.json and empty the WAL.

        Must only run at a commit boundary (no uncommitted WAL tail) —
        otherwise uncommitted mutations would be promoted into the
        checkpoint.  Orphaned column files (rolled-back or replaced
        generations) are deleted afterwards.
        """
        assert self._wal.uncommitted_records == 0, "checkpoint inside a transaction"
        self._state["format_version"] = FORMAT_VERSION
        self._state["next_generation"] = self._generation
        catalog_path = self._dir / _CATALOG_FILE
        tmp_path = catalog_path.with_suffix(".json.tmp")
        with open(tmp_path, "w") as handle:
            json.dump(self._state, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, catalog_path)
        _fsync_dir(self._dir)
        self._wal.reset()
        self._remove_orphans()

    def _remove_orphans(self) -> None:
        referenced: set[str] = set()
        for meta in self._state["tables"].values():
            for column_meta in meta["columns"]:
                referenced.add(column_meta["file"])
                if column_meta.get("dictionary_file"):
                    referenced.add(column_meta["dictionary_file"])
        cols_dir = self._dir / _COLS_DIR
        for path in cols_dir.iterdir():
            relative = f"{_COLS_DIR}/{path.name}"
            if relative not in referenced:
                self._cache.invalidate(str(path))
                path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, int]:
        return self._cache.stats()

    def close(self) -> None:
        """Checkpoint (when clean) and release handles.

        With an uncommitted WAL tail — a caller closing mid-transaction —
        the checkpoint is skipped: the next open discards the tail, which
        is exactly the rollback the unfinished transaction deserves.
        """
        if self._wal.uncommitted_records == 0:
            self._checkpoint()
        self._wal.close()
        self._cache.clear()


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------
def _empty_state() -> dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "next_generation": 1,
        "tables": {},
        "ingests": {},
    }


def _write_array(path: Path, array: np.ndarray) -> None:
    """Write a flat array (fsynced — payloads precede their WAL record)."""
    with open(path, "wb") as handle:
        np.ascontiguousarray(array).tofile(handle)
        handle.flush()
        os.fsync(handle.fileno())


def _write_json(path: Path, value: Any) -> None:
    with open(path, "w") as handle:
        json.dump(value, handle)
        handle.flush()
        os.fsync(handle.fileno())


def _open_array(source: ColumnSource) -> np.ndarray:
    """Map one column file read-only (empty columns skip the mmap)."""
    if source.length == 0:
        return np.empty(0, dtype=np.dtype(source.dtype))
    return np.memmap(
        source.path, dtype=np.dtype(source.dtype), mode="r", shape=(source.length,)
    )


def _load_dictionary(path: str) -> list[str]:
    with open(path) as handle:
        return json.load(handle)


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform specific
        pass
    finally:
        os.close(fd)
