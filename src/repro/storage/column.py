"""Typed, immutable columns backed by numpy arrays.

SkinnerDB assumes a main-memory column store so that partial tuples can be
materialized lazily from tuple-index vectors (paper §4.5).  A column stores
either 64-bit integers, 64-bit floats, or dictionary-encoded strings.  String
columns keep an integer code per row plus a dictionary of distinct values,
which makes equality predicates and hash joins on strings as cheap as on
integers.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import SchemaError

if TYPE_CHECKING:
    from repro.storage.buffer import ColumnSource


class ColumnType(enum.Enum):
    """Logical type of a column."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"


class Column:
    """An immutable typed column.

    Parameters
    ----------
    values:
        Raw values.  Integers, floats, or strings; ``None`` is not supported
        (the benchmarks in the paper do not exercise NULL semantics).
    ctype:
        Optional explicit :class:`ColumnType`.  If omitted, the type is
        inferred from the values.
    """

    __slots__ = (
        "_ctype",
        "_data",
        "_dictionary",
        "_code_of",
        "_decoded",
        "_translations",
        "_fetch",
        "_dict_fetch",
        "_length",
        "source",
    )

    def __init__(self, values: Iterable[Any], ctype: ColumnType | None = None) -> None:
        values = list(values) if not isinstance(values, np.ndarray) else values
        if ctype is None:
            ctype = _infer_type(values)
        self._ctype = ctype
        self._dictionary: list[str] | None = None
        self._code_of: dict[str, int] | None = None
        self._decoded: np.ndarray | None = None
        self._translations: dict[int, tuple["Column", np.ndarray]] = {}
        self._fetch: Callable[[], np.ndarray] | None = None
        self._dict_fetch: Callable[[], list[str]] | None = None
        self.source: ColumnSource | None = None
        if ctype is ColumnType.INT:
            self._data = np.asarray(values, dtype=np.int64)
        elif ctype is ColumnType.FLOAT:
            self._data = np.asarray(values, dtype=np.float64)
        elif ctype is ColumnType.STRING:
            codes, dictionary, code_of = _encode_strings(values)
            self._data = codes
            self._dictionary = dictionary
            self._code_of = code_of
        else:  # pragma: no cover - exhaustive enum
            raise SchemaError(f"unknown column type {ctype!r}")
        self._length = int(self._data.shape[0])

    @classmethod
    def from_physical(
        cls,
        data: np.ndarray,
        ctype: ColumnType,
        dictionary: Sequence[str] | None = None,
    ) -> "Column":
        """Build a column directly from its physical representation.

        ``data`` is adopted as-is (int64/float64 values, or dictionary codes
        for strings together with the ``dictionary`` of distinct values).
        This is the reconstruction path of morsel workers, which receive the
        flat physical arrays through shared memory and the string
        dictionaries by value, and of :meth:`take` for numeric columns.
        """
        column = cls.__new__(cls)
        column._ctype = ctype
        column._data = data
        column._decoded = None
        column._translations = {}
        column._fetch = None
        column._dict_fetch = None
        column._length = int(data.shape[0])
        column.source = None
        if ctype is ColumnType.STRING:
            if dictionary is None:
                raise SchemaError("string columns need a dictionary")
            column._dictionary = list(dictionary)
            column._code_of = {value: i for i, value in enumerate(column._dictionary)}
        else:
            if dictionary is not None:
                raise SchemaError("only string columns have a dictionary")
            column._dictionary = None
            column._code_of = None
        return column

    @classmethod
    def lazy(
        cls,
        ctype: ColumnType,
        length: int,
        fetch: Callable[[], np.ndarray],
        *,
        dictionary_fetch: Callable[[], list[str]] | None = None,
        source: "ColumnSource | None" = None,
    ) -> "Column":
        """Build a column whose physical array is materialized on demand.

        ``fetch`` is called on *every* physical access and returns the
        array; the durable buffer manager routes it through its bounded
        page cache, so residency (and eviction) is governed there rather
        than pinned per column.  String columns load their dictionary once
        via ``dictionary_fetch`` (dictionaries are metadata-sized and are
        needed to plan predicates, so they stay resident).  ``source``
        carries the on-disk locator that lets morsel workers re-map the
        file instead of receiving a shared-memory copy.
        """
        if (dictionary_fetch is not None) != (ctype is ColumnType.STRING):
            raise SchemaError("dictionary_fetch is for (exactly) string columns")
        column = cls.__new__(cls)
        column._ctype = ctype
        column._data = None
        column._decoded = None
        column._translations = {}
        column._fetch = fetch
        column._dict_fetch = dictionary_fetch
        column._length = int(length)
        column.source = source
        column._dictionary = None
        column._code_of = None
        return column

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def ctype(self) -> ColumnType:
        """Logical type of this column."""
        return self._ctype

    @property
    def data(self) -> np.ndarray:
        """The physical numpy array (codes for string columns).

        Lazily-materialized columns fetch it through their buffer manager
        on every access — the page cache, not the column, decides how long
        the array stays resident.
        """
        if self._data is not None:
            return self._data
        assert self._fetch is not None
        return self._fetch()

    @property
    def decoded_data(self) -> np.ndarray:
        """Decoded values as an array, cached after the first access.

        Numeric columns return the physical array itself; string columns
        return an ``object`` array of Python strings (one dictionary gather,
        shared by every vectorized consumer), so elementwise comparisons and
        sorting keep exact Python semantics.
        """
        if self._ctype is not ColumnType.STRING:
            return self.data
        if self._decoded is None:
            self._decoded = np.asarray(self.dictionary, dtype=object)[self.data]
        return self._decoded

    @property
    def dictionary(self) -> list[str]:
        """Dictionary of a string column (distinct values, indexed by code)."""
        if self._dictionary is None and self._dict_fetch is not None:
            self._dictionary = self._dict_fetch()
        if self._dictionary is None:
            raise SchemaError("only string columns have a dictionary")
        return self._dictionary

    def _code_map(self) -> dict[str, int]:
        """Value-to-code map of a string column, built on first use."""
        if self._code_of is None:
            self._code_of = {value: i for i, value in enumerate(self.dictionary)}
        return self._code_of

    def __len__(self) -> int:
        return self._length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self._ctype is not other._ctype or len(self) != len(other):
            return False
        return all(self.value(i) == other.value(i) for i in range(len(self)))

    def __hash__(self) -> int:
        # Must agree with __eq__, which compares *decoded* values: integer
        # columns hash their physical bytes, but float columns go through
        # Python floats (0.0 == -0.0 yet their bytes differ) and string
        # columns through decoded values (equal columns may order their
        # dictionaries differently, giving different code arrays).
        if self._ctype is ColumnType.INT:
            return hash((self._ctype, self.data.tobytes()))
        return hash((self._ctype, tuple(self.values())))

    def __repr__(self) -> str:
        return f"Column({self._ctype.value}, n={len(self)})"

    # ------------------------------------------------------------------
    # value access
    # ------------------------------------------------------------------
    def value(self, row: int) -> Any:
        """Return the decoded value at ``row``."""
        raw = self.data[row]
        if self._ctype is ColumnType.STRING:
            return self.dictionary[int(raw)]
        if self._ctype is ColumnType.INT:
            return int(raw)
        return float(raw)

    def values(self) -> list[Any]:
        """Return all decoded values as a Python list."""
        data = self.data
        if self._ctype is ColumnType.STRING:
            dictionary = self.dictionary
            return [dictionary[int(code)] for code in data]
        if self._ctype is ColumnType.INT:
            return [int(v) for v in data]
        return [float(v) for v in data]

    def raw(self, row: int) -> Any:
        """Return the physical value at ``row`` (code for strings)."""
        return self.data[row]

    def encode(self, value: Any) -> Any:
        """Translate a literal into the physical domain of this column.

        For string columns this returns the dictionary code, or ``-1`` if the
        value does not occur in the column (no row can match equality then).
        Numeric columns return the value unchanged.
        """
        if self._ctype is ColumnType.STRING:
            if not isinstance(value, str):
                raise SchemaError(f"cannot compare string column with {value!r}")
            return self._code_map().get(value, -1)
        return value

    def translate_codes(self, other: "Column") -> np.ndarray:
        """Map ``other``'s dictionary codes into this column's code space.

        Returns an int64 array ``t`` such that ``t[c]`` is this column's
        dictionary code for ``other.dictionary[c]``, or ``len(self.dictionary)``
        (a sentinel no row of this column carries) when the value does not
        occur here.  The join kernel uses this to compare two dictionary-
        encoded string columns without decoding either side.

        The translation is cached per ``other`` column (both columns are
        immutable), so repeated joins over the same column pair pay the
        O(dictionary) construction only once.  The cache keeps a strong
        reference to ``other``, which pins its id and keeps the key valid.
        """
        if self._ctype is not ColumnType.STRING or other._ctype is not ColumnType.STRING:
            raise SchemaError("translate_codes requires two string columns")
        cached = self._translations.get(id(other))
        if cached is not None and cached[0] is other:
            return cached[1]
        sentinel = len(self.dictionary)
        code_of = self._code_map()
        translation = np.asarray(
            [code_of.get(value, sentinel) for value in other.dictionary],
            dtype=np.int64,
        )
        self._translations[id(other)] = (other, translation)
        return translation

    # ------------------------------------------------------------------
    # bulk operations
    # ------------------------------------------------------------------
    def take(self, positions: np.ndarray | Sequence[int]) -> "Column":
        """Return a new column restricted to ``positions`` (in that order)."""
        positions = np.asarray(positions, dtype=np.int64)
        data = self.data
        if self._ctype is ColumnType.STRING:
            dictionary = self.dictionary
            values = [dictionary[int(code)] for code in data[positions]]
            return Column(values, ColumnType.STRING)
        return Column.from_physical(np.asarray(data[positions]), self._ctype)

    def compare(self, op: str, literal: Any) -> np.ndarray:
        """Return a boolean mask of rows satisfying ``column <op> literal``.

        ``op`` is one of ``=, !=, <, <=, >, >=``.  Ordering comparisons on
        string columns are evaluated on decoded values.
        """
        if self._ctype is ColumnType.STRING and op not in ("=", "!="):
            decoded = np.asarray(self.values(), dtype=object)
            return _apply_comparison(decoded, op, literal)
        physical = self.encode(literal) if self._ctype is ColumnType.STRING else literal
        return _apply_comparison(self.data, op, physical)

    def isin(self, literals: Iterable[Any]) -> np.ndarray:
        """Return a boolean mask of rows whose value is in ``literals``."""
        if self._ctype is ColumnType.STRING:
            codes = [self.encode(v) for v in literals]
            return np.isin(self.data, [c for c in codes if c >= 0])
        return np.isin(self.data, list(literals))

    def distinct_count(self) -> int:
        """Number of distinct values in the column."""
        if self._ctype is ColumnType.STRING:
            return len(self.dictionary)
        return int(np.unique(self.data).shape[0])

    def min_max(self) -> tuple[Any, Any]:
        """Minimum and maximum decoded value (empty columns raise)."""
        if len(self) == 0:
            raise SchemaError("min_max of empty column")
        if self._ctype is ColumnType.STRING:
            values = self.values()
            return min(values), max(values)
        data = self.data
        return self.value(int(np.argmin(data))), self.value(int(np.argmax(data)))


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
_COMPARATORS = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _apply_comparison(data: np.ndarray, op: str, literal: Any) -> np.ndarray:
    try:
        fn = _COMPARATORS[op]
    except KeyError as exc:
        raise SchemaError(f"unsupported comparison operator {op!r}") from exc
    return np.asarray(fn(data, literal), dtype=bool)


def _infer_type(values: Sequence[Any] | np.ndarray) -> ColumnType:
    if isinstance(values, np.ndarray):
        if np.issubdtype(values.dtype, np.integer):
            return ColumnType.INT
        if np.issubdtype(values.dtype, np.floating):
            return ColumnType.FLOAT
        return ColumnType.STRING
    for value in values:
        if isinstance(value, bool):
            return ColumnType.INT
        if isinstance(value, str):
            return ColumnType.STRING
        if isinstance(value, float) and not float(value).is_integer():
            return ColumnType.FLOAT
        if isinstance(value, float):
            return ColumnType.FLOAT
    return ColumnType.INT


def _encode_strings(values: Sequence[Any]) -> tuple[np.ndarray, list[str], dict[str, int]]:
    dictionary: list[str] = []
    code_of: dict[str, int] = {}
    codes = np.empty(len(values), dtype=np.int64)
    for i, value in enumerate(values):
        if not isinstance(value, str):
            value = str(value)
        code = code_of.get(value)
        if code is None:
            code = len(dictionary)
            code_of[value] = code
            dictionary.append(value)
        codes[i] = code
    return codes, dictionary, code_of


def _from_physical(data: np.ndarray, ctype: ColumnType) -> Column:
    """Backwards-compatible alias of :meth:`Column.from_physical`."""
    return Column.from_physical(data, ctype)
