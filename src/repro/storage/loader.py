"""CSV import/export for tables.

The loaders are intentionally simple: comma-separated files with a header
row.  Column types are inferred (int, then float, then string) unless an
explicit schema is given.  They exist so that example scripts can persist
generated workloads and so users can load their own small datasets.
"""

from __future__ import annotations

import csv
import hashlib
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any

from repro.errors import SchemaError
from repro.storage.column import Column, ColumnType
from repro.storage.table import Table

#: Count of full CSV parses performed by this process.  Warm-start tests
#: and ``bench_cold_vs_warm_start`` assert on it: an idempotent re-ingest
#: (catalog fingerprint matches) must leave it unchanged.
_PARSE_COUNT = 0


def parse_count() -> int:
    """Number of CSV files fully parsed by this process so far."""
    return _PARSE_COUNT


def file_fingerprint(path: str | Path) -> str:
    """SHA-256 of a file's bytes — the identity key of idempotent ingest."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def load_csv(
    path: str | Path,
    table_name: str | None = None,
    schema: Mapping[str, ColumnType] | None = None,
) -> Table:
    """Load a CSV file (with header) into a :class:`Table`.

    Parameters
    ----------
    path:
        File to read.
    table_name:
        Name of the resulting table; defaults to the file stem.
    schema:
        Optional explicit column types.  Columns not listed are inferred.
    """
    global _PARSE_COUNT
    _PARSE_COUNT += 1
    path = Path(path)
    name = table_name or path.stem
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise SchemaError(f"CSV file {path} is empty") from exc
        raw_columns: dict[str, list[str]] = {column: [] for column in header}
        for row in reader:
            if len(row) != len(header):
                raise SchemaError(f"row {reader.line_num} of {path} has {len(row)} fields")
            for column, value in zip(header, row):
                raw_columns[column].append(value)
    columns: dict[str, Column] = {}
    for column, values in raw_columns.items():
        ctype = schema.get(column) if schema else None
        columns[column] = _build_column(values, ctype)
    return Table(name, columns)


def save_csv(table: Table, path: str | Path) -> None:
    """Write a table to a CSV file with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for position in range(table.num_rows):
            row = table.row(position)
            writer.writerow([row[column] for column in table.column_names])


def _build_column(values: Sequence[str], ctype: ColumnType | None) -> Column:
    if ctype is ColumnType.STRING:
        return Column(list(values), ColumnType.STRING)
    if ctype is ColumnType.INT:
        return Column([int(v) for v in values], ColumnType.INT)
    if ctype is ColumnType.FLOAT:
        return Column([float(v) for v in values], ColumnType.FLOAT)
    return Column(_infer_values(values))


def _infer_values(values: Sequence[str]) -> list[Any]:
    try:
        return [int(v) for v in values]
    except ValueError:
        pass
    try:
        return [float(v) for v in values]
    except ValueError:
        pass
    return list(values)
