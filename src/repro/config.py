"""Configuration objects for the Skinner execution strategies."""

from __future__ import annotations

from dataclasses import dataclass

from repro.uct.policy import DEFAULT_EXPLORATION_WEIGHT, SKINNER_C_EXPLORATION_WEIGHT


@dataclass(frozen=True)
class SkinnerConfig:
    """Tuning knobs shared by the Skinner variants.

    The defaults follow the paper's experimental setup (§6.1): Skinner-C uses
    a time-slice budget of 500 multi-way-join loop iterations and a tiny UCT
    exploration weight; Skinner-G/H use much larger per-batch budgets and the
    canonical ``sqrt(2)`` exploration weight.

    Attributes
    ----------
    slice_budget:
        Skinner-C: number of multi-way join loop iterations per time slice
        (the paper's ``b``).
    batch_size:
        Skinner-C: how many candidate tuple indices the multi-way join
        examines per vectorized batch.  ``1`` selects the scalar
        tuple-at-a-time executor (the pre-batching behavior, kept for A/B
        comparisons); larger values amortize interpreter overhead across
        NumPy operations.  Batches never exceed the remaining slice budget.
    exploration_weight:
        UCT exploration weight for Skinner-C.
    reward_function:
        ``"scaled_deltas"`` (the refined reward summing scaled tuple-index
        deltas) or ``"leftmost"`` (progress in the left-most table only, the
        simpler reward analyzed in §5).
    postprocess_mode:
        ``"columnar"`` (the default) runs projection, aggregation, DISTINCT,
        and ORDER BY as NumPy operations over the join result's row-id
        vectors; ``"rows"`` selects the tuple-at-a-time reference pipeline
        (the pre-vectorization behavior, kept for A/B comparisons).  Queries
        with UDF-bearing output expressions always use the row pipeline.
    join_mode:
        Hash-join implementation of the left-deep plan executor (used by
        Skinner-G/H and the baselines): ``"vectorized"`` (the default) runs
        the columnar build/probe kernel of
        :mod:`repro.engine.joinkernels`; ``"rows"`` selects the dict-based
        tuple-at-a-time reference path, kept for A/B comparisons.  Both
        modes produce byte-identical join results and meter charges.
    use_hash_jump:
        Whether Skinner-C jumps tuple indices via hash lookups for equality
        join predicates.
    share_progress:
        Whether execution state is shared between join orders with a common
        prefix via the progress tracker.
    use_offsets:
        Whether fully processed left-most tuples are excluded for all orders.
    batches_per_table:
        Skinner-G: number of batches each table is divided into.
    base_timeout:
        Skinner-G/H: work-unit budget of timeout level 0 (the paper's
        smallest timeout).
    generic_exploration_weight:
        UCT exploration weight for Skinner-G/H.
    order_selection:
        ``"uct"`` (learned) or ``"random"`` — the latter replaces
        reinforcement learning by uniform random join-order selection and is
        the ablation baseline of Table 5.
    seed:
        Seed for the pseudo-random choices of the UCT trees.
    serving_max_inflight:
        :class:`~repro.serving.server.QueryServer`: maximum number of
        queries executing concurrently (episode-interleaved); submissions
        beyond the bound wait in the admission queue.
    serving_quantum_episodes:
        Episodes a scheduled query runs per grant before the scheduler
        re-evaluates fair shares.  ``1`` is the fairest (and the default);
        larger values amortize switching overhead.
    serving_result_cache_size:
        Entries of the serving-level result cache (``0`` disables caching).
        Keys are normalized query fingerprints including engine, profile,
        and config, and the whole cache is invalidated on schema changes.
    serving_order_cache_size:
        Entries of the cross-query join-order prior cache (``0`` disables
        it), keyed on the join-graph signature.
    serving_warm_start:
        Whether new Skinner-C queries seed their UCT tree from join orders
        learned by earlier queries on the same join graph.
    serving_warm_start_visits:
        Pseudo-visits credited per seeded join order; small values let a
        stale prior decay quickly once real rewards arrive.
    serving_grant_wall_ms:
        Wall-clock budget of one scheduling grant in milliseconds, layered
        on top of the work-unit quantum: a grant ends after
        ``serving_quantum_episodes`` episodes *or* when the budget elapses,
        whichever comes first.  ``0`` (the default) disables the wall-clock
        bound, keeping grant boundaries a pure function of the
        deterministic work-unit clock.
    serving_tenant_backlog:
        Per-tenant backpressure bound of the network front door
        (:mod:`repro.net`): while a tenant has this many submissions not
        yet in a terminal state, the server stops reading that tenant's
        socket, so TCP flow control pushes back on the client.
    serving_limit_pushdown:
        Whether streamed plain select-project-join queries with a ``LIMIT``
        stop executing once the limit is reached: the session completes
        early with the first ``LIMIT`` rows in materialization order and
        releases its admission slot.  Disable to always run such queries to
        completion (the canonical row order the result cache stores).
    parallel_workers:
        Skinner-C: number of processes running morsel episodes for one
        query.  ``1`` (the default) keeps everything in-process.  Larger
        values shard the join into morsels executed on a shared worker pool
        with base columns in shared memory; results and meter charges are
        byte-identical for every worker count because the morsel plan
        depends only on the data and the morsel knobs, never on the pool
        size.  See ``docs/parallel.md``.
    parallel_morsels:
        Skinner-C: target number of morsels the partition alias (the
        largest filtered table) is split into.  Deliberately *not* derived
        from ``parallel_workers`` so the morsel plan — and therefore rows
        and charges — stays identical across worker counts.
    parallel_min_morsel_rows:
        Skinner-C: minimum filtered rows of the partition alias per morsel;
        queries too small to form at least two morsels of this size run
        single-process.
    parallel_start_method:
        ``multiprocessing`` start method of the worker pool (``"spawn"`` by
        default — the only method safe on every supported platform; the
        CI job forcing ``REPRO_PARALLEL_WORKERS=2`` guards exactly the
        spawn-vs-fork difference).
    data_dir:
        Root directory of durable storage.  ``None`` (the default) keeps
        the historical in-memory catalog; a path selects the
        :class:`~repro.storage.durable.DurableBufferManager` — columns
        persist as memory-mapped files, ``commit()`` survives restart, and
        a reopened connection recovers to the last committed transaction
        (see ``docs/storage.md``).  :func:`repro.api.connect` resolves its
        ``data_dir=`` keyword and the ``REPRO_DATA_DIR`` environment
        variable into this field, exactly like ``workers=`` into
        ``parallel_workers``.
    buffer_pool_bytes:
        Byte capacity of the durable backend's page cache — the bound on
        resident (memory-mapped) column arrays; least-recently-used
        columns are evicted beyond it.  Ignored by the in-memory backend,
        which by definition pins everything.
    default_engine:
        Engine used when a query names none explicitly (cursor ``execute``
        without ``engine=``, network submissions without an override).
        :func:`repro.api.connect` resolves its ``engine=`` keyword, the
        ``REPRO_ENGINE`` environment variable, and the DSN ``?engine=``
        parameter into this field — exactly like ``workers=`` into
        ``parallel_workers`` — and validates the name against the engine
        registry at connect time.
    """

    slice_budget: int = 500
    batch_size: int = 1024
    postprocess_mode: str = "columnar"
    join_mode: str = "vectorized"
    exploration_weight: float = SKINNER_C_EXPLORATION_WEIGHT
    reward_function: str = "scaled_deltas"
    use_hash_jump: bool = True
    share_progress: bool = True
    use_offsets: bool = True
    batches_per_table: int = 10
    base_timeout: int = 2_000
    generic_exploration_weight: float = DEFAULT_EXPLORATION_WEIGHT
    order_selection: str = "uct"
    seed: int | None = 42
    serving_max_inflight: int = 4
    serving_quantum_episodes: int = 1
    serving_result_cache_size: int = 64
    serving_order_cache_size: int = 128
    serving_warm_start: bool = True
    serving_warm_start_visits: int = 8
    serving_grant_wall_ms: float = 0.0
    serving_tenant_backlog: int = 8
    serving_limit_pushdown: bool = True
    parallel_workers: int = 1
    parallel_morsels: int = 8
    parallel_min_morsel_rows: int = 64
    parallel_start_method: str = "spawn"
    data_dir: str | None = None
    buffer_pool_bytes: int = 256 * 2**20
    default_engine: str = "skinner-c"

    def with_overrides(self, **kwargs) -> "SkinnerConfig":
        """Return a copy with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **kwargs)


DEFAULT_CONFIG = SkinnerConfig()
