"""Optimizer torture micro-benchmarks (appendix of the paper, after Wu et al.).

Three families of synthetic corner cases:

* **UDF Torture** — every join predicate is an opaque user-defined function.
  Exactly one of them (the "good" predicate) is never satisfied, so a plan
  that evaluates it early finishes immediately, while plans that defer it
  explode through always-true joins.  Chain and star join graphs.
* **Correlation Torture** — only standard equality/filter predicates, but
  column correlations make the single truly selective filter look *less*
  selective than the useless ones, so estimate-based optimizers defer it.
  Parameter ``m`` places the good table at the head or middle of the chain.
* **Trivial Optimization** — all join orders avoiding Cartesian products are
  equivalent; it measures the pure overhead of adaptive processing when
  optimization is not needed.

All generators return :class:`~repro.workloads.generators.Workload` bundles
and keep table sizes small enough for pure-Python execution; the benchmark
harness applies work budgets ("timeouts") exactly like the paper does.
"""

from __future__ import annotations

from repro.query.expressions import ColumnRef, FunctionCall, Star
from repro.query.predicates import Predicate, column_compare_literal, column_equals_column
from repro.query.query import AggregateSpec, Query, SelectItem
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.generators import Workload, WorkloadQuery, make_rng, uniform_keys


def _count_star() -> tuple[SelectItem, ...]:
    return (SelectItem(aggregate=AggregateSpec("count", Star()), alias="matches"),)


# ----------------------------------------------------------------------
# UDF torture
# ----------------------------------------------------------------------
def make_udf_torture(
    num_tables: int,
    tuples_per_table: int = 100,
    *,
    shape: str = "chain",
    good_position: int | None = None,
    seed: int = 7,
) -> Workload:
    """UDF Torture: one always-false UDF join predicate among always-true ones.

    Parameters
    ----------
    num_tables:
        Number of joined tables (the paper sweeps 4-10).
    tuples_per_table:
        Rows per table (the paper uses 100).
    shape:
        ``"chain"`` (t1-t2-...-tn) or ``"star"`` (t1 joined with every other).
    good_position:
        Index of the join edge carrying the good (never satisfied) predicate;
        defaults to the last edge, the worst case for a left-to-right plan.
    """
    if shape not in ("chain", "star"):
        raise ValueError("shape must be 'chain' or 'star'")
    if num_tables < 2:
        raise ValueError("UDF torture needs at least two tables")
    rng = make_rng(seed)
    catalog = Catalog()
    aliases = [f"t{i}" for i in range(1, num_tables + 1)]
    for alias in aliases:
        catalog.add_table(Table(alias, {
            "id": list(range(tuples_per_table)),
            "val": uniform_keys(rng, tuples_per_table, 50).tolist(),
        }))

    workload = Workload(
        name=f"udf-torture-{shape}-{num_tables}",
        catalog=catalog,
        parameters={
            "num_tables": num_tables,
            "tuples_per_table": tuples_per_table,
            "shape": shape,
        },
    )
    # Both UDFs look identical to an optimizer (same cost, same hint).
    workload.udfs.register("udf_bad", lambda a, b: True, cost=2, selectivity_hint=0.5)
    workload.udfs.register("udf_good", lambda a, b: False, cost=2, selectivity_hint=0.5)

    edges = _edges(aliases, shape)
    good_index = (len(edges) - 1) if good_position is None else good_position
    good_index = max(0, min(good_index, len(edges) - 1))
    predicates: list[Predicate] = []
    for index, (left, right) in enumerate(edges):
        udf_name = "udf_good" if index == good_index else "udf_bad"
        predicates.append(Predicate(FunctionCall(
            udf_name, (ColumnRef(left, "val"), ColumnRef(right, "val")),
        )))
    query = Query(
        tables=tuple((alias, alias) for alias in aliases),
        predicates=tuple(predicates),
        select_items=_count_star(),
    )
    workload.queries.append(WorkloadQuery(
        name=f"udf_{shape}_{num_tables}",
        query=query,
        description=f"UDF torture, {shape}, {num_tables} tables",
        tags=("udf-torture", shape),
    ))
    return workload


def _edges(aliases: list[str], shape: str) -> list[tuple[str, str]]:
    if shape == "chain":
        return [(aliases[i], aliases[i + 1]) for i in range(len(aliases) - 1)]
    return [(aliases[0], alias) for alias in aliases[1:]]


# ----------------------------------------------------------------------
# correlation torture
# ----------------------------------------------------------------------
def make_correlation_torture(
    num_tables: int,
    tuples_per_table: int = 200,
    *,
    good_position: int = 1,
    fanout: int = 6,
    seed: int = 11,
) -> Workload:
    """Correlation Torture: correlated filters hide the truly selective table.

    Every table carries the filter ``a = 1 AND b = 1``.  In all tables except
    the one at ``good_position`` the two columns are perfectly correlated
    (actual selectivity 1/3, estimated 1/9); in the good table they are
    anti-correlated (actual selectivity 0, estimated 1/4).  An estimate-based
    optimizer therefore defers the good table to the end of the chain, where
    the Zipf-free but fan-out ``fanout`` equality joins have already blown up
    the intermediate results.

    Parameters
    ----------
    good_position:
        1-based position of the good table within the chain (the paper's
        ``m``; 1 = head of the chain, ``num_tables // 2`` = middle).
    """
    if num_tables < 2:
        raise ValueError("correlation torture needs at least two tables")
    good_position = max(1, min(good_position, num_tables))
    rng = make_rng(seed)
    catalog = Catalog()
    aliases = [f"r{i}" for i in range(1, num_tables + 1)]
    num_keys = max(1, tuples_per_table // fanout)
    for position, alias in enumerate(aliases, start=1):
        key_in = uniform_keys(rng, tuples_per_table, num_keys)
        key_out = uniform_keys(rng, tuples_per_table, num_keys)
        if position == good_position:
            a = uniform_keys(rng, tuples_per_table, 2)
            b = 1 - a  # anti-correlated: a = 1 AND b = 1 never holds
        else:
            a = uniform_keys(rng, tuples_per_table, 3)
            b = a.copy()  # perfectly correlated: the conjunction is not selective
        catalog.add_table(Table(alias, {
            "key_in": key_in.tolist(),
            "key_out": key_out.tolist(),
            "a": a.tolist(),
            "b": b.tolist(),
        }))

    predicates: list[Predicate] = []
    for i in range(num_tables - 1):
        predicates.append(
            column_equals_column(aliases[i], "key_out", aliases[i + 1], "key_in")
        )
    for alias in aliases:
        predicates.append(column_compare_literal(alias, "a", "=", 1))
        predicates.append(column_compare_literal(alias, "b", "=", 1))

    workload = Workload(
        name=f"correlation-torture-{num_tables}-m{good_position}",
        catalog=catalog,
        parameters={
            "num_tables": num_tables,
            "tuples_per_table": tuples_per_table,
            "good_position": good_position,
            "fanout": fanout,
        },
    )
    query = Query(
        tables=tuple((alias, alias) for alias in aliases),
        predicates=tuple(predicates),
        select_items=_count_star(),
    )
    workload.queries.append(WorkloadQuery(
        name=f"corr_{num_tables}_m{good_position}",
        query=query,
        description=f"correlation torture, {num_tables} tables, m={good_position}",
        tags=("correlation-torture",),
    ))
    return workload


# ----------------------------------------------------------------------
# trivial optimization benchmark
# ----------------------------------------------------------------------
def make_trivial_workload(
    num_tables: int,
    tuples_per_table: int = 250,
    *,
    fanout: int = 1,
    seed: int = 23,
) -> Workload:
    """Trivial Optimization: every Cartesian-avoiding plan is equivalent.

    A chain of uniform equality joins with identical key distributions and no
    filters: all join orders produce the same intermediate sizes, so any
    exploration is pure overhead.  Used for Figure 12.
    """
    if num_tables < 2:
        raise ValueError("trivial benchmark needs at least two tables")
    rng = make_rng(seed)
    catalog = Catalog()
    aliases = [f"u{i}" for i in range(1, num_tables + 1)]
    num_keys = max(1, tuples_per_table // fanout)
    shared_key_pool = list(range(num_keys))
    for alias in aliases:
        key_in = rng.choice(shared_key_pool, size=tuples_per_table)
        key_out = rng.choice(shared_key_pool, size=tuples_per_table)
        catalog.add_table(Table(alias, {
            "key_in": key_in.tolist(),
            "key_out": key_out.tolist(),
            "payload": uniform_keys(rng, tuples_per_table, 100).tolist(),
        }))
    predicates = [
        column_equals_column(aliases[i], "key_out", aliases[i + 1], "key_in")
        for i in range(num_tables - 1)
    ]
    workload = Workload(
        name=f"trivial-{num_tables}",
        catalog=catalog,
        parameters={"num_tables": num_tables, "tuples_per_table": tuples_per_table,
                    "fanout": fanout},
    )
    query = Query(
        tables=tuple((alias, alias) for alias in aliases),
        predicates=tuple(predicates),
        select_items=_count_star(),
    )
    workload.queries.append(WorkloadQuery(
        name=f"trivial_{num_tables}",
        query=query,
        description=f"trivial optimization, {num_tables} tables",
        tags=("trivial",),
    ))
    return workload
