"""A scaled-down TPC-H analogue and the ten queries evaluated in the paper.

The schema follows TPC-H (region, nation, supplier, customer, part,
partsupp, orders, lineitem) with a dbgen-style uniform generator at a tiny
scale factor; dates are encoded as integers ``yyyymmdd``.  Queries are
simplified select-project-join-aggregate forms of Q2, Q3, Q5, Q7, Q8, Q9,
Q10, Q11, Q18 and Q21 — the joins and filters follow the originals, the
aggregate lists are reduced to one or two aggregates.

``variant="udf"`` replaces every unary predicate with a semantically
equivalent registered UDF.  The traditional optimizer then has to fall back
to default selectivities, which is exactly the scenario in which the paper's
Table 7 and Figure 13 show SkinnerDB overtaking the traditional systems.
"""

from __future__ import annotations

from typing import Any

from repro.query.expressions import ColumnRef, FunctionCall, Star
from repro.query.predicates import Predicate, column_compare_literal, column_equals_column
from repro.query.query import AggregateSpec, Query, SelectItem
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.generators import (
    Workload,
    WorkloadQuery,
    choice_strings,
    make_rng,
    uniform_keys,
    zipf_keys,
)

_REGIONS = ["africa", "america", "asia", "europe", "mideast"]
_SEGMENTS = ["automobile", "building", "furniture", "machinery", "household"]
_PRIORITIES = ["1-urgent", "2-high", "3-medium", "4-low", "5-none"]
_RETURN_FLAGS = ["a", "n", "r"]
_PART_TYPES = [f"type_{i}" for i in range(8)]
_BRANDS = [f"brand_{i}" for i in range(6)]

QUERY_NAMES = ("q2", "q3", "q5", "q7", "q8", "q9", "q10", "q11", "q18", "q21")


def make_tpch_workload(
    scale: float = 1.0, seed: int = 29, variant: str = "standard"
) -> Workload:
    """Build the TPC-H analogue catalog and query set.

    Parameters
    ----------
    scale:
        Multiplies all table sizes (1.0 keeps the largest table at a few
        thousand rows).
    variant:
        ``"standard"`` or ``"udf"`` (unary predicates wrapped in opaque UDFs).
    """
    if variant not in ("standard", "udf"):
        raise ValueError("variant must be 'standard' or 'udf'")
    rng = make_rng(seed)
    catalog = Catalog()
    sizes = _sizes(scale)
    _populate(catalog, rng, sizes)
    workload = Workload(
        name=f"tpch-{variant}",
        catalog=catalog,
        parameters={"scale": scale, "seed": seed, "variant": variant},
    )
    builders = {
        "q2": _q2, "q3": _q3, "q5": _q5, "q7": _q7, "q8": _q8,
        "q9": _q9, "q10": _q10, "q11": _q11, "q18": _q18, "q21": _q21,
    }
    for name in QUERY_NAMES:
        tables, predicates, select_items, description = builders[name]()
        if variant == "udf":
            predicates = _udfify(workload, name, predicates)
        query = Query(tables=tuple(tables), predicates=tuple(predicates),
                      select_items=tuple(select_items))
        workload.queries.append(WorkloadQuery(
            name=name, query=query, description=description, tags=(variant,),
        ))
    return workload


# ----------------------------------------------------------------------
# data generation
# ----------------------------------------------------------------------
def _sizes(scale: float) -> dict[str, int]:
    def scaled(base: int) -> int:
        return max(3, int(base * scale))

    return {
        "region": 5,
        "nation": 25,
        "supplier": scaled(60),
        "customer": scaled(250),
        "part": scaled(180),
        "partsupp": scaled(420),
        "orders": scaled(900),
        "lineitem": scaled(2400),
    }


def _date(rng, size: int) -> list[int]:
    years = rng.integers(1992, 1999, size=size)
    months = rng.integers(1, 13, size=size)
    days = rng.integers(1, 29, size=size)
    return (years * 10000 + months * 100 + days).tolist()


def _populate(catalog: Catalog, rng, sizes: dict[str, int]) -> None:
    catalog.add_table(Table("region", {
        "r_regionkey": list(range(sizes["region"])),
        "r_name": list(_REGIONS[: sizes["region"]]),
    }))
    n_nation = sizes["nation"]
    catalog.add_table(Table("nation", {
        "n_nationkey": list(range(n_nation)),
        "n_name": [f"nation_{i}" for i in range(n_nation)],
        "n_regionkey": uniform_keys(rng, n_nation, sizes["region"]).tolist(),
    }))
    n_supp = sizes["supplier"]
    catalog.add_table(Table("supplier", {
        "s_suppkey": list(range(n_supp)),
        "s_nationkey": uniform_keys(rng, n_supp, n_nation).tolist(),
        "s_acctbal": rng.integers(-500, 10000, size=n_supp).tolist(),
    }))
    n_cust = sizes["customer"]
    catalog.add_table(Table("customer", {
        "c_custkey": list(range(n_cust)),
        "c_nationkey": uniform_keys(rng, n_cust, n_nation).tolist(),
        "c_mktsegment": choice_strings(rng, n_cust, _SEGMENTS),
        "c_acctbal": rng.integers(-500, 10000, size=n_cust).tolist(),
    }))
    n_part = sizes["part"]
    catalog.add_table(Table("part", {
        "p_partkey": list(range(n_part)),
        "p_type": choice_strings(rng, n_part, _PART_TYPES),
        "p_size": rng.integers(1, 51, size=n_part).tolist(),
        "p_brand": choice_strings(rng, n_part, _BRANDS),
    }))
    n_ps = sizes["partsupp"]
    catalog.add_table(Table("partsupp", {
        "ps_partkey": uniform_keys(rng, n_ps, n_part).tolist(),
        "ps_suppkey": uniform_keys(rng, n_ps, n_supp).tolist(),
        "ps_supplycost": rng.integers(1, 1001, size=n_ps).tolist(),
        "ps_availqty": rng.integers(1, 10000, size=n_ps).tolist(),
    }))
    n_orders = sizes["orders"]
    catalog.add_table(Table("orders", {
        "o_orderkey": list(range(n_orders)),
        "o_custkey": uniform_keys(rng, n_orders, n_cust).tolist(),
        "o_orderdate": _date(rng, n_orders),
        "o_orderpriority": choice_strings(rng, n_orders, _PRIORITIES),
    }))
    n_li = sizes["lineitem"]
    catalog.add_table(Table("lineitem", {
        "l_orderkey": zipf_keys(rng, n_li, n_orders, skew=0.6).tolist(),
        "l_partkey": uniform_keys(rng, n_li, n_part).tolist(),
        "l_suppkey": uniform_keys(rng, n_li, n_supp).tolist(),
        "l_quantity": rng.integers(1, 51, size=n_li).tolist(),
        "l_extendedprice": rng.integers(100, 100000, size=n_li).tolist(),
        "l_discount": rng.integers(0, 11, size=n_li).tolist(),
        "l_shipdate": _date(rng, n_li),
        "l_returnflag": choice_strings(rng, n_li, _RETURN_FLAGS),
    }))


# ----------------------------------------------------------------------
# UDF variant
# ----------------------------------------------------------------------
def _udfify(workload: Workload, query_name: str, predicates: list[Predicate]) -> list[Predicate]:
    """Replace unary predicates by semantically equivalent opaque UDFs."""
    rewritten: list[Predicate] = []
    for index, predicate in enumerate(predicates):
        if not predicate.is_unary or predicate.op is None:
            rewritten.append(predicate)
            continue
        column = predicate.left
        literal = predicate.right
        if not isinstance(column, ColumnRef) or literal is None:
            rewritten.append(predicate)
            continue
        op = predicate.op
        value = literal.evaluate({})
        udf_name = f"{query_name}_udf_{index}"
        workload.udfs.register(udf_name, _make_checker(op, value), cost=2)
        rewritten.append(Predicate(FunctionCall(udf_name, (column,))))
    return rewritten


def _make_checker(op: str, value: Any):
    comparators = {
        "=": lambda x: x == value,
        "!=": lambda x: x != value,
        "<": lambda x: x < value,
        "<=": lambda x: x <= value,
        ">": lambda x: x > value,
        ">=": lambda x: x >= value,
    }
    return comparators[op]


# ----------------------------------------------------------------------
# query definitions (simplified SPJA forms)
# ----------------------------------------------------------------------
def _agg(function: str, table: str, column: str, alias: str) -> SelectItem:
    return SelectItem(aggregate=AggregateSpec(function, ColumnRef(table, column)), alias=alias)


def _count(alias: str = "cnt") -> SelectItem:
    return SelectItem(aggregate=AggregateSpec("count", Star()), alias=alias)


def _q2():
    tables = [("p", "part"), ("ps", "partsupp"), ("s", "supplier"),
              ("n", "nation"), ("r", "region")]
    predicates = [
        column_equals_column("p", "p_partkey", "ps", "ps_partkey"),
        column_equals_column("ps", "ps_suppkey", "s", "s_suppkey"),
        column_equals_column("s", "s_nationkey", "n", "n_nationkey"),
        column_equals_column("n", "n_regionkey", "r", "r_regionkey"),
        column_compare_literal("p", "p_size", "=", 15),
        column_compare_literal("r", "r_name", "=", "europe"),
    ]
    select = [_agg("min", "ps", "ps_supplycost", "min_cost"), _count()]
    return tables, predicates, select, "minimum supply cost in europe"


def _q3():
    tables = [("c", "customer"), ("o", "orders"), ("l", "lineitem")]
    predicates = [
        column_equals_column("c", "c_custkey", "o", "o_custkey"),
        column_equals_column("l", "l_orderkey", "o", "o_orderkey"),
        column_compare_literal("c", "c_mktsegment", "=", "building"),
        column_compare_literal("o", "o_orderdate", "<", 19950315),
        column_compare_literal("l", "l_shipdate", ">", 19950315),
    ]
    select = [_agg("sum", "l", "l_extendedprice", "revenue"), _count()]
    return tables, predicates, select, "shipping-priority revenue"


def _q5():
    tables = [("c", "customer"), ("o", "orders"), ("l", "lineitem"),
              ("s", "supplier"), ("n", "nation"), ("r", "region")]
    predicates = [
        column_equals_column("c", "c_custkey", "o", "o_custkey"),
        column_equals_column("l", "l_orderkey", "o", "o_orderkey"),
        column_equals_column("l", "l_suppkey", "s", "s_suppkey"),
        column_equals_column("c", "c_nationkey", "s", "s_nationkey"),
        column_equals_column("s", "s_nationkey", "n", "n_nationkey"),
        column_equals_column("n", "n_regionkey", "r", "r_regionkey"),
        column_compare_literal("r", "r_name", "=", "asia"),
        column_compare_literal("o", "o_orderdate", ">=", 19940101),
        column_compare_literal("o", "o_orderdate", "<", 19950101),
    ]
    select = [_agg("sum", "l", "l_extendedprice", "revenue"), _count()]
    return tables, predicates, select, "local supplier volume"


def _q7():
    tables = [("s", "supplier"), ("l", "lineitem"), ("o", "orders"),
              ("c", "customer"), ("n1", "nation"), ("n2", "nation")]
    predicates = [
        column_equals_column("s", "s_suppkey", "l", "l_suppkey"),
        column_equals_column("o", "o_orderkey", "l", "l_orderkey"),
        column_equals_column("c", "c_custkey", "o", "o_custkey"),
        column_equals_column("s", "s_nationkey", "n1", "n_nationkey"),
        column_equals_column("c", "c_nationkey", "n2", "n_nationkey"),
        column_compare_literal("n1", "n_name", "=", "nation_3"),
        column_compare_literal("n2", "n_name", "=", "nation_7"),
    ]
    select = [_agg("sum", "l", "l_extendedprice", "revenue"), _count()]
    return tables, predicates, select, "volume shipping between two nations"


def _q8():
    tables = [("p", "part"), ("l", "lineitem"), ("o", "orders"),
              ("c", "customer"), ("n", "nation"), ("r", "region")]
    predicates = [
        column_equals_column("p", "p_partkey", "l", "l_partkey"),
        column_equals_column("l", "l_orderkey", "o", "o_orderkey"),
        column_equals_column("o", "o_custkey", "c", "c_custkey"),
        column_equals_column("c", "c_nationkey", "n", "n_nationkey"),
        column_equals_column("n", "n_regionkey", "r", "r_regionkey"),
        column_compare_literal("r", "r_name", "=", "america"),
        column_compare_literal("p", "p_type", "=", "type_3"),
        column_compare_literal("o", "o_orderdate", ">=", 19950101),
    ]
    select = [_agg("sum", "l", "l_extendedprice", "volume"), _count()]
    return tables, predicates, select, "national market share"


def _q9():
    tables = [("p", "part"), ("ps", "partsupp"), ("l", "lineitem"),
              ("s", "supplier"), ("o", "orders"), ("n", "nation")]
    predicates = [
        column_equals_column("p", "p_partkey", "l", "l_partkey"),
        column_equals_column("ps", "ps_partkey", "l", "l_partkey"),
        column_equals_column("ps", "ps_suppkey", "l", "l_suppkey"),
        column_equals_column("s", "s_suppkey", "l", "l_suppkey"),
        column_equals_column("o", "o_orderkey", "l", "l_orderkey"),
        column_equals_column("s", "s_nationkey", "n", "n_nationkey"),
        column_compare_literal("p", "p_type", "=", "type_5"),
    ]
    select = [_agg("sum", "l", "l_extendedprice", "profit"), _count()]
    return tables, predicates, select, "product type profit"


def _q10():
    tables = [("c", "customer"), ("o", "orders"), ("l", "lineitem"), ("n", "nation")]
    predicates = [
        column_equals_column("c", "c_custkey", "o", "o_custkey"),
        column_equals_column("l", "l_orderkey", "o", "o_orderkey"),
        column_equals_column("c", "c_nationkey", "n", "n_nationkey"),
        column_compare_literal("l", "l_returnflag", "=", "r"),
        column_compare_literal("o", "o_orderdate", ">=", 19931001),
        column_compare_literal("o", "o_orderdate", "<", 19940101),
    ]
    select = [_agg("sum", "l", "l_extendedprice", "lost_revenue"), _count()]
    return tables, predicates, select, "returned item reporting"


def _q11():
    tables = [("ps", "partsupp"), ("s", "supplier"), ("n", "nation")]
    predicates = [
        column_equals_column("ps", "ps_suppkey", "s", "s_suppkey"),
        column_equals_column("s", "s_nationkey", "n", "n_nationkey"),
        column_compare_literal("n", "n_name", "=", "nation_11"),
    ]
    value = FunctionCall("mul", (ColumnRef("ps", "ps_supplycost"),
                                 ColumnRef("ps", "ps_availqty")))
    select = [SelectItem(aggregate=AggregateSpec("sum", value), alias="stock_value"), _count()]
    return tables, predicates, select, "important stock identification"


def _q18():
    tables = [("c", "customer"), ("o", "orders"), ("l", "lineitem")]
    predicates = [
        column_equals_column("c", "c_custkey", "o", "o_custkey"),
        column_equals_column("o", "o_orderkey", "l", "l_orderkey"),
        column_compare_literal("l", "l_quantity", ">", 45),
    ]
    select = [_agg("sum", "l", "l_quantity", "total_quantity"), _count()]
    return tables, predicates, select, "large volume customers"


def _q21():
    tables = [("s", "supplier"), ("l", "lineitem"), ("o", "orders"), ("n", "nation")]
    predicates = [
        column_equals_column("s", "s_suppkey", "l", "l_suppkey"),
        column_equals_column("o", "o_orderkey", "l", "l_orderkey"),
        column_equals_column("s", "s_nationkey", "n", "n_nationkey"),
        column_compare_literal("o", "o_orderpriority", "=", "1-urgent"),
        column_compare_literal("n", "n_name", "=", "nation_4"),
    ]
    select = [_count("waiting_orders")]
    return tables, predicates, select, "suppliers who kept orders waiting"
