"""Benchmark workloads used in the paper's evaluation.

* :mod:`~repro.workloads.job` — a synthetic analogue of the Join Order
  Benchmark: a snowflake schema with correlated, skewed data and a query mix
  in which a handful of queries have catastrophically misestimated plans.
* :mod:`~repro.workloads.tpch` — a scaled-down TPC-H schema and generator
  with simplified forms of the ten queries evaluated in the paper, plus the
  variant replacing unary predicates with opaque UDFs.
* :mod:`~repro.workloads.torture` — the Optimizer Torture micro-benchmarks:
  UDF Torture, Correlation Torture, and the Trivial Optimization benchmark.
* :mod:`~repro.workloads.generators` — shared random-data helpers (Zipfian
  keys, correlated columns).

Every workload returns a :class:`~repro.workloads.generators.Workload`
bundle: a catalog, a UDF registry, and a list of named queries.
"""

from repro.workloads.generators import Workload, WorkloadQuery
from repro.workloads.job import make_job_workload
from repro.workloads.torture import (
    make_correlation_torture,
    make_trivial_workload,
    make_udf_torture,
)
from repro.workloads.tpch import make_tpch_workload

__all__ = [
    "Workload",
    "WorkloadQuery",
    "make_correlation_torture",
    "make_job_workload",
    "make_tpch_workload",
    "make_trivial_workload",
    "make_udf_torture",
]
