"""A synthetic analogue of the Join Order Benchmark (JOB).

The real JOB runs 113 queries against the IMDB dataset; its defining
property is that real-world correlation and skew make a handful of plans
catastrophically worse than estimated.  This module generates an IMDB-like
snowflake schema — a ``title`` fact table, large skewed fact-side tables
(``cast_info``, ``movie_info``, ``movie_keyword``, ``movie_companies``) and
small dimensions — with two planted hazards:

* **skewed join keys**: ``movie_id`` columns follow a Zipf distribution, so
  joining two fact-side tables before filtering explodes on the head movies;
* **correlated filters**: predicate pairs whose actual joint selectivity is
  an order of magnitude higher than the independence-based estimate, so the
  traditional optimizer believes the badly-filtered table is tiny and joins
  it too early.

The query mix mirrors the benchmark's structure: most queries are handled
fine by a traditional optimizer, while a few (tagged ``hazard``) produce the
catastrophic plans that dominate total execution time in Table 1/Figure 6.
"""

from __future__ import annotations

from repro.query.expressions import ColumnRef, Star
from repro.query.predicates import (
    Predicate,
    column_compare_literal,
    column_equals_column,
)
from repro.query.query import AggregateSpec, Query, SelectItem
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.generators import (
    Workload,
    WorkloadQuery,
    choice_strings,
    correlated_column,
    make_rng,
    uniform_keys,
    zipf_keys,
)

_COUNTRIES = ["us", "uk", "de", "fr", "jp", "in", "it", "ca"]
_GENDERS = ["m", "f"]
_KINDS = ["movie", "tv", "video", "short", "doc", "game"]


def make_job_workload(scale: float = 1.0, seed: int = 13) -> Workload:
    """Build the JOB-analogue catalog and query mix.

    Parameters
    ----------
    scale:
        Multiplies all table sizes; 1.0 keeps the benchmark laptop-friendly
        (a few thousand fact rows), which is enough to reproduce the
        *relative* behaviour the paper reports.
    seed:
        Seed for the deterministic data generator.
    """
    rng = make_rng(seed)
    catalog = Catalog()
    sizes = _sizes(scale)

    n_title = sizes["title"]
    kind_id = uniform_keys(rng, n_title, len(_KINDS))
    # Correlation hazard #1: kind 1 titles are all recent, others span decades.
    production_year = rng.integers(1930, 2011, size=n_title)
    production_year = production_year.copy()
    production_year[kind_id == 1] = rng.integers(1990, 2011, size=int((kind_id == 1).sum()))
    votes = zipf_keys(rng, n_title, 1000, skew=1.1) + 1
    catalog.add_table(Table("title", {
        "id": list(range(n_title)),
        "kind_id": kind_id.tolist(),
        "production_year": production_year.tolist(),
        "votes": votes.tolist(),
    }))

    n_mi = sizes["movie_info"]
    mi_movie = zipf_keys(rng, n_mi, n_title, skew=1.5)
    mi_type = uniform_keys(rng, n_mi, sizes["info_type"])
    # Correlation hazard #2: info type 5 always carries a high info_val, so
    # "info_type_id = 5 AND info_val > 90" is ~10x more selective on paper
    # than in reality.
    mi_val = rng.integers(0, 101, size=n_mi)
    mi_val[mi_type == 5] = rng.integers(91, 101, size=int((mi_type == 5).sum()))
    catalog.add_table(Table("movie_info", {
        "movie_id": mi_movie.tolist(),
        "info_type_id": mi_type.tolist(),
        "info_val": mi_val.tolist(),
    }))

    n_ci = sizes["cast_info"]
    ci_movie = zipf_keys(rng, n_ci, n_title, skew=1.5)
    ci_person = zipf_keys(rng, n_ci, sizes["name"], skew=1.1)
    ci_role = uniform_keys(rng, n_ci, sizes["role_type"])
    catalog.add_table(Table("cast_info", {
        "movie_id": ci_movie.tolist(),
        "person_id": ci_person.tolist(),
        "role_id": ci_role.tolist(),
    }))

    n_mk = sizes["movie_keyword"]
    mk_movie = zipf_keys(rng, n_mk, n_title, skew=1.45)
    # Skew hazard: low keyword ids are used by most movies, high ("tail")
    # keyword ids are rare.  Filters selecting tail keywords are much more
    # selective than the uniform join-selectivity estimate suggests.
    mk_keyword = zipf_keys(rng, n_mk, sizes["keyword"], skew=1.1)
    catalog.add_table(Table("movie_keyword", {
        "movie_id": mk_movie.tolist(),
        "keyword_id": mk_keyword.tolist(),
    }))

    n_mc = sizes["movie_companies"]
    mc_movie = zipf_keys(rng, n_mc, n_title, skew=1.4)
    mc_company = zipf_keys(rng, n_mc, sizes["company_name"], skew=1.1)
    mc_type = correlated_column(rng, mc_company, sizes["company_type"], correlation=0.9)
    catalog.add_table(Table("movie_companies", {
        "movie_id": mc_movie.tolist(),
        "company_id": mc_company.tolist(),
        "company_type_id": mc_type.tolist(),
    }))

    n_cn = sizes["company_name"]
    # Companies with high ids are the rarely-referenced tail of the Zipf
    # distribution above; they are all Italian, so "country_code = 'it'"
    # looks ordinary to the optimizer but joins to almost nothing.
    tail_start_cn = int(n_cn * 0.85)
    country = choice_strings(rng, n_cn, _COUNTRIES[:6], [4, 2, 1, 1, 1, 1])
    country = ["it" if i >= tail_start_cn else c for i, c in enumerate(country)]
    catalog.add_table(Table("company_name", {
        "id": list(range(n_cn)),
        "country_code": country,
    }))

    n_kw = sizes["keyword"]
    # Keyword group 11 is reserved for the tail keywords (high ids): filters
    # on it are accurately estimated as "a few keywords" but those keywords
    # barely occur in movie_keyword, so the true join result is tiny.
    tail_start_kw = int(n_kw * 0.88)
    keyword_group = uniform_keys(rng, n_kw, 11).tolist()
    keyword_group = [11 if i >= tail_start_kw else g for i, g in enumerate(keyword_group)]
    catalog.add_table(Table("keyword", {
        "id": list(range(n_kw)),
        "keyword_group": keyword_group,
    }))

    n_name = sizes["name"]
    catalog.add_table(Table("name", {
        "id": list(range(n_name)),
        "gender": choice_strings(rng, n_name, _GENDERS),
    }))

    catalog.add_table(Table("info_type", {
        "id": list(range(sizes["info_type"])),
        "info": [f"info_{i}" for i in range(sizes["info_type"])],
    }))
    catalog.add_table(Table("kind_type", {
        "id": list(range(len(_KINDS))),
        "kind": list(_KINDS),
    }))
    catalog.add_table(Table("company_type", {
        "id": list(range(sizes["company_type"])),
        "kind": [f"ctype_{i}" for i in range(sizes["company_type"])],
    }))
    catalog.add_table(Table("role_type", {
        "id": list(range(sizes["role_type"])),
        "role": [f"role_{i}" for i in range(sizes["role_type"])],
    }))

    workload = Workload(name="job", catalog=catalog,
                        parameters={"scale": scale, "seed": seed})
    workload.queries = _make_queries(sizes)
    return workload


def _sizes(scale: float) -> dict[str, int]:
    def scaled(base: int) -> int:
        return max(4, int(base * scale))

    return {
        "title": scaled(700),
        "movie_info": scaled(2200),
        "cast_info": scaled(2200),
        "movie_keyword": scaled(1600),
        "movie_companies": scaled(1200),
        "company_name": scaled(90),
        "keyword": scaled(110),
        "name": scaled(260),
        "info_type": 10,
        "company_type": 4,
        "role_type": 8,
    }


# ----------------------------------------------------------------------
# query construction helpers
# ----------------------------------------------------------------------
def _count_star() -> tuple[SelectItem, ...]:
    return (SelectItem(aggregate=AggregateSpec("count", Star()), alias="matches"),)


def _query(
    name: str,
    tables: list[tuple[str, str]],
    predicates: list[Predicate],
    description: str,
    tags: tuple[str, ...] = (),
) -> WorkloadQuery:
    query = Query(
        tables=tuple(tables),
        predicates=tuple(predicates),
        select_items=_count_star(),
    )
    return WorkloadQuery(name=name, query=query, description=description, tags=tags)


def _make_queries(sizes: dict[str, int]) -> list[WorkloadQuery]:
    queries: list[WorkloadQuery] = []
    # Tail thresholds: entities above these ids sit in the tail of the Zipf
    # reference distributions, so filters selecting them are far more
    # selective than the uniform join-selectivity estimate suggests.
    name_tail = int(sizes["name"] * 0.82)

    # --- easy star joins (a traditional optimizer does fine here) --------
    queries.append(_query(
        "job_q01",
        [("t", "title"), ("kt", "kind_type")],
        [column_equals_column("t", "kind_id", "kt", "id"),
         column_compare_literal("kt", "kind", "=", "movie"),
         column_compare_literal("t", "production_year", ">", 2000)],
        "recent movies by kind", ("easy",),
    ))
    queries.append(_query(
        "job_q02",
        [("t", "title"), ("mc", "movie_companies"), ("cn", "company_name")],
        [column_equals_column("mc", "movie_id", "t", "id"),
         column_equals_column("mc", "company_id", "cn", "id"),
         column_compare_literal("cn", "country_code", "=", "de")],
        "movies by german companies", ("easy",),
    ))
    queries.append(_query(
        "job_q03",
        [("t", "title"), ("mk", "movie_keyword"), ("k", "keyword")],
        [column_equals_column("mk", "movie_id", "t", "id"),
         column_equals_column("mk", "keyword_id", "k", "id"),
         column_compare_literal("k", "keyword_group", "=", 3),
         column_compare_literal("t", "production_year", "<", 1960)],
        "old movies with keyword group 3", ("easy",),
    ))
    queries.append(_query(
        "job_q04",
        [("t", "title"), ("ci", "cast_info"), ("rt", "role_type")],
        [column_equals_column("ci", "movie_id", "t", "id"),
         column_equals_column("ci", "role_id", "rt", "id"),
         column_compare_literal("rt", "role", "=", "role_2"),
         column_compare_literal("t", "votes", ">", 500)],
        "high-vote titles with role 2", ("easy",),
    ))
    queries.append(_query(
        "job_q05",
        [("t", "title"), ("mi", "movie_info"), ("it", "info_type")],
        [column_equals_column("mi", "movie_id", "t", "id"),
         column_equals_column("mi", "info_type_id", "it", "id"),
         column_compare_literal("it", "info", "=", "info_2"),
         column_compare_literal("t", "kind_id", "=", 2)],
        "info rows of kind-2 titles", ("easy",),
    ))

    # --- medium snowflakes -----------------------------------------------
    queries.append(_query(
        "job_q06",
        [("t", "title"), ("mc", "movie_companies"), ("cn", "company_name"),
         ("ct", "company_type")],
        [column_equals_column("mc", "movie_id", "t", "id"),
         column_equals_column("mc", "company_id", "cn", "id"),
         column_equals_column("mc", "company_type_id", "ct", "id"),
         column_compare_literal("cn", "country_code", "=", "uk"),
         column_compare_literal("ct", "kind", "=", "ctype_1"),
         column_compare_literal("t", "production_year", ">", 1990)],
        "uk productions of type 1", ("medium",),
    ))
    queries.append(_query(
        "job_q07",
        [("t", "title"), ("ci", "cast_info"), ("n", "name"), ("kt", "kind_type")],
        [column_equals_column("ci", "movie_id", "t", "id"),
         column_equals_column("ci", "person_id", "n", "id"),
         column_equals_column("t", "kind_id", "kt", "id"),
         column_compare_literal("n", "gender", "=", "f"),
         column_compare_literal("kt", "kind", "=", "doc")],
        "documentaries with female cast", ("medium",),
    ))
    queries.append(_query(
        "job_q08",
        [("t", "title"), ("mk", "movie_keyword"), ("k", "keyword"),
         ("mc", "movie_companies"), ("cn", "company_name")],
        [column_equals_column("mk", "movie_id", "t", "id"),
         column_equals_column("mk", "keyword_id", "k", "id"),
         column_equals_column("mc", "movie_id", "t", "id"),
         column_equals_column("mc", "company_id", "cn", "id"),
         column_compare_literal("k", "keyword_group", "=", 7),
         column_compare_literal("cn", "country_code", "=", "jp")],
        "japanese movies with keyword group 7", ("medium",),
    ))
    queries.append(_query(
        "job_q09",
        [("t", "title"), ("mi", "movie_info"), ("it", "info_type"),
         ("mk", "movie_keyword"), ("k", "keyword")],
        [column_equals_column("mi", "movie_id", "t", "id"),
         column_equals_column("mi", "info_type_id", "it", "id"),
         column_equals_column("mk", "movie_id", "t", "id"),
         column_equals_column("mk", "keyword_id", "k", "id"),
         column_compare_literal("it", "info", "=", "info_7"),
         column_compare_literal("k", "keyword_group", "=", 1),
         column_compare_literal("t", "production_year", ">", 1985)],
        "keyworded info rows of recent titles", ("medium",),
    ))
    queries.append(_query(
        "job_q10",
        [("t", "title"), ("ci", "cast_info"), ("n", "name"), ("rt", "role_type"),
         ("kt", "kind_type")],
        [column_equals_column("ci", "movie_id", "t", "id"),
         column_equals_column("ci", "person_id", "n", "id"),
         column_equals_column("ci", "role_id", "rt", "id"),
         column_equals_column("t", "kind_id", "kt", "id"),
         column_compare_literal("rt", "role", "=", "role_5"),
         column_compare_literal("kt", "kind", "=", "short"),
         column_compare_literal("n", "gender", "=", "m")],
        "male role-5 cast of shorts", ("medium",),
    ))

    # --- larger joins ------------------------------------------------------
    queries.append(_query(
        "job_q11",
        [("t", "title"), ("mc", "movie_companies"), ("cn", "company_name"),
         ("ct", "company_type"), ("mk", "movie_keyword"), ("k", "keyword")],
        [column_equals_column("mc", "movie_id", "t", "id"),
         column_equals_column("mc", "company_id", "cn", "id"),
         column_equals_column("mc", "company_type_id", "ct", "id"),
         column_equals_column("mk", "movie_id", "t", "id"),
         column_equals_column("mk", "keyword_id", "k", "id"),
         column_compare_literal("cn", "country_code", "=", "fr"),
         column_compare_literal("k", "keyword_group", "=", 9),
         column_compare_literal("t", "production_year", ">", 1970)],
        "french keyworded productions", ("large",),
    ))
    queries.append(_query(
        "job_q12",
        [("t", "title"), ("ci", "cast_info"), ("n", "name"), ("mi", "movie_info"),
         ("it", "info_type"), ("kt", "kind_type")],
        [column_equals_column("ci", "movie_id", "t", "id"),
         column_equals_column("ci", "person_id", "n", "id"),
         column_equals_column("mi", "movie_id", "t", "id"),
         column_equals_column("mi", "info_type_id", "it", "id"),
         column_equals_column("t", "kind_id", "kt", "id"),
         column_compare_literal("it", "info", "=", "info_3"),
         column_compare_literal("kt", "kind", "=", "tv"),
         column_compare_literal("n", "gender", "=", "f")],
        "tv cast and info", ("large",),
    ))
    queries.append(_query(
        "job_q13",
        [("t", "title"), ("mk", "movie_keyword"), ("k", "keyword"),
         ("ci", "cast_info"), ("rt", "role_type"), ("n", "name"),
         ("kt", "kind_type")],
        [column_equals_column("mk", "movie_id", "t", "id"),
         column_equals_column("mk", "keyword_id", "k", "id"),
         column_equals_column("ci", "movie_id", "t", "id"),
         column_equals_column("ci", "role_id", "rt", "id"),
         column_equals_column("ci", "person_id", "n", "id"),
         column_equals_column("t", "kind_id", "kt", "id"),
         column_compare_literal("k", "keyword_group", "=", 4),
         column_compare_literal("rt", "role", "=", "role_1"),
         column_compare_literal("kt", "kind", "=", "movie"),
         column_compare_literal("t", "votes", ">", 300)],
        "seven-table snowflake", ("large",),
    ))

    # --- hazard queries: correlation + skew mislead the optimizer ----------
    # Pattern: the filter on movie_info (or title) is under-estimated ~10x
    # because of column correlation, which lures the optimizer into starting
    # from the fact side and joining the heavily skewed cast_info /
    # movie_companies tables before the genuinely selective tail-entity
    # dimension filter gets a chance to prune.
    queries.append(_query(
        "job_q14",
        [("mi", "movie_info"), ("t", "title"), ("ci", "cast_info"), ("n", "name")],
        [column_equals_column("mi", "movie_id", "t", "id"),
         column_equals_column("ci", "movie_id", "t", "id"),
         column_equals_column("ci", "person_id", "n", "id"),
         column_compare_literal("mi", "info_type_id", "=", 5),
         column_compare_literal("mi", "info_val", ">", 90),
         column_compare_literal("n", "id", ">", name_tail),
         column_compare_literal("n", "gender", "=", "f")],
        "correlated movie_info filter with skewed cast_info and tail persons",
        ("hazard",),
    ))
    queries.append(_query(
        "job_q15",
        [("mi", "movie_info"), ("t", "title"), ("mc", "movie_companies"),
         ("cn", "company_name")],
        [column_equals_column("mi", "movie_id", "t", "id"),
         column_equals_column("mc", "movie_id", "t", "id"),
         column_equals_column("mc", "company_id", "cn", "id"),
         column_compare_literal("mi", "info_type_id", "=", 5),
         column_compare_literal("mi", "info_val", ">", 92),
         column_compare_literal("cn", "country_code", "=", "it")],
        "correlated filter with skewed movie_companies and tail companies",
        ("hazard",),
    ))
    queries.append(_query(
        "job_q16",
        [("mi", "movie_info"), ("t", "title"), ("ci", "cast_info"),
         ("n", "name"), ("rt", "role_type")],
        [column_equals_column("mi", "movie_id", "t", "id"),
         column_equals_column("ci", "movie_id", "t", "id"),
         column_equals_column("ci", "person_id", "n", "id"),
         column_equals_column("ci", "role_id", "rt", "id"),
         column_compare_literal("mi", "info_type_id", "=", 5),
         column_compare_literal("mi", "info_val", ">", 91),
         column_compare_literal("rt", "role", "=", "role_3"),
         column_compare_literal("n", "id", ">", name_tail)],
        "correlated info filter with tail persons and role dimension", ("hazard",),
    ))

    # --- remaining mixed queries -------------------------------------------
    queries.append(_query(
        "job_q17",
        [("t", "title"), ("mi", "movie_info"), ("mk", "movie_keyword")],
        [column_equals_column("mi", "movie_id", "t", "id"),
         column_equals_column("mk", "movie_id", "t", "id"),
         column_compare_literal("t", "votes", ">", 800),
         column_compare_literal("mi", "info_val", ">", 95)],
        "two fact joins with weak filters", ("medium",),
    ))
    queries.append(_query(
        "job_q18",
        [("t", "title"), ("mc", "movie_companies"), ("ct", "company_type")],
        [column_equals_column("mc", "movie_id", "t", "id"),
         column_equals_column("mc", "company_type_id", "ct", "id"),
         column_compare_literal("ct", "kind", "=", "ctype_0"),
         column_compare_literal("t", "production_year", "<", 1945)],
        "early productions by company type", ("easy",),
    ))
    queries.append(_query(
        "job_q19",
        [("ci", "cast_info"), ("n", "name"), ("t", "title"), ("mk", "movie_keyword")],
        [column_equals_column("ci", "person_id", "n", "id"),
         column_equals_column("ci", "movie_id", "t", "id"),
         column_equals_column("mk", "movie_id", "t", "id"),
         column_compare_literal("n", "gender", "=", "f"),
         column_compare_literal("t", "kind_id", "=", 4)],
        "female cast of kind-4 titles with keywords", ("medium",),
    ))
    queries.append(_query(
        "job_q20",
        [("t", "title"), ("mi", "movie_info"), ("it", "info_type"),
         ("mc", "movie_companies"), ("cn", "company_name"), ("ct", "company_type"),
         ("kt", "kind_type")],
        [column_equals_column("mi", "movie_id", "t", "id"),
         column_equals_column("mi", "info_type_id", "it", "id"),
         column_equals_column("mc", "movie_id", "t", "id"),
         column_equals_column("mc", "company_id", "cn", "id"),
         column_equals_column("mc", "company_type_id", "ct", "id"),
         column_equals_column("t", "kind_id", "kt", "id"),
         column_compare_literal("it", "info", "=", "info_9"),
         column_compare_literal("cn", "country_code", "=", "us"),
         column_compare_literal("ct", "kind", "=", "ctype_2"),
         column_compare_literal("kt", "kind", "=", "game")],
        "seven-table dimension-heavy join", ("large",),
    ))
    return queries


def job_output_column() -> ColumnRef:
    """The column the JOB-analogue queries aggregate (for documentation)."""
    return ColumnRef("t", "id")
