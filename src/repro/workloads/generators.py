"""Shared helpers for synthetic workload generation.

The generators are deterministic given a seed, so benchmark runs are
reproducible.  They provide the two ingredients the paper's hard workloads
rely on: *skew* (Zipfian join keys, so a few keys have enormous fan-out) and
*correlation* (column pairs whose joint selectivity is far from the product
of their marginal selectivities, breaking the optimizer's independence
assumption).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.query.query import Query
from repro.query.udf import UdfRegistry
from repro.storage.catalog import Catalog


@dataclass(frozen=True)
class WorkloadQuery:
    """A named query of a workload."""

    name: str
    query: Query
    description: str = ""
    tags: tuple[str, ...] = ()


@dataclass
class Workload:
    """A catalog plus the queries to run against it."""

    name: str
    catalog: Catalog
    udfs: UdfRegistry = field(default_factory=UdfRegistry)
    queries: list[WorkloadQuery] = field(default_factory=list)
    parameters: dict[str, Any] = field(default_factory=dict)

    def query(self, name: str) -> WorkloadQuery:
        """Look up a query by name."""
        for workload_query in self.queries:
            if workload_query.name == name:
                return workload_query
        raise KeyError(f"workload {self.name!r} has no query {name!r}")

    def query_names(self) -> list[str]:
        """Names of all queries in declaration order."""
        return [q.name for q in self.queries]

    def tagged(self, tag: str) -> list[WorkloadQuery]:
        """Queries carrying the given tag."""
        return [q for q in self.queries if tag in q.tags]


def make_rng(seed: int) -> np.random.Generator:
    """A deterministic numpy random generator."""
    return np.random.default_rng(seed)


def zipf_keys(rng: np.random.Generator, size: int, num_keys: int, skew: float = 1.2) -> np.ndarray:
    """``size`` integer keys in ``[0, num_keys)`` with a Zipf-like distribution.

    ``skew`` controls how heavy the head is; 0 gives uniform keys.
    """
    if num_keys <= 0:
        raise ValueError("num_keys must be positive")
    if skew <= 0:
        return rng.integers(0, num_keys, size=size)
    ranks = np.arange(1, num_keys + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, skew)
    weights /= weights.sum()
    return rng.choice(num_keys, size=size, p=weights)


def correlated_column(
    rng: np.random.Generator,
    base: np.ndarray,
    num_values: int,
    correlation: float,
) -> np.ndarray:
    """A column correlated with ``base``.

    With probability ``correlation`` a row copies ``base[row] % num_values``;
    otherwise it draws a uniform value.  ``correlation=1`` makes the columns
    functionally dependent, which is the worst case for independence-based
    selectivity estimation.
    """
    copied = np.mod(base, num_values)
    uniform = rng.integers(0, num_values, size=base.shape[0])
    mask = rng.random(base.shape[0]) < correlation
    return np.where(mask, copied, uniform)


def uniform_keys(rng: np.random.Generator, size: int, num_keys: int) -> np.ndarray:
    """``size`` uniform integer keys in ``[0, num_keys)``."""
    return rng.integers(0, num_keys, size=size)


def choice_strings(
    rng: np.random.Generator, size: int, values: list[str], weights: list[float] | None = None
) -> list[str]:
    """``size`` strings drawn from ``values`` with optional weights."""
    if weights is not None:
        probabilities = np.asarray(weights, dtype=np.float64)
        probabilities /= probabilities.sum()
        draws = rng.choice(len(values), size=size, p=probabilities)
    else:
        draws = rng.integers(0, len(values), size=size)
    return [values[int(i)] for i in draws]
