"""The UCB1 selection formula used by the UCT tree.

A child ``c`` of parent ``p`` is scored ``r_c + w * sqrt(log(v_p) / v_c)``
where ``r_c`` is the child's average reward, ``v_c``/``v_p`` are visit
counts, and ``w`` is the exploration weight.  ``w = sqrt(2)`` yields the
standard regret guarantee; SkinnerDB uses a tiny weight for Skinner-C
because its reward signal is much less noisy (paper §6.1).
"""

from __future__ import annotations

import math

#: Exploration weight with formal regret guarantees (used by Skinner-G/H).
DEFAULT_EXPLORATION_WEIGHT = math.sqrt(2.0)

#: Exploration weight used by Skinner-C (paper §6.1).
SKINNER_C_EXPLORATION_WEIGHT = 1e-6


def ucb_score(
    average_reward: float,
    visits: int,
    parent_visits: int,
    exploration_weight: float = DEFAULT_EXPLORATION_WEIGHT,
) -> float:
    """UCB1 score of a child node.

    Unvisited children receive an infinite score so they are always explored
    before any child is revisited.
    """
    if visits <= 0:
        return math.inf
    if parent_visits <= 0:
        return average_reward
    exploration = exploration_weight * math.sqrt(math.log(parent_visits) / visits)
    return average_reward + exploration
