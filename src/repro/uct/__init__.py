"""UCT (Upper Confidence bounds applied to Trees) for join ordering.

The search space is the space of left-deep join orders avoiding needless
Cartesian products (paper §4.2).  Each tree level chooses the next table of
the join order; leaves correspond to complete orders.  The tree is
materialized lazily, growing by at most one node per round, and node
statistics (visit counts, average rewards) drive the exploration /
exploitation trade-off via the UCB1 formula.
"""

from repro.uct.node import UctNode
from repro.uct.policy import ucb_score
from repro.uct.tree import UctJoinTree

__all__ = ["UctJoinTree", "UctNode", "ucb_score"]
