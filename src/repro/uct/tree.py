"""The UCT search tree over join orders.

Implements the two operations the paper's algorithms use as primitives
(§4.2):

* ``UctChoice(T)`` — :meth:`UctJoinTree.choose_order`: select a complete join
  order by walking from the root, using UCB1 where node statistics exist,
  random choices elsewhere, and materializing at most one new node.
* ``RewardUpdate(T, j, r)`` — :meth:`UctJoinTree.update`: register the reward
  observed for a join order in all materialized nodes on its path.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.query.join_graph import JoinGraph
from repro.uct.node import UctNode
from repro.uct.policy import DEFAULT_EXPLORATION_WEIGHT, ucb_score


class UctJoinTree:
    """A lazily materialized UCT tree over Cartesian-avoiding join orders."""

    def __init__(
        self,
        join_graph: JoinGraph,
        exploration_weight: float = DEFAULT_EXPLORATION_WEIGHT,
        seed: int | None = None,
    ) -> None:
        self._graph = join_graph
        self._weight = exploration_weight
        self._rng = random.Random(seed)
        self._root = UctNode(())
        self._num_tables = len(join_graph.aliases)
        self._selection_counts: dict[tuple[str, ...], int] = {}

    # ------------------------------------------------------------------
    # properties for analysis (Figures 7 and 8)
    # ------------------------------------------------------------------
    @property
    def root(self) -> UctNode:
        """The root node (empty join prefix)."""
        return self._root

    @property
    def exploration_weight(self) -> float:
        """The UCB1 exploration weight in use."""
        return self._weight

    def node_count(self) -> int:
        """Number of materialized nodes (Figure 7a / 8a)."""
        return self._root.subtree_size()

    def selection_counts(self) -> dict[tuple[str, ...], int]:
        """How often each complete join order was selected."""
        return dict(self._selection_counts)

    def top_orders(self, k: int) -> list[tuple[tuple[str, ...], int]]:
        """The ``k`` most frequently selected join orders with their counts."""
        ranked = sorted(self._selection_counts.items(), key=lambda item: item[1], reverse=True)
        return ranked[:k]

    # ------------------------------------------------------------------
    # UctChoice
    # ------------------------------------------------------------------
    def choose_order(self) -> tuple[str, ...]:
        """Select the join order to execute during the next time slice."""
        prefix: list[str] = []
        node: UctNode | None = self._root
        expanded_this_round = False
        while len(prefix) < self._num_tables:
            eligible = self._graph.eligible_next(prefix)
            if node is not None:
                unexplored = [action for action in eligible if action not in node.children]
                if unexplored:
                    action = self._rng.choice(unexplored)
                    if not expanded_this_round:
                        node = node.add_child(action)
                        expanded_this_round = True
                    else:
                        node = None
                else:
                    action = self._select_ucb(node, eligible)
                    node = node.child(action)
            else:
                action = self._rng.choice(eligible)
            prefix.append(action)
        order = tuple(prefix)
        self._selection_counts[order] = self._selection_counts.get(order, 0) + 1
        return order

    def _select_ucb(self, node: UctNode, eligible: Sequence[str]) -> str:
        parent_visits = max(1, node.visits)
        best_action = eligible[0]
        best_score = -float("inf")
        for action in eligible:
            child = node.child(action)
            assert child is not None  # caller ensured all eligible are materialized
            score = ucb_score(child.average_reward, child.visits, parent_visits, self._weight)
            if score > best_score:
                best_score = score
                best_action = action
        return best_action

    # ------------------------------------------------------------------
    # RewardUpdate
    # ------------------------------------------------------------------
    def update(self, order: Sequence[str], reward: float) -> None:
        """Register ``reward`` for ``order`` in all materialized path nodes."""
        if not 0.0 <= reward <= 1.0:
            reward = min(1.0, max(0.0, reward))
        node = self._root
        node.update(reward)
        for action in order:
            child = node.child(action)
            if child is None:
                break
            child.update(reward)
            node = child

    # ------------------------------------------------------------------
    # warm-starting (cross-query join-order cache)
    # ------------------------------------------------------------------
    def seed(self, order: Sequence[str], reward: float, visits: int = 1) -> None:
        """Pre-load the path of ``order`` with pseudo-visits of ``reward``.

        Materializes every node along the path and credits it with
        ``visits`` visits of average reward ``reward`` (clamped to [0, 1]),
        so the first real :meth:`choose_order` calls are biased toward join
        orders that worked well for earlier queries on the same join graph.

        Along the path, every *eligible sibling* is also materialized with
        a neutral one-visit prior: :meth:`choose_order` samples unexplored
        children before applying UCB1, so a path-only seed would still pay
        one episode per untried arm — exactly the cold-start cost the seed
        exists to skip.  A neutral sibling loses the UCB comparison against
        any seeded (or genuinely rewarding) arm but stays available as a
        fallback once the seeded pseudo-visits dilute.

        The pseudo-visits decay naturally: real rewards keep accumulating
        on the same counters, so a stale prior is overridden by observation.
        """
        if visits <= 0:
            return
        reward = min(1.0, max(0.0, reward))
        node = self._root
        node.seed(reward, visits)
        prefix: list[str] = []
        for action in order:
            for sibling in self._graph.eligible_next(prefix):
                if sibling != action and node.child(sibling) is None:
                    node.add_child(sibling).seed(0.0, 1)
            child = node.add_child(action)
            child.seed(reward, visits)
            node = child
            prefix.append(action)

    # ------------------------------------------------------------------
    # cross-tree statistic exchange (morsel-parallel episodes)
    # ------------------------------------------------------------------
    def order_stats(self, k: int | None = None) -> list[tuple[tuple[str, ...], int, float]]:
        """Selected orders with their visit counts and observed rewards.

        Returns ``(order, selections, mean_reward)`` triples sorted by
        selection count (descending, then order for determinism), where
        ``mean_reward`` is the average reward accumulated on the order's
        terminal path node.  This is the summary a morsel worker ships back
        to the coordinator so concurrent episodes contribute to one tree.
        """
        stats: list[tuple[tuple[str, ...], int, float]] = []
        for order, count in self._selection_counts.items():
            node: UctNode | None = self._root
            for action in order:
                node = node.child(action) if node is not None else None
                if node is None:
                    break
            reward = node.average_reward if node is not None and node.visits else 0.0
            stats.append((order, count, reward))
        stats.sort(key=lambda item: (-item[1], item[0]))
        return stats if k is None else stats[:k]

    def merge_stats(self, stats: Sequence[tuple[Sequence[str], int, float]]) -> None:
        """Fold another tree's :meth:`order_stats` into this one.

        Each ``(order, visits, reward)`` triple is credited via :meth:`seed`
        — the same pseudo-visit mechanism the cross-query join-order cache
        uses — so merged statistics bias future UCB1 choices exactly like
        locally observed episodes, and merging in a fixed order is
        deterministic.
        """
        for order, visits, reward in stats:
            key = tuple(order)
            self.seed(key, reward, int(visits))
            if visits > 0:
                # Unlike warm-start priors, these were real selections in a
                # sibling tree: keep them visible to top_orders().
                self._selection_counts[key] = (
                    self._selection_counts.get(key, 0) + int(visits)
                )

    # ------------------------------------------------------------------
    # inspection helpers
    # ------------------------------------------------------------------
    def best_order(self) -> tuple[str, ...]:
        """The join order the tree currently considers best (greedy descent).

        Follows the child with the highest average reward at every level,
        falling back to the most visited child and finally to a random
        eligible action where the tree is not materialized.  This is the
        "final join order selected by Skinner" used in Tables 3 and 4.
        """
        prefix: list[str] = []
        node: UctNode | None = self._root
        while len(prefix) < self._num_tables:
            eligible = self._graph.eligible_next(prefix)
            action: str
            if node is not None and node.children:
                visited = [a for a in eligible if node.child(a) is not None]
                if visited:
                    action = max(
                        visited,
                        key=lambda a: (node.child(a).average_reward, node.child(a).visits),
                    )
                else:
                    action = self._rng.choice(eligible)
                node = node.child(action)
            else:
                action = self._rng.choice(eligible)
                node = None
            prefix.append(action)
        return tuple(prefix)
