"""Nodes of the materialized UCT search tree."""

from __future__ import annotations


class UctNode:
    """One materialized node of the UCT tree.

    A node represents a join-order prefix.  Outgoing edges are labelled with
    the table alias chosen next; only edges that have been expanded carry a
    child node (the tree grows by at most one node per round).
    """

    __slots__ = ("prefix", "visits", "reward_sum", "children")

    def __init__(self, prefix: tuple[str, ...]) -> None:
        self.prefix = prefix
        self.visits = 0
        self.reward_sum = 0.0
        self.children: dict[str, UctNode] = {}

    @property
    def average_reward(self) -> float:
        """Mean reward of all rounds that passed through this node."""
        if self.visits == 0:
            return 0.0
        return self.reward_sum / self.visits

    def child(self, action: str) -> "UctNode | None":
        """The materialized child for ``action``, or ``None``."""
        return self.children.get(action)

    def add_child(self, action: str) -> "UctNode":
        """Materialize (or return the existing) child for ``action``."""
        node = self.children.get(action)
        if node is None:
            node = UctNode(self.prefix + (action,))
            self.children[action] = node
        return node

    def update(self, reward: float) -> None:
        """Record one visit with the given reward."""
        self.visits += 1
        self.reward_sum += reward

    def seed(self, reward: float, visits: int) -> None:
        """Bulk-record ``visits`` pseudo-visits of average reward ``reward``.

        Used to warm-start a tree from statistics learned by an earlier query
        on the same join graph; equivalent to ``visits`` calls to
        :meth:`update` without the per-call overhead.
        """
        if visits < 0:
            raise ValueError("visits must be non-negative")
        self.visits += visits
        self.reward_sum += reward * visits

    def subtree_size(self) -> int:
        """Number of materialized nodes in this subtree (including self)."""
        return 1 + sum(child.subtree_size() for child in self.children.values())

    def __repr__(self) -> str:
        return (
            f"UctNode(prefix={self.prefix}, visits={self.visits}, "
            f"avg={self.average_reward:.3f}, children={len(self.children)})"
        )
