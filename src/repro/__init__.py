"""repro — a from-scratch reproduction of SkinnerDB (SIGMOD 2019).

SkinnerDB evaluates queries without any a-priori cost or cardinality model:
it learns near-optimal join orders *during* the execution of the current
query with the UCT reinforcement-learning algorithm, bounding the regret
against an optimal join order.  This package implements the complete system
in Python — the column-store substrate, a SQL subset, the traditional
optimizer and adaptive baselines the paper compares against, the three
Skinner execution strategies, the benchmark workloads, and a harness that
regenerates every table and figure of the paper's evaluation.

Quick start (PEP 249 API, see ``docs/api.md``)::

    from repro import connect

    conn = connect()
    conn.create_table("r", {"id": [1, 2, 3], "x": [10, 20, 30]})
    conn.create_table("s", {"rid": [1, 1, 3], "y": [7, 8, 9]})
    cur = conn.cursor()
    cur.execute("SELECT r.x, s.y FROM r, s WHERE r.id = ?", (1,))
    for row in cur:
        print(row)

The classic one-object facade remains available::

    from repro import SkinnerDB

    db = SkinnerDB()
    db.create_table("r", {"id": [1, 2, 3], "x": [10, 20, 30]})
    result = db.execute("SELECT COUNT(*) AS n FROM r")
    print(result.rows, result.metrics.describe())
"""

from repro.api import (
    Connection,
    Cursor,
    EngineRegistry,
    EngineSpec,
    apilevel,
    connect,
    paramstyle,
    register_engine,
    threadsafety,
)
from repro.config import DEFAULT_CONFIG, SkinnerConfig
from repro.db import ENGINE_NAMES, SkinnerDB
from repro.errors import (
    BudgetExceeded,
    CatalogError,
    ExecutionError,
    InterfaceError,
    OperationalError,
    ParseError,
    PlanningError,
    ReproError,
    SchemaError,
)
from repro.query.parser import parse_query
from repro.query.query import Query
from repro.result import QueryMetrics, QueryResult
from repro.serving import QueryServer, SessionState
from repro.storage.table import Table

__version__ = "1.1.0"

__all__ = [
    "BudgetExceeded",
    "CatalogError",
    "Connection",
    "Cursor",
    "DEFAULT_CONFIG",
    "ENGINE_NAMES",
    "EngineRegistry",
    "EngineSpec",
    "ExecutionError",
    "InterfaceError",
    "OperationalError",
    "ParseError",
    "PlanningError",
    "Query",
    "QueryMetrics",
    "QueryResult",
    "QueryServer",
    "ReproError",
    "SessionState",
    "SchemaError",
    "SkinnerConfig",
    "SkinnerDB",
    "Table",
    "apilevel",
    "connect",
    "parse_query",
    "paramstyle",
    "register_engine",
    "threadsafety",
    "__version__",
]
