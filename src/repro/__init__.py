"""repro — a from-scratch reproduction of SkinnerDB (SIGMOD 2019).

SkinnerDB evaluates queries without any a-priori cost or cardinality model:
it learns near-optimal join orders *during* the execution of the current
query with the UCT reinforcement-learning algorithm, bounding the regret
against an optimal join order.  This package implements the complete system
in Python — the column-store substrate, a SQL subset, the traditional
optimizer and adaptive baselines the paper compares against, the three
Skinner execution strategies, the benchmark workloads, and a harness that
regenerates every table and figure of the paper's evaluation.

Quick start::

    from repro import SkinnerDB

    db = SkinnerDB()
    db.create_table("r", {"id": [1, 2, 3], "x": [10, 20, 30]})
    db.create_table("s", {"rid": [1, 1, 3], "y": [7, 8, 9]})
    result = db.execute("SELECT r.x, s.y FROM r, s WHERE r.id = s.rid")
    print(result.rows)
    print(result.metrics.describe())
"""

from repro.config import DEFAULT_CONFIG, SkinnerConfig
from repro.db import ENGINE_NAMES, SkinnerDB
from repro.errors import (
    BudgetExceeded,
    CatalogError,
    ExecutionError,
    ParseError,
    PlanningError,
    ReproError,
    SchemaError,
)
from repro.query.parser import parse_query
from repro.query.query import Query
from repro.result import QueryMetrics, QueryResult
from repro.serving import QueryServer, SessionState
from repro.storage.table import Table

__version__ = "1.0.0"

__all__ = [
    "BudgetExceeded",
    "CatalogError",
    "DEFAULT_CONFIG",
    "ENGINE_NAMES",
    "ExecutionError",
    "ParseError",
    "PlanningError",
    "Query",
    "QueryMetrics",
    "QueryResult",
    "QueryServer",
    "ReproError",
    "SessionState",
    "SchemaError",
    "SkinnerConfig",
    "SkinnerDB",
    "Table",
    "parse_query",
    "__version__",
]
