"""Running engine configurations over workloads."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.bench.metrics import QueryRecord
from repro.query.query import Query
from repro.result import QueryResult
from repro.workloads.generators import Workload, WorkloadQuery


@dataclass(frozen=True)
class EngineSpec:
    """A named engine configuration to benchmark.

    Attributes
    ----------
    name:
        Label used in the produced tables (e.g. ``"Skinner-C"``,
        ``"S-G(PG)"``, ``"Postgres"``).
    factory:
        Callable building the engine for a given workload; receives the
        workload and returns an object with ``execute(query, ...)``.
    supports_budget:
        Whether ``execute`` accepts the ``work_budget`` keyword used to
        emulate per-query timeouts.
    """

    name: str
    factory: Callable[[Workload], Any]
    supports_budget: bool = False


def run_query(
    spec: EngineSpec,
    workload: Workload,
    workload_query: WorkloadQuery | Query,
    *,
    work_budget: int | None = None,
) -> tuple[QueryRecord, QueryResult]:
    """Run one query on one engine configuration and record the metrics."""
    if isinstance(workload_query, WorkloadQuery):
        query = workload_query.query
        query_name = workload_query.name
    else:
        query = workload_query
        query_name = query.display()[:40]
    engine = spec.factory(workload)
    if spec.supports_budget and work_budget is not None:
        result = engine.execute(query, work_budget=work_budget)
    else:
        result = engine.execute(query)
    record = QueryRecord.from_metrics(spec.name, query_name, result.metrics)
    return record, result


def run_workload(
    specs: Sequence[EngineSpec],
    workload: Workload,
    *,
    queries: Sequence[str] | None = None,
    work_budget: int | None = None,
    verify_results: bool = False,
) -> list[QueryRecord]:
    """Run every engine over (a subset of) a workload's queries.

    Parameters
    ----------
    queries:
        Optional subset of query names; defaults to all.
    work_budget:
        Per-query timeout (work units) applied to engines that support it.
    verify_results:
        When True, asserts that all engines that completed a query returned
        the same number of result rows (a cheap cross-engine consistency
        check used by the integration tests).
    """
    selected = workload.queries
    if queries is not None:
        wanted = set(queries)
        selected = [q for q in workload.queries if q.name in wanted]
    records: list[QueryRecord] = []
    for workload_query in selected:
        row_counts: set[int] = set()
        for spec in specs:
            record, result = run_query(spec, workload, workload_query, work_budget=work_budget)
            records.append(record)
            if verify_results and not record.timed_out:
                row_counts.add(result.table.num_rows)
        if verify_results and len(row_counts) > 1:
            raise AssertionError(
                f"engines disagree on {workload_query.name}: row counts {sorted(row_counts)}"
            )
    return records
