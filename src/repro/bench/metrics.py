"""Per-query records and the aggregations the paper's tables report."""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.result import QueryMetrics


@dataclass(frozen=True)
class QueryRecord:
    """One (engine, query) execution."""

    engine: str
    query: str
    simulated_time: float
    intermediate_cardinality: int
    predicate_evaluations: int
    result_rows: int
    timed_out: bool = False
    final_join_order: tuple[str, ...] | None = None
    wall_time_seconds: float = 0.0

    @classmethod
    def from_metrics(cls, engine: str, query: str, metrics: QueryMetrics) -> "QueryRecord":
        """Build a record from an engine's reported metrics."""
        return cls(
            engine=engine,
            query=query,
            simulated_time=metrics.simulated_time,
            intermediate_cardinality=metrics.intermediate_cardinality,
            predicate_evaluations=metrics.work.predicate_evals + metrics.work.udf_invocations,
            result_rows=metrics.result_rows,
            timed_out=bool(metrics.extra.get("timed_out", False)),
            final_join_order=metrics.final_join_order,
            wall_time_seconds=metrics.wall_time_seconds,
        )


@dataclass(frozen=True)
class EngineSummary:
    """Aggregate of one engine over a whole workload (a Table 1 style row)."""

    engine: str
    total_time: float
    max_time: float
    total_cardinality: int
    max_cardinality: int
    queries: int
    timeouts: int

    def as_row(self) -> dict[str, object]:
        """Dictionary form used by the report formatter."""
        return {
            "Approach": self.engine,
            "Total Time": round(self.total_time, 1),
            "Max Time": round(self.max_time, 1),
            "Total Card.": self.total_cardinality,
            "Max Card.": self.max_cardinality,
            "Timeouts": self.timeouts,
        }


def aggregate_records(records: Sequence[QueryRecord]) -> list[EngineSummary]:
    """Aggregate per-query records into one summary row per engine."""
    by_engine: dict[str, list[QueryRecord]] = {}
    for record in records:
        by_engine.setdefault(record.engine, []).append(record)
    summaries = []
    for engine, engine_records in by_engine.items():
        summaries.append(EngineSummary(
            engine=engine,
            total_time=sum(r.simulated_time for r in engine_records),
            max_time=max(r.simulated_time for r in engine_records),
            total_cardinality=sum(r.intermediate_cardinality for r in engine_records),
            max_cardinality=max(r.intermediate_cardinality for r in engine_records),
            queries=len(engine_records),
            timeouts=sum(1 for r in engine_records if r.timed_out),
        ))
    return summaries


def relative_overheads(records: Sequence[QueryRecord]) -> dict[str, float]:
    """Per-engine maximum of (time / best time for that query) — Table 7's metric."""
    best_per_query: dict[str, float] = {}
    for record in records:
        best = best_per_query.get(record.query)
        if best is None or record.simulated_time < best:
            best_per_query[record.query] = record.simulated_time
    worst_ratio: dict[str, float] = {}
    for record in records:
        best = max(best_per_query[record.query], 1e-9)
        ratio = record.simulated_time / best
        if ratio > worst_ratio.get(record.engine, 0.0):
            worst_ratio[record.engine] = ratio
    return worst_ratio


def count_failures_and_disasters(
    records: Sequence[QueryRecord],
    *,
    metric: str = "time",
    failure_factor: float = 10.0,
    disaster_factor: float = 100.0,
) -> dict[str, dict[str, int]]:
    """Count optimizer failures and disasters per engine (Figure 11).

    A test case counts as a *failure* for an engine when its cost exceeds the
    best cost among all engines for that query by ``failure_factor``, and as
    a *disaster* at ``disaster_factor``.  ``metric`` selects simulated time
    or predicate-evaluation counts, mirroring the paper's two panels.
    """
    if metric not in ("time", "evaluations"):
        raise ValueError("metric must be 'time' or 'evaluations'")

    def value(record: QueryRecord) -> float:
        if metric == "time":
            return record.simulated_time
        return float(record.predicate_evaluations)

    best_per_query: dict[str, float] = {}
    for record in records:
        best = best_per_query.get(record.query)
        if best is None or value(record) < best:
            best_per_query[record.query] = value(record)
    counts: dict[str, dict[str, int]] = {}
    for record in records:
        entry = counts.setdefault(record.engine, {"failures": 0, "disasters": 0})
        best = max(best_per_query[record.query], 1e-9)
        ratio = value(record) / best
        if record.timed_out or ratio >= failure_factor:
            entry["failures"] += 1
        if record.timed_out or ratio >= disaster_factor:
            entry["disasters"] += 1
    return counts


def per_query_speedups(
    records: Sequence[QueryRecord], baseline: str, subject: str
) -> dict[str, float]:
    """Speedup of ``subject`` over ``baseline`` per query (Figure 6b)."""
    baseline_times: Mapping[str, float] = {
        r.query: r.simulated_time for r in records if r.engine == baseline
    }
    speedups: dict[str, float] = {}
    for record in records:
        if record.engine != subject or record.query not in baseline_times:
            continue
        speedups[record.query] = baseline_times[record.query] / max(record.simulated_time, 1e-9)
    return speedups


def time_share_of_top_queries(records: Sequence[QueryRecord], engine: str) -> list[float]:
    """Cumulative share of total time spent in the top-k most expensive queries.

    Element ``k-1`` of the returned list is the fraction of the engine's
    total time spent in its ``k`` most expensive queries (Figure 6a).
    """
    times = sorted(
        (r.simulated_time for r in records if r.engine == engine), reverse=True
    )
    total = sum(times) or 1.0
    shares: list[float] = []
    running = 0.0
    for value in times:
        running += value
        shares.append(running / total)
    return shares
