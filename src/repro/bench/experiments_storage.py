"""Cold-vs-warm-start benchmark for the durable storage backend.

A *cold* start parses CSV files, writes every column to ``data_dir``, and
commits; a *warm* start is a fresh connection over the same ``data_dir``
that must answer its first query without re-parsing anything — the catalog
recovers from disk and ``load_csv`` becomes a fingerprint check.  The
experiment measures both paths on the same workload and cross-checks the
acceptance properties on every run:

* the warm start performs **zero** CSV parses (``repro.storage.parse_count``
  is unchanged across the warm ingest);
* rows and meter charges are byte-identical across cold, warm, and a plain
  in-memory reference connection.

All on-disk state lives in one ``repro-bench-data-*`` temporary directory
that is removed on the way out (``benchmarks/conftest.py`` sweeps strays
should a run die mid-way).
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.api.connection import connect
from repro.config import SkinnerConfig
from repro.storage import parse_count
from repro.storage.loader import save_csv
from repro.storage.table import Table
from repro.workloads.generators import make_rng, uniform_keys

#: Modest slices, warm-start caching off: runs are order-independent, so
#: charge comparisons across the three connections are exact.
_BENCH_CONFIG = SkinnerConfig(slice_budget=200, serving_warm_start=False)

_TABLES = ("a", "b", "c")


def _write_workload_csvs(csv_dir: Path, tuples_per_table: int, seed: int) -> list[Path]:
    rng = make_rng(seed)
    num_keys = max(1, tuples_per_table // 6)
    paths = []
    for name in _TABLES:
        table = Table(name, {
            "k": uniform_keys(rng, tuples_per_table, num_keys),
            "v": uniform_keys(rng, tuples_per_table, 100),
        })
        path = csv_dir / f"{name}.csv"
        save_csv(table, path)
        paths.append(path)
    return paths


def _workload() -> list[tuple[str, str]]:
    return [
        ("q0_2way_selective",
         "SELECT a.v, b.v FROM a, b WHERE a.k = b.k AND a.v < 30"),
        ("q1_3way_chain",
         "SELECT a.v, c.v FROM a, b, c WHERE a.k = b.k AND b.k = c.k AND a.v < 10"),
        ("q2_aggregate",
         "SELECT a.v, COUNT(*) AS n FROM a, b WHERE a.k = b.k AND a.v < 20 "
         "GROUP BY a.v ORDER BY a.v"),
    ]


def _run_workload(connection) -> list[dict[str, Any]]:
    results = []
    for name, sql in _workload():
        result = connection.execute_direct(sql)
        names = result.table.column_names
        rows = sorted(
            tuple(row[column] for column in names) for row in result.table.rows()
        )
        results.append({
            "query": name,
            "rows": rows,
            "work": result.metrics.work,
            "simulated_time": result.metrics.simulated_time,
        })
    return results


def _ingest(connection, csv_paths: list[Path]) -> None:
    """Load every workload CSV and commit."""
    for path in csv_paths:
        connection.load_csv(path)
    connection.commit()


def cold_vs_warm_start(tuples_per_table: int = 3_000, seed: int = 31) -> dict[str, Any]:
    """Cold CSV ingest vs warm ``data_dir`` reopen on the same workload."""
    data_root = Path(tempfile.mkdtemp(prefix="repro-bench-data-"))
    try:
        csv_dir = data_root / "csv"
        csv_dir.mkdir()
        data_dir = data_root / "db"
        csv_paths = _write_workload_csvs(csv_dir, tuples_per_table, seed)

        # -- cold: parse CSVs, persist columns, answer the workload.
        cold_parses = parse_count()
        started = time.perf_counter()
        cold = connect(_BENCH_CONFIG, data_dir=data_dir)
        _ingest(cold, csv_paths)
        cold_load = time.perf_counter() - started
        cold_parses = parse_count() - cold_parses
        cold_results = _run_workload(cold)
        cold.close()

        # -- warm: a fresh connection over the same data_dir.  The same
        # load_csv calls must resolve via fingerprints without parsing.
        warm_parses = parse_count()
        started = time.perf_counter()
        warm = connect(_BENCH_CONFIG, data_dir=data_dir)
        _ingest(warm, csv_paths)
        warm_load = time.perf_counter() - started
        warm_parses = parse_count() - warm_parses
        if warm_parses != 0:
            raise AssertionError(
                f"warm start re-parsed {warm_parses} CSV files; expected 0"
            )
        warm_results = _run_workload(warm)
        warm.close()

        # -- in-memory reference: the A/B contract of the buffer manager.
        started = time.perf_counter()
        memory = connect(_BENCH_CONFIG)
        _ingest(memory, csv_paths)
        memory_load = time.perf_counter() - started
        memory_results = _run_workload(memory)
        memory.close()

        for cold_r, warm_r, memory_r in zip(cold_results, warm_results, memory_results):
            name = cold_r["query"]
            if not (cold_r["rows"] == warm_r["rows"] == memory_r["rows"]):
                raise AssertionError(f"{name}: rows diverge across storage backends")
            if not (cold_r["work"] == warm_r["work"] == memory_r["work"]):
                raise AssertionError(f"{name}: charges diverge across storage backends")

        rows = [
            {
                "Start": label,
                "Ingest (s)": round(seconds, 4),
                "CSV parses": parses,
                "Result rows": sum(len(r["rows"]) for r in results),
            }
            for label, seconds, parses, results in (
                ("cold (parse + persist)", cold_load, cold_parses, cold_results),
                ("warm (data_dir reopen)", warm_load, 0, warm_results),
                ("in-memory reference", memory_load, len(csv_paths), memory_results),
            )
        ]
        records = [
            {"query": r["query"], "result_rows": len(r["rows"]),
             "simulated_time": r["simulated_time"]}
            for r in cold_results
        ]
        return {
            "title": f"Cold vs warm start ({tuples_per_table} tuples/table)",
            "rows": rows,
            "records": records,
            "warm_parses": warm_parses,
            "warm_speedup": round(cold_load / max(warm_load, 1e-9), 2),
            "parameters": {"tuples_per_table": tuples_per_table, "seed": seed},
        }
    finally:
        shutil.rmtree(data_root, ignore_errors=True)
