"""Post-processing micro-benchmark: columnar pipeline vs row pipeline.

PR 1 vectorized the multi-way join, which moved the bottleneck downstream
into post-processing.  This experiment isolates that stage: it materializes
one large join result (a row-id relation over a single wide table) and runs
aggregation-, DISTINCT-, and ORDER-BY-heavy queries through
:func:`repro.engine.postprocess.post_process` in both ``postprocess_mode``
settings, reporting wall time per query and the columnar speedup.  Outputs
are cross-checked for equality on every run, so the speedup numbers are
always backed by identical results.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.engine.postprocess import post_process
from repro.engine.relation import RowIdRelation
from repro.query.expressions import ColumnRef, FunctionCall, Literal, Star
from repro.query.query import AggregateSpec, OrderItem, Query, SelectItem, make_query
from repro.storage.table import Table
from repro.workloads.generators import choice_strings, make_rng, uniform_keys, zipf_keys

_CATEGORIES = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]


def _build_table(tuples_per_table: int, groups: int, seed: int) -> Table:
    rng = make_rng(seed)
    # Dyadic weights keep float sums exact in any accumulation order, so the
    # equality cross-check between the two pipelines is bitwise.
    weights = uniform_keys(rng, tuples_per_table, 64).astype(np.float64) / 4.0
    return Table("facts", {
        "key": zipf_keys(rng, tuples_per_table, max(1, groups), skew=0.8),
        "val": uniform_keys(rng, tuples_per_table, 1000),
        "weight": weights,
        "cat": choice_strings(rng, tuples_per_table, _CATEGORIES),
    })


def _queries() -> dict[str, Query]:
    f = ("f", "facts")
    revenue = FunctionCall("mul", (ColumnRef("f", "val"), ColumnRef("f", "weight")))
    return {
        "group_aggregate": make_query(
            [f],
            select_items=[
                SelectItem(expression=ColumnRef("f", "key"), alias="key"),
                SelectItem(aggregate=AggregateSpec("count", Star()), alias="n"),
                SelectItem(aggregate=AggregateSpec("sum", ColumnRef("f", "val")),
                           alias="total"),
                SelectItem(aggregate=AggregateSpec("avg", ColumnRef("f", "weight")),
                           alias="mean_weight"),
                SelectItem(aggregate=AggregateSpec("min", ColumnRef("f", "val")), alias="lo"),
                SelectItem(aggregate=AggregateSpec("max", ColumnRef("f", "val")), alias="hi"),
            ],
            group_by=[ColumnRef("f", "key")],
            order_by=[OrderItem(ColumnRef("f", "total"), ascending=False)],
        ),
        "computed_distinct": make_query(
            [f],
            select_items=[
                SelectItem(expression=ColumnRef("f", "cat"), alias="cat"),
                SelectItem(expression=FunctionCall("mod", (ColumnRef("f", "val"),
                                                           Literal(16))),
                           alias="bucket"),
            ],
            distinct=True,
            order_by=[OrderItem(ColumnRef("f", "cat")),
                      OrderItem(ColumnRef("f", "bucket"), ascending=False)],
        ),
        "top_k_projection": make_query(
            [f],
            select_items=[
                SelectItem(expression=ColumnRef("f", "key"), alias="key"),
                SelectItem(expression=revenue, alias="revenue"),
                SelectItem(expression=ColumnRef("f", "cat"), alias="cat"),
            ],
            order_by=[OrderItem(ColumnRef("f", "revenue"), ascending=False),
                      OrderItem(ColumnRef("f", "key"))],
            limit=100,
        ),
    }


def _assert_equal_outputs(expected: Table, actual: Table, label: str) -> None:
    if expected.column_names != actual.column_names:
        raise AssertionError(f"{label}: column names diverge")
    for name in expected.column_names:
        if expected.column(name).values() != actual.column(name).values():
            raise AssertionError(f"{label}: column {name!r} diverges between modes")


def postprocess_pipeline(
    tuples_per_table: int = 150_000,
    groups: int = 256,
    seed: int = 7,
    repetitions: int = 3,
) -> dict[str, Any]:
    """Columnar vs row post-processing over one large materialized join result."""
    table = _build_table(tuples_per_table, groups, seed)
    relation = RowIdRelation.from_base("f", np.arange(table.num_rows, dtype=np.int64))
    tables = {"f": table}

    rows: list[dict[str, Any]] = []
    speedups: dict[str, float] = {}
    for name, query in _queries().items():
        timings: dict[str, float] = {}
        outputs: dict[str, Table] = {}
        for mode in ("rows", "columnar"):
            best = float("inf")
            for _ in range(max(1, repetitions)):
                started = time.perf_counter()
                outputs[mode] = post_process(query, relation, tables, mode=mode)
                best = min(best, time.perf_counter() - started)
            timings[mode] = best
        _assert_equal_outputs(outputs["rows"], outputs["columnar"], name)
        speedup = timings["rows"] / max(timings["columnar"], 1e-9)
        speedups[name] = speedup
        rows.append({
            "Query": name,
            "Rows In": table.num_rows,
            "Rows Out": outputs["columnar"].num_rows,
            "Row Path (ms)": round(timings["rows"] * 1e3, 2),
            "Columnar (ms)": round(timings["columnar"] * 1e3, 2),
            "Speedup": round(speedup, 2),
        })
    return {
        "title": "Post-processing: columnar pipeline vs row pipeline",
        "rows": rows,
        "speedups": speedups,
        "parameters": {"tuples_per_table": tuples_per_table, "groups": groups,
                       "seed": seed, "repetitions": repetitions},
    }
