"""Concurrent-serving benchmark: episode-sliced scheduler vs FIFO execution.

Two measurements on the deterministic work-unit clock (no wall-clock noise):

* **Time-to-first-result under head-of-line blocking.**  A mixed 8-query
  workload — one expensive 3-way join submitted first, then seven cheap
  queries across Skinner-C/G/H — is executed (a) FIFO one-at-a-time, the
  only mode the repository supported before the serving subsystem, and (b)
  through the :class:`~repro.serving.server.QueryServer`'s fair episode
  scheduler.  A query's time-to-first-result (TTFR) is the shared virtual
  clock (total work units consumed by the whole workload) at the moment the
  query completes.  FIFO makes every cheap query wait for the expensive
  one; the episode scheduler interleaves, so the cheap queries finish
  almost as if the heavy one did not exist.  Reported is the p95 TTFR
  (nearest-lower-rank percentile over the 8 queries).  Every run
  cross-checks that the served results are **byte-identical** to the solo
  runs — same tables, same per-query meter charges — so the speedup is
  never bought with divergent answers.

* **Warm-starting from the join-order cache.**  A repeated-template
  workload (same join graph, different unary predicates) runs through two
  servers: one with ``serving_warm_start`` off, one seeding each query's
  UCT tree from the orders its predecessors learned.  Reported is the
  total-makespan ratio (warm / cold, lower is better).
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.config import SkinnerConfig
from repro.optimizer.statistics import StatisticsCatalog
from repro.query.parser import parse_query
from repro.serving.server import QueryServer
from repro.skinner.skinner_c import SkinnerC
from repro.skinner.skinner_g import SkinnerG
from repro.skinner.skinner_h import SkinnerH
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.generators import make_rng, uniform_keys

#: Serving configuration of the benchmark: defaults, warm start disabled so
#: the mixed-workload comparison is exactly solo-equivalent.
_BENCH_CONFIG = SkinnerConfig(serving_warm_start=False, serving_max_inflight=8)


def _build_catalog(tuples_per_table: int, seed: int) -> Catalog:
    """Big chain-joinable tables, a small dimension table, and a 6-chain.

    ``big0..big2`` (``~3x`` join fan-out) power the expensive analytics
    query of the mixed workload; ``dim`` powers the cheap lookups; and the
    six ``c0..c5`` chain tables power the repeated-template warm-start
    workload (a join graph large enough that cold-start exploration costs
    real work).
    """
    rng = make_rng(seed)
    catalog = Catalog()
    num_keys = max(1, tuples_per_table // 3)  # ~3x fan-out per key
    for index in range(3):
        catalog.add_table(Table(f"big{index}", {
            "k": uniform_keys(rng, tuples_per_table, num_keys),
            "g": uniform_keys(rng, tuples_per_table, 8),
            "v": uniform_keys(rng, tuples_per_table, 1000),
        }))
    dim_rows = max(4, tuples_per_table // 20)
    catalog.add_table(Table("dim", {
        "g": uniform_keys(rng, dim_rows, 8),
        "name": [f"g{int(value) % 8}" for value in uniform_keys(rng, dim_rows, 8)],
    }))
    chain_rows = max(8, tuples_per_table // 10)
    chain_keys = max(1, chain_rows // 2)
    for index in range(6):
        catalog.add_table(Table(f"c{index}", {
            "k": uniform_keys(rng, chain_rows, chain_keys),
            "k2": uniform_keys(rng, chain_rows, chain_keys),
            "v": uniform_keys(rng, chain_rows, 1000),
        }))
    return catalog


def _workload() -> list[tuple[str, str, str]]:
    """The mixed 8-query workload: (name, engine, sql), heavy query first."""
    heavy = ("SELECT COUNT(*) AS n FROM big0 b0, big1 b1, big2 b2 "
             "WHERE b0.k = b1.k AND b1.k = b2.k")
    lights = [
        "SELECT d.g, COUNT(*) AS n FROM dim d GROUP BY d.g",
        "SELECT COUNT(*) AS n FROM big0 b0, dim d WHERE b0.g = d.g AND b0.v < 25",
        "SELECT b1.v FROM big1 b1 WHERE b1.v < 20 ORDER BY b1.v LIMIT 5",
        "SELECT COUNT(*) AS n FROM big1 b1, dim d WHERE b1.g = d.g AND b1.v < 15",
        "SELECT DISTINCT d.name FROM dim d",
    ]
    queries = [("q0_heavy_3way", "skinner-c", heavy)]
    queries += [(f"q{i + 1}_light", "skinner-c", sql) for i, sql in enumerate(lights)]
    queries.append((
        "q6_light_g", "skinner-g",
        "SELECT COUNT(*) AS n FROM big2 b2, dim d WHERE b2.g = d.g AND b2.v < 20",
    ))
    queries.append((
        "q7_light_h", "skinner-h",
        "SELECT COUNT(*) AS n FROM big2 b2 WHERE b2.v < 60",
    ))
    return queries


def _solo_result(catalog: Catalog, sql: str, engine: str, config: SkinnerConfig,
                 statistics: StatisticsCatalog):
    query = parse_query(sql, catalog)
    if engine == "skinner-c":
        return SkinnerC(catalog, None, config).execute(query)
    if engine == "skinner-g":
        return SkinnerG(catalog, None, config).execute(query)
    return SkinnerH(catalog, None, config, statistics=statistics).execute(query)


def _assert_identical(name: str, solo, served) -> None:
    if solo.metrics.work != served.metrics.work:
        raise AssertionError(f"{name}: meter charges diverge between solo and served runs")
    solo_table, served_table = solo.table, served.table
    if solo_table.column_names != served_table.column_names:
        raise AssertionError(f"{name}: result schemas diverge")
    for column in solo_table.column_names:
        left, right = solo_table.column(column).values(), served_table.column(column).values()
        if left != right:
            raise AssertionError(f"{name}: result values of {column!r} diverge")


def _p95_lower(values: list[int]) -> float:
    """Nearest-lower-rank 95th percentile (deterministic, small-n friendly)."""
    return float(np.percentile(np.asarray(values, dtype=np.float64), 95, method="lower"))


def concurrent_serving(
    tuples_per_table: int = 3_000,
    seed: int = 17,
    template_queries: int = 6,
) -> dict[str, Any]:
    """Serving scheduler vs FIFO on TTFR, plus join-order warm-start gains."""
    catalog = _build_catalog(tuples_per_table, seed)
    config = _BENCH_CONFIG
    statistics = StatisticsCatalog.collect(catalog)
    workload = _workload()

    # -- FIFO one-at-a-time: every query waits for all earlier submissions.
    solo_results: dict[str, Any] = {}
    fifo_ttfr: dict[str, int] = {}
    clock = 0
    fifo_started = time.perf_counter()
    for name, engine, sql in workload:
        result = _solo_result(catalog, sql, engine, config, statistics)
        solo_results[name] = result
        clock += result.metrics.work.total
        fifo_ttfr[name] = clock
    fifo_seconds = time.perf_counter() - fifo_started

    # -- Episode-sliced serving: all eight in flight, fair interleaving.
    server = QueryServer(catalog, config=config,
                         statistics_provider=lambda: statistics)
    served_started = time.perf_counter()
    tickets = {name: server.submit(sql, engine=engine, use_result_cache=False)
               for name, engine, sql in workload}
    server.drain()
    served_seconds = time.perf_counter() - served_started
    served_ttfr: dict[str, int] = {}
    rows: list[dict[str, Any]] = []
    records: list[dict[str, Any]] = []
    for name, engine, _sql in workload:
        served = server.result(tickets[name])
        _assert_identical(name, solo_results[name], served)
        ttfr = server.session(tickets[name]).completed_at_work
        assert ttfr is not None
        served_ttfr[name] = ttfr
        rows.append({
            "Query": name,
            "Engine": engine,
            "Work": solo_results[name].metrics.work.total,
            "FIFO TTFR": fifo_ttfr[name],
            "Served TTFR": ttfr,
            "TTFR Gain": round(fifo_ttfr[name] / max(1, ttfr), 2),
        })
        records.append({
            "query": name,
            "engine": engine,
            "simulated_time": solo_results[name].metrics.simulated_time,
            "result_rows": solo_results[name].metrics.result_rows,
        })

    fifo_p95 = _p95_lower(list(fifo_ttfr.values()))
    served_p95 = _p95_lower(list(served_ttfr.values()))
    p95_speedup = fifo_p95 / max(1.0, served_p95)

    # -- Warm start: repeated-template workload, cold vs seeded UCT trees.
    # Six chain tables: a join-order space with dozens of eligible orders,
    # so a cold UCT tree pays several episodes sampling bad orders before
    # it concentrates — exactly the episodes the seeded tree skips.
    joins = " AND ".join(f"c{i}.k = c{i + 1}.k2" for i in range(5))
    template = ("SELECT COUNT(*) AS n FROM c0, c1, c2, c3, c4, c5 "
                f"WHERE {joins} AND c0.v < {{threshold}}")
    thresholds = [60 + 10 * i for i in range(template_queries)]

    def template_makespan(warm: bool) -> int:
        cfg = config.with_overrides(serving_warm_start=warm)
        template_server = QueryServer(catalog, config=cfg,
                                      statistics_provider=lambda: statistics)
        for threshold in thresholds:
            template_server.result(template_server.submit(
                template.format(threshold=threshold), use_result_cache=False))
        return template_server.ledger.grand_total()

    cold_makespan = template_makespan(warm=False)
    warm_makespan = template_makespan(warm=True)
    warm_ratio = warm_makespan / max(1, cold_makespan)

    rows.append({
        "Query": f"template x{template_queries} (cold)", "Engine": "skinner-c",
        "Work": cold_makespan, "FIFO TTFR": cold_makespan,
        "Served TTFR": cold_makespan, "TTFR Gain": 1.0,
    })
    rows.append({
        "Query": f"template x{template_queries} (warm)", "Engine": "skinner-c",
        "Work": warm_makespan, "FIFO TTFR": cold_makespan,
        "Served TTFR": warm_makespan,
        "TTFR Gain": round(cold_makespan / max(1, warm_makespan), 2),
    })

    return {
        "title": "Concurrent serving: episode-sliced scheduler vs FIFO",
        "rows": rows,
        "records": records,
        "fifo_p95_ttfr": fifo_p95,
        "served_p95_ttfr": served_p95,
        "p95_speedup": round(p95_speedup, 2),
        "cold_makespan": cold_makespan,
        "warm_makespan": warm_makespan,
        "warm_start_makespan_ratio": round(warm_ratio, 4),
        "wall_seconds": {"fifo": round(fifo_seconds, 3), "served": round(served_seconds, 3)},
        "parameters": {"tuples_per_table": tuples_per_table, "seed": seed,
                       "template_queries": template_queries},
    }
