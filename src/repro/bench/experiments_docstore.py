"""XPath-axes workload: learned join ordering vs the traditional optimizer.

Axis paths over a shredded node table are the estimator's worst case by
construction: every alias of the self-join binds the *same* relation, so
per-column statistics describe the *marginal* tag/value distributions
only.  String equality is priced at one-in-distinct, so a praise comment
that covers most reviews looks unique; range predicates are priced on the
marginal ``val_num`` histogram, where view counters and prices drown the
rating scale, so the genuinely rare ``rating >= 5`` looks broad.  The
traditional optimizer anchors its one static plan on the falsely
selective end and drives the nested-loop ancestor/descendant joins with a
fat outer; Skinner-C learns the order from executed episodes and pays no
estimation tax.

The experiment runs every query of the generated workload
(:func:`repro.docstore.workload.make_docstore_workload`) on both engines,
cross-checks byte-identical rows, totals the deterministic work clock
(``simulated_time``), and asserts the learned engine is strictly cheaper
in aggregate — the gate in ``benchmarks/baseline.json`` then pins the
fingerprint so regressions cannot ship silently.
"""

from __future__ import annotations

import time
from typing import Any

from repro.api.connection import connect
from repro.config import SkinnerConfig
from repro.docstore.workload import make_docstore_workload

_ENGINES = ("traditional", "skinner-c")

#: Small episode budgets: enough learning signal on the smoke-sized forest
#: without inflating the work clock on the full one.
_BENCH_CONFIG = SkinnerConfig(
    batches_per_table=4,
    base_timeout=120,
    serving_warm_start=False,
    seed=42,
)


def _result_rows(result) -> list[tuple]:
    return sorted(tuple(row.values()) for row in result.rows)


def docstore_axes(
    documents: int = 6,
    items_per_document: int = 18,
    depth: int = 2,
    seed: int = 7,
) -> dict[str, Any]:
    """Every axes template on traditional vs Skinner-C, work-clock totals."""
    workload = make_docstore_workload(
        documents=documents, items_per_document=items_per_document,
        depth=depth, seed=seed,
    )
    connection = connect(_BENCH_CONFIG)
    try:
        connection.add_table(workload.catalog.table("doc_nodes"))
        connection.commit()
        totals = {engine: 0 for engine in _ENGINES}
        walls = {engine: 0.0 for engine in _ENGINES}
        records: list[dict[str, Any]] = []
        for entry in workload.queries:
            rows_seen: dict[str, list[tuple]] = {}
            for engine in _ENGINES:
                started = time.perf_counter()
                result = connection.execute_direct(entry.query, engine=engine)
                walls[engine] += time.perf_counter() - started
                rows_seen[engine] = _result_rows(result)
                totals[engine] += result.metrics.simulated_time
                records.append({
                    "query": entry.name,
                    "engine": engine,
                    "simulated_time": result.metrics.simulated_time,
                    "work": result.metrics.work,
                    "result_rows": len(result.rows),
                })
            if rows_seen["traditional"] != rows_seen["skinner-c"]:
                raise AssertionError(
                    f"{entry.name}: engines disagree on the result rows"
                )
        speedup = totals["traditional"] / max(1, totals["skinner-c"])
        if speedup <= 1.0:
            raise AssertionError(
                f"Skinner-C (work {totals['skinner-c']}) does not beat the "
                f"traditional optimizer (work {totals['traditional']}) on "
                "the axes workload"
            )
        rows = [
            {
                "engine": engine,
                "work_clock": totals[engine],
                "wall_seconds": round(walls[engine], 4),
            }
            for engine in _ENGINES
        ]
        return {
            "title": "XPath axes self-joins: traditional vs Skinner-C",
            "rows": rows,
            "records": records,
            "queries": len(workload.queries),
            "node_rows": workload.catalog.table("doc_nodes").num_rows,
            "speedup_learned_vs_traditional": round(speedup, 3),
            "parameters": dict(workload.parameters),
        }
    finally:
        connection.close()
