"""Standard engine configurations used by the experiment drivers."""

from __future__ import annotations

from repro.baselines.eddy import EddyEngine
from repro.baselines.reoptimizer import ReOptimizerEngine
from repro.baselines.traditional import TraditionalEngine
from repro.bench.harness import EngineSpec
from repro.config import DEFAULT_CONFIG, SkinnerConfig
from repro.skinner.skinner_c import SkinnerC
from repro.skinner.skinner_g import SkinnerG
from repro.skinner.skinner_h import SkinnerH
from repro.workloads.generators import Workload

#: Skinner configuration used by the benchmark harness.  The paper's default
#: time-slice budget is 500 multi-way-join iterations against IMDb-scale
#: data; the synthetic workloads here are roughly three orders of magnitude
#: smaller, so the per-slice budget is scaled down accordingly (exploration
#: would otherwise dominate, see DESIGN.md §1).
BENCH_CONFIG = DEFAULT_CONFIG.with_overrides(slice_budget=100, batches_per_table=8,
                                             base_timeout=1_500)


def skinner_c_spec(
    name: str = "Skinner-C",
    config: SkinnerConfig = BENCH_CONFIG,
    *,
    threads: int = 1,
) -> EngineSpec:
    """Skinner-C with the benchmark configuration."""
    return EngineSpec(
        name=name,
        factory=lambda w: SkinnerC(w.catalog, w.udfs, config, threads=threads),
    )


def traditional_spec(
    name: str,
    profile: str,
    *,
    optimizer: str = "dp",
    threads: int = 1,
) -> EngineSpec:
    """A traditional optimizer + executor under the given engine profile."""
    return EngineSpec(
        name=name,
        factory=lambda w: TraditionalEngine(
            w.catalog, w.udfs, profile=profile, optimizer=optimizer, threads=threads
        ),
        supports_budget=True,
    )


def skinner_g_spec(
    name: str,
    profile: str,
    config: SkinnerConfig = BENCH_CONFIG,
    *,
    threads: int = 1,
) -> EngineSpec:
    """Skinner-G on top of a generic engine profile."""
    return EngineSpec(
        name=name,
        factory=lambda w: SkinnerG(w.catalog, w.udfs, config,
                                   dbms_profile=profile, threads=threads),
    )


def skinner_h_spec(
    name: str,
    profile: str,
    config: SkinnerConfig = BENCH_CONFIG,
    *,
    threads: int = 1,
) -> EngineSpec:
    """Skinner-H on top of a generic engine profile."""
    return EngineSpec(
        name=name,
        factory=lambda w: SkinnerH(w.catalog, w.udfs, config,
                                   dbms_profile=profile, threads=threads),
    )


def eddy_spec(name: str = "Eddy") -> EngineSpec:
    """The Eddies-style adaptive baseline."""
    return EngineSpec(
        name=name,
        factory=lambda w: EddyEngine(w.catalog, w.udfs),
        supports_budget=True,
    )


def reoptimizer_spec(name: str = "Reoptimizer") -> EngineSpec:
    """The sampling-based re-optimization baseline."""
    return EngineSpec(
        name=name,
        factory=lambda w: ReOptimizerEngine(w.catalog, w.udfs),
        supports_budget=True,
    )


def optimizer_spec(name: str = "Optimizer") -> EngineSpec:
    """The traditional optimizer on the same (Java-style) engine as Skinner.

    The appendix experiments compare baselines that share Skinner's execution
    engine; this spec pairs the estimate-based optimizer with the ``skinner``
    engine profile for that purpose.
    """
    return traditional_spec(name, profile="skinner")


def job_single_threaded_specs() -> list[EngineSpec]:
    """The seven configurations of Table 1."""
    return [
        skinner_c_spec("Skinner-C"),
        traditional_spec("Postgres", "postgres"),
        skinner_g_spec("S-G(PG)", "postgres"),
        skinner_h_spec("S-H(PG)", "postgres"),
        traditional_spec("MonetDB", "monetdb"),
        skinner_g_spec("S-G(MDB)", "monetdb"),
        skinner_h_spec("S-H(MDB)", "monetdb"),
    ]


def job_multi_threaded_specs(threads: int = 8, *, workers: int = 1) -> list[EngineSpec]:
    """The four configurations of Table 2.

    ``workers > 1`` runs Skinner-C morsel-parallel over that many worker
    processes (rows and meter charges are byte-identical by design, only
    wall-clock changes); the baselines model parallelism through the
    simulated-time ``threads`` knob as before.
    """
    config = BENCH_CONFIG if workers <= 1 else BENCH_CONFIG.with_overrides(
        parallel_workers=workers
    )
    return [
        skinner_c_spec("Skinner-C", config, threads=threads),
        traditional_spec("MonetDB", "monetdb", threads=threads),
        skinner_g_spec("S-G(MDB)", "monetdb", threads=threads),
        skinner_h_spec("S-H(MDB)", "monetdb", threads=threads),
    ]


def torture_specs() -> list[EngineSpec]:
    """The baseline set used by the appendix micro-benchmarks (Figures 9-12)."""
    return [
        skinner_c_spec("Skinner-C"),
        eddy_spec(),
        optimizer_spec(),
        reoptimizer_spec(),
        traditional_spec("Postgres", "postgres"),
        skinner_g_spec("S-G(PG)", "postgres"),
        skinner_h_spec("S-H(PG)", "postgres"),
        traditional_spec("Com-DB", "commercial"),
        skinner_g_spec("S-G(Com-DB)", "commercial"),
        skinner_h_spec("S-H(Com-DB)", "commercial"),
        traditional_spec("MonetDB", "monetdb"),
    ]


def _all_specs(workload: Workload) -> None:  # pragma: no cover - import guard helper
    """Placeholder keeping Workload referenced for type checkers."""
