"""Plain-text rendering of benchmark tables and series."""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any


def format_table(title: str, rows: Sequence[Mapping[str, Any]]) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(no data)\n"
    columns = list(rows[0].keys())
    widths = {column: len(str(column)) for column in columns}
    rendered_rows = []
    for row in rows:
        rendered = {column: _render(row.get(column, "")) for column in columns}
        rendered_rows.append(rendered)
        for column in columns:
            widths[column] = max(widths[column], len(rendered[column]))
    lines = [title]
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for rendered in rendered_rows:
        lines.append(" | ".join(rendered[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines) + "\n"


def format_series(title: str, series: Mapping[str, Sequence[Any]]) -> str:
    """Render named series (e.g. per-query values) as labelled lists."""
    lines = [title]
    for name, values in series.items():
        rendered = ", ".join(_render(value) for value in values)
        lines.append(f"  {name}: [{rendered}]")
    return "\n".join(lines) + "\n"


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, tuple):
        return " ".join(str(v) for v in value)
    return str(value)
