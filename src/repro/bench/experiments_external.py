"""Skinner-G on an external DBMS vs the host optimizer's own plan.

The claim behind Skinner-G (paper §3, Table 1): a learned join order forced
onto an existing database can beat the plan that database's optimizer
picks, because the optimizer trusts cardinality estimates the data
violates.  This experiment builds the trap explicitly:

* ``t0`` is the fat end of a high-fanout join with ``t1``, dressed up with
  three wide range predicates (``a < 10**6 AND b < 10**6 AND c < 10**6``)
  that keep every row but *look* selective to an estimator that assumes
  independent, uniform filters;
* ``t2`` is the genuinely selective end — one modest-looking predicate
  keeps a single row — so every cheap plan starts there.

sqlite's planner (no ``ANALYZE``; the mirror is a scratch database) takes
the bait and drives the join from ``t0``; ``skinner_g_sqlite`` learns the
``t2``-first order from batch completions alone.  Both plans then run to
completion on the same mirror and are priced on the adapter's
deterministic work clock (progress ticks + delivered rows), and the
experiment asserts the learned order is strictly cheaper.  Rows are
cross-checked byte-identical between the external engine, the internal
Skinner-G, and both forced full-query plans.
"""

from __future__ import annotations

import time
from typing import Any

from repro.api.connection import connect
from repro.config import SkinnerConfig
from repro.external.emitter import SqlEmitter
from repro.external.engines import sqlite_adapter_for

#: Small batch budget so fat-end batches overrun low pyramid levels while
#: ``t2``-first batches complete — that contrast *is* the learning signal.
_BENCH_CONFIG = SkinnerConfig(
    batches_per_table=5,
    base_timeout=80,
    serving_warm_start=False,
    seed=42,
)

_SQL = (
    "SELECT t0.a, t2.v2 FROM t0, t1, t2 "
    "WHERE t0.k1 = t1.k1 AND t1.k2 = t2.k2 "
    "AND t0.a < 1000000 AND t0.b < 1000000 AND t0.c < 1000000 "
    "AND t2.v2 < 1"
)


def _build_tables(connection, tuples_per_table: int) -> None:
    """The fanout trap: t0 x30 t1 (fat), t1 -> t2 (one surviving row)."""
    n = tuples_per_table
    keys = max(2, n // 30)
    m = max(4, n // 4)
    connection.create_table("t0", {
        "k1": [i % keys for i in range(n)],
        "a": list(range(n)),
        "b": list(range(n)),
        "c": list(range(n)),
    }, replace=True)
    connection.create_table("t1", {
        "k1": [i % keys for i in range(n)],
        "k2": list(range(n)),
    }, replace=True)
    connection.create_table("t2", {
        "k2": [i * 2 for i in range(m)],
        "v2": list(range(m)),
    }, replace=True)
    connection.commit()


def _result_rows(result) -> list[tuple]:
    return sorted(tuple(row.values()) for row in result.rows)


def external_sqlite(tuples_per_table: int = 400) -> dict[str, Any]:
    """Learned-order-on-sqlite vs sqlite's default plan on the trap workload."""
    connection = connect(_BENCH_CONFIG)
    try:
        _build_tables(connection, tuples_per_table)
        query = connection.parse(_SQL)

        started = time.perf_counter()
        external = connection.execute_direct(query, engine="skinner_g_sqlite")
        external_wall = time.perf_counter() - started
        internal = connection.execute_direct(query, engine="skinner-g")
        if _result_rows(external) != _result_rows(internal):
            raise AssertionError("external and internal Skinner-G rows differ")

        learned_order = external.metrics.final_join_order
        adapter = sqlite_adapter_for(connection.catalog)
        emitter = SqlEmitter(connection.catalog, query)

        def plan_cost(order):
            """Full-query cost of one plan on the deterministic work clock."""
            sql, params = emitter.join_sql(order)
            outcome = adapter.run_batch(sql, params, budget=None)
            return outcome.ticks + outcome.delivered, outcome

        learned_cost, learned_outcome = plan_cost(learned_order)
        default_cost, default_outcome = plan_cost(None)
        if sorted(learned_outcome.rows) != sorted(default_outcome.rows):
            raise AssertionError("forced and default plans returned different tuples")

        speedup = default_cost / max(1, learned_cost)
        if speedup <= 1.0:
            raise AssertionError(
                f"learned order {learned_order} (cost {learned_cost}) does not "
                f"beat sqlite's default plan (cost {default_cost})"
            )

        records = [
            {
                "engine": "skinner_g_sqlite",
                "simulated_time": external.metrics.simulated_time,
                "work": external.metrics.work,
                "result_rows": len(external.rows),
                "wall_time_seconds": external_wall,
            },
            {
                "engine": "skinner-g",
                "simulated_time": internal.metrics.simulated_time,
                "work": internal.metrics.work,
                "result_rows": len(internal.rows),
            },
        ]
        rows = [
            {"plan": "learned " + "-".join(learned_order), "cost": learned_cost},
            {"plan": "sqlite default", "cost": default_cost},
        ]
        return {
            "title": "Skinner-G learned order vs sqlite's default plan",
            "rows": rows,
            "records": records,
            "learned_order": list(learned_order),
            "learned_cost": learned_cost,
            "default_cost": default_cost,
            "speedup_learned_vs_default": round(speedup, 3),
            "parameters": {
                "tuples_per_table": tuples_per_table,
                "base_timeout": _BENCH_CONFIG.base_timeout,
                "batches_per_table": _BENCH_CONFIG.batches_per_table,
            },
        }
    finally:
        connection.close()
