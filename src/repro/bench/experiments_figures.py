"""Experiment drivers for the paper's figures (Figures 6-13)."""

from __future__ import annotations

from typing import Any

from repro.bench.harness import run_workload
from repro.bench.metrics import (
    QueryRecord,
    count_failures_and_disasters,
    per_query_speedups,
    time_share_of_top_queries,
)
from repro.bench.specs import (
    BENCH_CONFIG,
    skinner_c_spec,
    skinner_g_spec,
    skinner_h_spec,
    torture_specs,
    traditional_spec,
)
from repro.skinner.skinner_c import SkinnerC
from repro.workloads.job import make_job_workload
from repro.workloads.torture import (
    make_correlation_torture,
    make_trivial_workload,
    make_udf_torture,
)
from repro.workloads.tpch import make_tpch_workload

#: Default per-query work budget ("timeout") for the torture benchmarks.
TORTURE_BUDGET = 120_000


def figure6(scale: float = 0.6, seed: int = 13) -> dict[str, Any]:
    """Figure 6: where SkinnerDB's speedups over MonetDB come from.

    Panel (a): cumulative share of total time spent in the top-k most
    expensive queries per system.  Panel (b): per-query speedup of Skinner-C
    over MonetDB, paired with MonetDB's time for that query.
    """
    workload = make_job_workload(scale=scale, seed=seed)
    specs = [skinner_c_spec("Skinner-C"), traditional_spec("MonetDB", "monetdb")]
    records = run_workload(specs, workload)
    monetdb_times = {
        r.query: r.simulated_time for r in records if r.engine == "MonetDB"
    }
    speedups = per_query_speedups(records, baseline="MonetDB", subject="Skinner-C")
    scatter = sorted(
        ({"query": name, "monetdb_time": monetdb_times[name], "speedup": round(value, 3)}
         for name, value in speedups.items()),
        key=lambda row: row["monetdb_time"],
    )
    return {
        "title": "Figure 6: Source of speedups versus MonetDB",
        "series": {
            "skinner_top_query_time_share": [
                round(v, 3) for v in time_share_of_top_queries(records, "Skinner-C")
            ],
            "monetdb_top_query_time_share": [
                round(v, 3) for v in time_share_of_top_queries(records, "MonetDB")
            ],
        },
        "scatter": scatter,
        "records": records,
        "parameters": {"scale": scale, "seed": seed},
    }


def figure7(
    scale: float = 0.6,
    seed: int = 13,
    query_name: str = "job_q14",
    budgets: tuple[int, ...] = (10, 100),
) -> dict[str, Any]:
    """Figure 7: convergence of Skinner-C to optimal join orders.

    Panel (a): growth of the UCT search tree over (normalized) execution
    time.  Panel (b): share of time slices spent in the top-k join orders for
    small and large time-slice budgets.
    """
    workload = make_job_workload(scale=scale, seed=seed)
    query = workload.query(query_name).query

    trace_engine = SkinnerC(workload.catalog, workload.udfs, BENCH_CONFIG)
    traced = trace_engine.execute(query, trace=True)
    trace = traced.metrics.extra["trace"]
    growth = [
        {"fraction_of_slices": round((i + 1) / len(trace), 3), "uct_nodes": entry["uct_nodes"]}
        for i, entry in enumerate(trace)
    ]

    top_order_shares: dict[str, list[float]] = {}
    for budget in budgets:
        config = BENCH_CONFIG.with_overrides(slice_budget=budget)
        engine = SkinnerC(workload.catalog, workload.udfs, config)
        result = engine.execute(query)
        slices = max(1, result.metrics.time_slices)
        top_orders = result.metrics.extra["top_orders"]
        shares = []
        cumulative = 0
        for _, count in top_orders[:5]:
            cumulative += count
            shares.append(round(cumulative / slices, 3))
        top_order_shares[f"budget_{budget}"] = shares
    return {
        "title": "Figure 7: Convergence of Skinner-C",
        "series": {"uct_tree_growth": [entry["uct_nodes"] for entry in growth],
                   **top_order_shares},
        "growth": growth,
        "records": [QueryRecord.from_metrics("Skinner-C", query_name, traced.metrics)],
        "parameters": {"scale": scale, "seed": seed, "query": query_name,
                       "budgets": list(budgets)},
    }


def figure8(scale: float = 0.6, seed: int = 13) -> dict[str, Any]:
    """Figure 8: memory consumption of Skinner-C by query size."""
    workload = make_job_workload(scale=scale, seed=seed)
    engine = SkinnerC(workload.catalog, workload.udfs, BENCH_CONFIG)
    rows: list[dict[str, Any]] = []
    records: list[QueryRecord] = []
    for workload_query in workload.queries:
        result = engine.execute(workload_query.query)
        metrics = result.metrics
        records.append(QueryRecord.from_metrics("Skinner-C", workload_query.name, metrics))
        total_bytes = (
            metrics.extra["result_bytes"]
            + metrics.extra["tracker_bytes"]
            + metrics.extra["uct_bytes"]
        )
        rows.append({
            "query": workload_query.name,
            "joined_tables": workload_query.query.num_tables,
            "uct_nodes": metrics.uct_nodes,
            "tracker_nodes": metrics.tracker_nodes,
            "result_tuples": metrics.result_tuple_count,
            "total_bytes": total_bytes,
        })
    rows.sort(key=lambda row: (row["joined_tables"], row["query"]))
    return {
        "title": "Figure 8: Memory consumption of Skinner-C",
        "rows": rows,
        "records": records,
        "parameters": {"scale": scale, "seed": seed},
    }


def _torture_sweep(
    workload_factory,
    table_counts: tuple[int, ...],
    budget: int,
    label: str,
    **factory_kwargs,
) -> dict[str, Any]:
    """Shared sweep driver for Figures 9, 10, and 12."""
    specs = torture_specs()
    series: dict[str, list[float]] = {spec.name: [] for spec in specs}
    all_records: list[QueryRecord] = []
    for num_tables in table_counts:
        workload = workload_factory(num_tables, **factory_kwargs)
        records = run_workload(specs, workload, work_budget=budget)
        all_records.extend(records)
        per_engine = {r.engine: r.simulated_time for r in records}
        for spec in specs:
            series[spec.name].append(round(per_engine.get(spec.name, float("nan")), 1))
    return {
        "title": label,
        "series": {"num_tables": list(table_counts), **series},
        "records": all_records,
        "parameters": {"table_counts": list(table_counts), "budget": budget,
                       **factory_kwargs},
    }


def figure9(
    table_counts: tuple[int, ...] = (4, 6, 8),
    tuples_per_table: int = 60,
    budget: int = TORTURE_BUDGET,
) -> dict[str, Any]:
    """Figure 9: UDF Torture benchmark (chain and star queries)."""
    chain = _torture_sweep(
        lambda n, **kw: make_udf_torture(n, shape="chain", **kw),
        table_counts, budget,
        "Figure 9 (chain): UDF torture",
        tuples_per_table=tuples_per_table,
    )
    star = _torture_sweep(
        lambda n, **kw: make_udf_torture(n, shape="star", **kw),
        table_counts, budget,
        "Figure 9 (star): UDF torture",
        tuples_per_table=tuples_per_table,
    )
    return {
        "title": "Figure 9: UDF Torture benchmark",
        "chain": chain,
        "star": star,
        "records": chain["records"] + star["records"],
        "parameters": {"table_counts": list(table_counts),
                       "tuples_per_table": tuples_per_table, "budget": budget},
    }


def figure10(
    table_counts: tuple[int, ...] = (4, 6, 8),
    tuples_per_table: int = 150,
    budget: int = TORTURE_BUDGET,
) -> dict[str, Any]:
    """Figure 10: Correlation Torture benchmark (m=1 and m=n/2)."""
    head = _torture_sweep(
        lambda n, **kw: make_correlation_torture(n, good_position=1, **kw),
        table_counts, budget,
        "Figure 10 (m=1): correlation torture",
        tuples_per_table=tuples_per_table,
    )
    middle = _torture_sweep(
        lambda n, **kw: make_correlation_torture(n, good_position=max(1, n // 2), **kw),
        table_counts, budget,
        "Figure 10 (m=n/2): correlation torture",
        tuples_per_table=tuples_per_table,
    )
    return {
        "title": "Figure 10: Correlation Torture benchmark",
        "m1": head,
        "m_half": middle,
        "records": head["records"] + middle["records"],
        "parameters": {"table_counts": list(table_counts),
                       "tuples_per_table": tuples_per_table, "budget": budget},
    }


def figure11(
    table_counts: tuple[int, ...] = (4, 5, 6, 7),
    tuples_per_table: int = 400,
    fanout: int = 20,
    budget: int = 60_000,
) -> dict[str, Any]:
    """Figure 11: optimizer failures and disasters on correlation torture.

    Restricted (like the paper) to the baselines sharing Skinner's execution
    engine: Skinner-C, Eddy, the traditional optimizer, and the re-optimizer.
    """
    from repro.bench.specs import eddy_spec, optimizer_spec, reoptimizer_spec

    specs = [skinner_c_spec("Skinner"), eddy_spec("Eddy"),
             optimizer_spec("Optimizer"), reoptimizer_spec("Reoptimizer")]
    all_records: list[QueryRecord] = []
    for num_tables in table_counts:
        for good_position in (1, max(1, num_tables // 2), num_tables):
            workload = make_correlation_torture(
                num_tables, tuples_per_table, good_position=good_position, fanout=fanout,
            )
            all_records.extend(run_workload(specs, workload, work_budget=budget))
    by_time = count_failures_and_disasters(all_records, metric="time")
    by_evaluations = count_failures_and_disasters(all_records, metric="evaluations")
    rows = []
    for engine in sorted({r.engine for r in all_records}):
        rows.append({
            "Approach": engine,
            "Failures (time)": by_time.get(engine, {}).get("failures", 0),
            "Disasters (time)": by_time.get(engine, {}).get("disasters", 0),
            "Failures (evals)": by_evaluations.get(engine, {}).get("failures", 0),
            "Disasters (evals)": by_evaluations.get(engine, {}).get("disasters", 0),
        })
    return {
        "title": "Figure 11: Optimizer failures and disasters",
        "rows": rows,
        "records": all_records,
        "parameters": {"table_counts": list(table_counts),
                       "tuples_per_table": tuples_per_table, "budget": budget},
    }


def figure12(
    table_counts: tuple[int, ...] = (4, 6, 8),
    tuples_per_table: int = 200,
    budget: int = TORTURE_BUDGET,
) -> dict[str, Any]:
    """Figure 12: the Trivial Optimization benchmark (all plans equivalent)."""
    return {
        **_torture_sweep(
            make_trivial_workload,
            table_counts, budget,
            "Figure 12: Trivial optimization benchmark",
            tuples_per_table=tuples_per_table,
        ),
        "title": "Figure 12: Trivial optimization benchmark",
    }


def figure13(scale: float = 0.6, seed: int = 29) -> dict[str, Any]:
    """Figure 13: per-query times on TPC-H and TPC-H with UDF predicates."""
    specs = [
        skinner_c_spec("Skinner-C"),
        traditional_spec("Postgres", "postgres"),
        skinner_g_spec("S-G(Postgres)", "postgres"),
        skinner_h_spec("S-H(Postgres)", "postgres"),
        traditional_spec("MonetDB", "monetdb"),
    ]
    output: dict[str, Any] = {
        "title": "Figure 13: TPC-H per-query times",
        "parameters": {"scale": scale, "seed": seed},
        "records": [],
    }
    for variant, label in (("standard", "standard"), ("udf", "udf")):
        workload = make_tpch_workload(scale=scale, seed=seed, variant=variant)
        records = run_workload(specs, workload)
        output["records"].extend(records)
        per_query: dict[str, dict[str, float]] = {}
        for record in records:
            per_query.setdefault(record.query, {})[record.engine] = round(
                record.simulated_time, 1
            )
        output[label] = [
            {"query": name, **times} for name, times in sorted(per_query.items())
        ]
    return output
