"""Streaming-cursor benchmark: time-to-first-batch vs completion delivery.

Before the PEP 249 API, results were only handed back after a query fully
completed, so a client's time-to-first-row equaled the completion time.  A
streaming cursor pulls completed result batches out of the episode tasks as
they materialize; this experiment measures, on the deterministic work-unit
clock, when the first batch becomes fetchable versus when the query
completes — the gap is exactly what completion-time delivery wastes.

Every run cross-checks the streamed rows against ``execute_direct`` (same
multiset of rows) and the meter charges (streaming must not change what a
query is charged); the benchmark asserts the first batch arrives *strictly*
before completion for every streamed query.
"""

from __future__ import annotations

from typing import Any

from repro.api.connection import Connection
from repro.config import SkinnerConfig
from repro.storage.table import Table
from repro.workloads.generators import make_rng, uniform_keys

#: Modest slices so even smoke-sized runs take several episodes per query —
#: otherwise "streaming" degenerates to a single episode; warm start off so
#: runs are independent of submission order.
_BENCH_CONFIG = SkinnerConfig(slice_budget=200, serving_warm_start=False)


def _build_connection(tuples_per_table: int, seed: int) -> Connection:
    """Three join tables with ~6x key fan-out.

    The fan-out makes the join phase dominate pre-processing, which is the
    regime where streaming pays: for a query whose join is cheap relative
    to filtering/hash builds, rows only exist near completion anyway.
    """
    rng = make_rng(seed)
    connection = Connection(_BENCH_CONFIG, autocommit=True)
    num_keys = max(1, tuples_per_table // 6)
    for name in ("a", "b", "c"):
        connection.add_table(Table(name, {
            "k": uniform_keys(rng, tuples_per_table, num_keys),
            "v": uniform_keys(rng, tuples_per_table, 100),
        }))
    return connection


def _workload() -> list[tuple[str, str]]:
    return [
        ("q0_2way_selective",
         "SELECT a.v, b.v FROM a, b WHERE a.k = b.k AND a.v < 30"),
        ("q1_2way_broad",
         "SELECT a.v, b.v FROM a, b WHERE a.k = b.k AND a.v < 60"),
        ("q2_3way_chain",
         "SELECT a.v, c.v FROM a, b, c WHERE a.k = b.k AND b.k = c.k AND a.v < 10"),
    ]


def streaming_cursor(tuples_per_table: int = 3_000, seed: int = 23) -> dict[str, Any]:
    """Cursor streaming vs completion-time delivery on the work-unit clock."""
    connection = _build_connection(tuples_per_table, seed)
    rows: list[dict[str, Any]] = []
    records: list[dict[str, Any]] = []
    speedups: list[float] = []

    for name, sql in _workload():
        # The ledger clock is shared by all queries on the connection; the
        # reading at submission is this query's zero point.
        base = connection.server.ledger.grand_total()
        cursor = connection.cursor()
        cursor.execute(sql, use_result_cache=False)
        streamed = list(cursor.fetchmany(32))
        session = connection.server.session(cursor.ticket)
        # The acceptance check: the first batch was fetched while the query
        # was still running (completion had no work-clock reading yet).
        preempted = bool(streamed) and session.completed_at_work is None
        streamed.extend(cursor.fetchall())
        assert session.completed_at_work is not None, name
        first_at = (
            session.stream.first_rows_at_work - base
            if session.stream.first_rows_at_work is not None
            else None
        )
        completed_at = session.completed_at_work - base

        # -- correctness: streamed rows and charges match the direct path.
        direct = connection.execute_direct(sql)
        names = direct.table.column_names
        reference = sorted(
            tuple(row[column] for column in names) for row in direct.rows
        )
        if sorted(streamed) != reference:
            raise AssertionError(f"{name}: streamed rows diverge from execute()")
        served_work = cursor.result().metrics.work
        if served_work != direct.metrics.work:
            raise AssertionError(f"{name}: streaming changed the meter charges")
        if streamed:
            # Even when a smoke-sized query finishes within its first
            # scheduling grant, the work clock must order the first batch
            # strictly before completion (finalization charges after it).
            assert first_at is not None and first_at < completed_at, name
        else:
            first_at = completed_at  # empty result: nothing to stream

        speedup = completed_at / max(1, first_at)
        speedups.append(speedup)
        rows.append({
            "Query": name,
            "Rows": len(streamed),
            "Work": direct.metrics.work.total,
            "First batch @": first_at,
            "Completed @": completed_at,
            "Preempted": preempted,
            "TTFB Gain": round(speedup, 2),
        })
        records.append({
            "query": name,
            "result_rows": len(streamed),
            "simulated_time": direct.metrics.simulated_time,
            "first_batch_work": first_at,
            "completion_work": completed_at,
            "preempted_completion": preempted,
        })
        cursor.close()

    return {
        "title": "Streaming cursor: time-to-first-batch vs completion delivery",
        "rows": rows,
        "records": records,
        "all_preempted_completion": all(r["preempted_completion"] for r in records),
        "min_ttfb_speedup": round(min(speedups), 2),
        "mean_ttfb_speedup": round(sum(speedups) / len(speedups), 2),
        "parameters": {"tuples_per_table": tuples_per_table, "seed": seed},
    }
