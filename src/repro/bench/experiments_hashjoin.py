"""Hash-join kernel micro-benchmark: vectorized kernel vs dict-based path.

PR 3 replaced the plan executor's dict-based hash-join build/probe with the
columnar kernel of :mod:`repro.engine.joinkernels`.  This experiment isolates
that operator on join-heavy left-deep plans: a three-table chain with
controlled fan-out is executed through :class:`repro.engine.executor.
PlanExecutor` in both ``join_mode`` settings, reporting wall time per query
and the kernel speedup.  Every run cross-checks that the two modes produce
**byte-identical** row-id relations (same rows, same order) and identical
meter charges, so the speedup numbers are always backed by equivalent work.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.engine.executor import PlanExecutor
from repro.engine.meter import CostMeter
from repro.engine.profiles import get_profile
from repro.query.expressions import ColumnRef
from repro.query.predicates import Predicate, column_equals_column
from repro.query.query import Query, make_query
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.generators import make_rng, uniform_keys

_JOIN_ORDER = ("t0", "t1", "t2")


def _build_catalog(tuples_per_table: int, fanout: int, seed: int) -> Catalog:
    """Three chain-joinable tables with ~``fanout`` matches per key."""
    rng = make_rng(seed)
    catalog = Catalog()
    num_keys = max(1, tuples_per_table // max(1, fanout))
    for index in range(3):
        n = tuples_per_table
        catalog.add_table(Table(f"t{index}", {
            "k": uniform_keys(rng, n, num_keys),
            "g": uniform_keys(rng, n, 4),
            "v": uniform_keys(rng, n, 100),
        }))
    return catalog


def _queries() -> dict[str, Query]:
    tables = [(alias, alias) for alias in _JOIN_ORDER]
    return {
        "chain_fanout": make_query(
            tables,
            predicates=[
                column_equals_column("t0", "k", "t1", "k"),
                column_equals_column("t1", "k", "t2", "k"),
            ],
        ),
        "composite_residual": make_query(
            tables,
            predicates=[
                column_equals_column("t0", "k", "t1", "k"),
                column_equals_column("t0", "g", "t1", "g"),
                column_equals_column("t1", "k", "t2", "k"),
                Predicate(ColumnRef("t0", "v"), "<=", ColumnRef("t2", "v")),
            ],
        ),
    }


def _assert_equivalent(reference, vectorized, reference_work, vectorized_work, label):
    if vectorized.aliases != reference.aliases:
        raise AssertionError(f"{label}: alias sets diverge between join modes")
    for alias in reference.aliases:
        if not np.array_equal(vectorized.ids(alias), reference.ids(alias)):
            raise AssertionError(f"{label}: row ids of {alias!r} diverge between join modes")
    if vectorized_work != reference_work:
        raise AssertionError(f"{label}: meter charges diverge between join modes")


def hashjoin_kernel(
    tuples_per_table: int = 120_000,
    fanout: int = 2,
    seed: int = 13,
    repetitions: int = 3,
) -> dict[str, Any]:
    """Vectorized vs dict-based hash join over join-heavy left-deep plans."""
    catalog = _build_catalog(tuples_per_table, fanout, seed)
    profile = get_profile("postgres")
    rows: list[dict[str, Any]] = []
    records: list[dict[str, Any]] = []
    speedups: dict[str, float] = {}
    for name, query in _queries().items():
        timings: dict[str, float] = {}
        relations: dict[str, Any] = {}
        work: dict[str, Any] = {}
        for mode in ("rows", "vectorized"):
            executor = PlanExecutor(catalog, query, join_mode=mode)
            executor.pre_process(CostMeter())  # warm the filtered-position cache
            best = float("inf")
            for _ in range(max(1, repetitions)):
                meter = CostMeter()
                started = time.perf_counter()
                relations[mode] = executor.execute_order(list(_JOIN_ORDER), meter)
                best = min(best, time.perf_counter() - started)
                work[mode] = meter.snapshot()
            timings[mode] = best
            records.append({
                "query": name,
                "mode": mode,
                "simulated_time": profile.simulated_time(work[mode]),
                "result_rows": len(relations[mode]),
            })
        _assert_equivalent(relations["rows"], relations["vectorized"],
                           work["rows"], work["vectorized"], name)
        speedup = timings["rows"] / max(timings["vectorized"], 1e-9)
        speedups[name] = speedup
        rows.append({
            "Query": name,
            "Rows Out": len(relations["vectorized"]),
            "Row Path (ms)": round(timings["rows"] * 1e3, 2),
            "Vectorized (ms)": round(timings["vectorized"] * 1e3, 2),
            "Speedup": round(speedup, 2),
        })
    return {
        "title": "Hash join: vectorized kernel vs dict-based path",
        "rows": rows,
        "records": records,
        "speedups": speedups,
        "parameters": {"tuples_per_table": tuples_per_table, "fanout": fanout,
                       "seed": seed, "repetitions": repetitions},
    }
