"""Experiment drivers for the paper's tables (Tables 1-7)."""

from __future__ import annotations

import time
from typing import Any

from repro.baselines.traditional import TraditionalEngine
from repro.bench.harness import run_workload
from repro.bench.metrics import QueryRecord, aggregate_records, relative_overheads
from repro.bench.specs import (
    BENCH_CONFIG,
    job_multi_threaded_specs,
    job_single_threaded_specs,
    skinner_c_spec,
    skinner_g_spec,
    skinner_h_spec,
    traditional_spec,
)
from repro.config import SkinnerConfig
from repro.optimizer.exhaustive import optimal_plan
from repro.skinner.skinner_c import SkinnerC
from repro.workloads.job import make_job_workload
from repro.workloads.tpch import make_tpch_workload


def table1(scale: float = 0.6, seed: int = 13) -> dict[str, Any]:
    """Table 1: join order benchmark, single-threaded.

    Compares Skinner-C, Postgres, MonetDB, and Skinner-G/H on both systems
    by total/maximum time and total/maximum intermediate-result cardinality.
    """
    workload = make_job_workload(scale=scale, seed=seed)
    records = run_workload(job_single_threaded_specs(), workload)
    rows = [summary.as_row() for summary in aggregate_records(records)]
    return {
        "title": "Table 1: Join order benchmark, single-threaded",
        "rows": rows,
        "records": records,
        "parameters": {"scale": scale, "seed": seed},
    }


def table2(
    scale: float = 0.6, seed: int = 13, threads: int = 8, workers: int = 1
) -> dict[str, Any]:
    """Table 2: join order benchmark, multi-threaded.

    ``workers > 1`` additionally runs Skinner-C morsel-parallel over that
    many worker processes and reports the measured single-process versus
    parallel wall-clock under ``output["parallel"]`` (rows and charges are
    byte-identical by design, so only wall time is interesting).
    """
    workload = make_job_workload(scale=scale, seed=seed)
    records = run_workload(
        job_multi_threaded_specs(threads, workers=workers), workload
    )
    rows = [summary.as_row() for summary in aggregate_records(records)]
    return {
        "title": f"Table 2: Join order benchmark, multi-threaded ({threads} threads)",
        "rows": rows,
        "records": records,
        "parallel": _parallel_wall_clock(workload, threads, workers),
        "parameters": {
            "scale": scale, "seed": seed, "threads": threads, "workers": workers,
        },
    }


def _parallel_wall_clock(
    workload: Any, threads: int, workers: int, query_names: list[str] | None = None
) -> dict[str, Any] | None:
    """A/B wall-clock of Skinner-C: single-process versus morsel-parallel.

    Runs the workload's queries twice on directly constructed engines and
    measures real elapsed time — the simulated-time records above model the
    paper's hardware, while this measures what the worker pool actually
    buys on the machine at hand.  Returns ``None`` when ``workers <= 1``.
    """
    if workers <= 1:
        return None
    from repro.skinner.parallel import shutdown_workers

    queries = workload.queries
    if query_names is not None:
        wanted = set(query_names)
        queries = [q for q in queries if q.name in wanted]
    walls: dict[str, float] = {}
    variants = (
        ("single", BENCH_CONFIG),
        ("parallel", BENCH_CONFIG.with_overrides(parallel_workers=workers)),
    )
    for label, config in variants:
        engine = SkinnerC(workload.catalog, workload.udfs, config, threads=threads)
        started = time.perf_counter()
        for workload_query in queries:
            engine.execute(workload_query.query)
        walls[label] = time.perf_counter() - started
    shutdown_workers()
    return {
        "workers": workers,
        "single_wall_seconds": round(walls["single"], 3),
        "parallel_wall_seconds": round(walls["parallel"], 3),
        "speedup": round(walls["single"] / max(walls["parallel"], 1e-9), 3),
    }


def _order_quality_records(
    scale: float,
    seed: int,
    threads: int,
    max_tables_for_optimal: int,
    query_names: list[str] | None,
    workers: int = 1,
) -> list[QueryRecord]:
    """Shared driver for Tables 3 and 4: cross-executing join orders."""
    workload = make_job_workload(scale=scale, seed=seed)
    queries = workload.queries
    if query_names is not None:
        wanted = set(query_names)
        queries = [q for q in queries if q.name in wanted]

    skinner_config = BENCH_CONFIG if workers <= 1 else BENCH_CONFIG.with_overrides(
        parallel_workers=workers
    )
    skinner = SkinnerC(workload.catalog, workload.udfs, skinner_config, threads=threads)
    engines = {
        "Postgres": TraditionalEngine(workload.catalog, workload.udfs,
                                      profile="postgres", threads=threads),
        "MonetDB": TraditionalEngine(workload.catalog, workload.udfs,
                                     profile="monetdb", threads=threads),
    }
    records: list[QueryRecord] = []
    for workload_query in queries:
        query = workload_query.query
        learned = skinner.execute(query)
        records.append(QueryRecord.from_metrics(
            "Skinner/Skinner", workload_query.name, learned.metrics))
        skinner_order = learned.metrics.final_join_order
        optimal_order = None
        if query.num_tables <= max_tables_for_optimal:
            optimal_order = optimal_plan(workload.catalog, query, workload.udfs).order
        if optimal_order is not None:
            forced = skinner.execute_with_order(query, optimal_order)
            records.append(QueryRecord.from_metrics(
                "Skinner/Optimal", workload_query.name, forced.metrics))
        for engine_name, engine in engines.items():
            original = engine.execute(query)
            records.append(QueryRecord.from_metrics(
                f"{engine_name}/Original", workload_query.name, original.metrics))
            if skinner_order is not None:
                forced = engine.execute(query, forced_order=skinner_order)
                records.append(QueryRecord.from_metrics(
                    f"{engine_name}/Skinner", workload_query.name, forced.metrics))
            if optimal_order is not None:
                forced = engine.execute(query, forced_order=optimal_order)
                records.append(QueryRecord.from_metrics(
                    f"{engine_name}/Optimal", workload_query.name, forced.metrics))
    return records


def _order_quality_rows(records: list[QueryRecord]) -> list[dict[str, Any]]:
    rows = []
    for summary in aggregate_records(records):
        engine, order = summary.engine.split("/", 1)
        rows.append({
            "Engine": engine,
            "Order": order,
            "Total Time": round(summary.total_time, 1),
            "Max Time": round(summary.max_time, 1),
        })
    return rows


def table3(
    scale: float = 0.5,
    seed: int = 13,
    *,
    max_tables_for_optimal: int = 6,
    query_names: list[str] | None = None,
) -> dict[str, Any]:
    """Table 3: join order quality across execution engines, single-threaded.

    Each engine executes (a) its own optimizer's order, (b) the order Skinner
    learned, and (c) the C_out-optimal order computed with true cardinalities.
    """
    records = _order_quality_records(scale, seed, 1, max_tables_for_optimal, query_names)
    return {
        "title": "Table 3: Join orders across engines, single-threaded",
        "rows": _order_quality_rows(records),
        "records": records,
        "parameters": {"scale": scale, "seed": seed},
    }


def table4(
    scale: float = 0.5,
    seed: int = 13,
    threads: int = 8,
    workers: int = 1,
    *,
    max_tables_for_optimal: int = 6,
    query_names: list[str] | None = None,
) -> dict[str, Any]:
    """Table 4: join order quality across execution engines, multi-threaded.

    ``workers > 1`` runs the learning Skinner-C passes morsel-parallel and
    reports the measured A/B wall-clock under ``output["parallel"]``; the
    learned orders — and therefore every forced-order baseline row — are
    unchanged because parallel execution is byte-identical by design.
    """
    records = _order_quality_records(
        scale, seed, threads, max_tables_for_optimal, query_names, workers
    )
    records = [r for r in records if r.engine.startswith(("Skinner", "MonetDB"))]
    workload = make_job_workload(scale=scale, seed=seed)
    return {
        "title": f"Table 4: Join orders across engines, multi-threaded ({threads} threads)",
        "rows": _order_quality_rows(records),
        "records": records,
        "parallel": _parallel_wall_clock(workload, threads, workers, query_names),
        "parameters": {
            "scale": scale, "seed": seed, "threads": threads, "workers": workers,
        },
    }


def table5(scale: float = 0.5, seed: int = 13) -> dict[str, Any]:
    """Table 5: learned versus randomized join-order selection."""
    workload = make_job_workload(scale=scale, seed=seed)
    random_config = BENCH_CONFIG.with_overrides(order_selection="random")
    specs = [
        skinner_c_spec("Skinner-C / Original", BENCH_CONFIG),
        skinner_c_spec("Skinner-C / Random", random_config),
        skinner_h_spec("S-H(PG) / Original", "postgres", BENCH_CONFIG),
        skinner_h_spec("S-H(PG) / Random", "postgres", random_config),
        skinner_h_spec("S-H(MDB) / Original", "monetdb", BENCH_CONFIG),
        skinner_h_spec("S-H(MDB) / Random", "monetdb", random_config),
    ]
    records = run_workload(specs, workload)
    rows = []
    for summary in aggregate_records(records):
        engine, optimizer = summary.engine.split(" / ", 1)
        rows.append({
            "Engine": engine,
            "Optimizer": optimizer,
            "Time": round(summary.total_time, 1),
            "Max Time": round(summary.max_time, 1),
        })
    return {
        "title": "Table 5: Reinforcement learning versus randomization",
        "rows": rows,
        "records": records,
        "parameters": {"scale": scale, "seed": seed},
    }


def table6(scale: float = 0.5, seed: int = 13, threads: int = 8) -> dict[str, Any]:
    """Table 6: impact of SkinnerDB features (indexes, parallelism, learning)."""
    workload = make_job_workload(scale=scale, seed=seed)
    configurations: list[tuple[str, SkinnerConfig, int]] = [
        ("indexes, parallelization, learning", BENCH_CONFIG, threads),
        ("parallelization, learning", BENCH_CONFIG.with_overrides(use_hash_jump=False), threads),
        ("learning", BENCH_CONFIG.with_overrides(use_hash_jump=False), 1),
        ("none", BENCH_CONFIG.with_overrides(use_hash_jump=False, order_selection="random"), 1),
    ]
    records: list[QueryRecord] = []
    for label, config, config_threads in configurations:
        spec = skinner_c_spec(label, config, threads=config_threads)
        records.extend(run_workload([spec], workload))
    rows = [{
        "Enabled Features": summary.engine,
        "Total Time": round(summary.total_time, 1),
        "Max Time": round(summary.max_time, 1),
    } for summary in aggregate_records(records)]
    return {
        "title": "Table 6: Impact of SkinnerDB features",
        "rows": rows,
        "records": records,
        "parameters": {"scale": scale, "seed": seed, "threads": threads},
    }


def table7(scale: float = 0.6, seed: int = 29) -> dict[str, Any]:
    """Table 7: TPC-H and TPC-H-with-UDFs summary."""
    specs = [
        skinner_c_spec("Skinner-C"),
        traditional_spec("Postgres", "postgres"),
        skinner_g_spec("S-G(Postgres)", "postgres"),
        skinner_h_spec("S-H(Postgres)", "postgres"),
        traditional_spec("MonetDB", "monetdb"),
    ]
    rows: list[dict[str, Any]] = []
    all_records: list[QueryRecord] = []
    for variant, label in (("standard", "TPC-H"), ("udf", "TPC-UDF")):
        workload = make_tpch_workload(scale=scale, seed=seed, variant=variant)
        records = run_workload(specs, workload)
        all_records.extend(records)
        overheads = relative_overheads(records)
        for summary in aggregate_records(records):
            rows.append({
                "Scenario": label,
                "Approach": summary.engine,
                "Time": round(summary.total_time, 1),
                "Max. Rel.": round(overheads.get(summary.engine, 1.0), 1),
            })
    return {
        "title": "Table 7: TPC-H variants summary",
        "rows": rows,
        "records": all_records,
        "parameters": {"scale": scale, "seed": seed},
    }
