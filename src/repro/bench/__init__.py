"""Benchmark harness regenerating the paper's tables and figures.

* :mod:`~repro.bench.metrics` — per-query records, aggregation into the
  table rows the paper reports (total/max time, intermediate cardinality,
  relative overhead, optimizer failures and disasters).
* :mod:`~repro.bench.harness` — runs a set of engine configurations over a
  workload, with optional per-query work budgets (timeouts).
* :mod:`~repro.bench.report` — plain-text rendering of result tables/series.
* :mod:`~repro.bench.experiments` — one entry point per table and figure of
  the paper (``table1`` ... ``table7``, ``figure6`` ... ``figure13``).
"""

from repro.bench.harness import EngineSpec, run_query, run_workload
from repro.bench.metrics import (
    QueryRecord,
    aggregate_records,
    count_failures_and_disasters,
    relative_overheads,
)
from repro.bench.report import format_series, format_table

__all__ = [
    "EngineSpec",
    "QueryRecord",
    "aggregate_records",
    "count_failures_and_disasters",
    "format_series",
    "format_table",
    "relative_overheads",
    "run_query",
    "run_workload",
]
