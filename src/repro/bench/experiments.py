"""One entry point per table and figure of the paper's evaluation.

Each function builds the workload, runs the relevant engine configurations,
and returns a dictionary with a ``title``, the ``rows`` or ``series`` the
paper reports, the raw per-query ``records``, and the ``parameters`` used.
``benchmarks/`` contains one pytest-benchmark module per entry point, and
``examples/reproduce_paper.py`` prints any subset of them.
"""

from repro.bench.experiments_figures import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
)
from repro.bench.experiments_docstore import docstore_axes
from repro.bench.experiments_external import external_sqlite
from repro.bench.experiments_hashjoin import hashjoin_kernel
from repro.bench.experiments_postprocess import postprocess_pipeline
from repro.bench.experiments_server import multitenant_server
from repro.bench.experiments_serving import concurrent_serving
from repro.bench.experiments_storage import cold_vs_warm_start
from repro.bench.experiments_streaming import streaming_cursor
from repro.bench.experiments_tables import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)

#: All experiment entry points by their paper label.
EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "concurrent_serving": concurrent_serving,
    "multitenant_server": multitenant_server,
    "hashjoin_kernel": hashjoin_kernel,
    "postprocess_pipeline": postprocess_pipeline,
    "streaming_cursor": streaming_cursor,
    "cold_vs_warm_start": cold_vs_warm_start,
    "external_sqlite": external_sqlite,
    "docstore_axes": docstore_axes,
}

__all__ = ["EXPERIMENTS"] + sorted(EXPERIMENTS)
