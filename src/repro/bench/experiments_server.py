"""Multi-tenant network front-door benchmark: remote serving over TCP.

Three measurements, one deterministic and two live:

* **Reference runs (deterministic).**  Every distinct query of the client
  workload is executed once on a fresh local connection with the exact
  server configuration.  Their meter charges are the byte-identity oracle
  for the remote runs and their ``simulated_time`` values feed the CI
  work-fingerprint gate (wall-clock noise never does).

* **p95 time-to-first-batch over the wire.**  A real
  :class:`~repro.net.server.ServerThread` serves the catalog over TCP while
  ``clients`` threads connect via ``repro://`` DSNs (three tenants,
  round-robin), each running ``queries_per_client`` streaming queries.
  Time-to-first-batch (TTFB) is the wall-clock span from
  ``cursor.execute`` to the first non-empty ``fetchmany`` — the latency a
  dashboard user feels under a mixed concurrent workload.  Every remote
  result is checked **byte-identical** (rows and meter charges) against
  its reference, so concurrency never buys throughput with divergent
  answers.

* **Fairness under an adversarial heavy tenant (deterministic).**  On the
  work-unit clock, a light tenant's lone aggregate is timed three ways:
  solo, against a flood of ``heavy_sessions`` expensive joins from another
  tenant at equal quota, and against the same flood with the light tenant
  quota-protected (``set_tenant_quota``).  Stride scheduling bounds the
  flooded delay near the two-tenant fair share; the quota raises the light
  tenant's share further.  (Session setup work is charged eagerly at
  submit time, so delays are measured from the post-submission clock.)
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.api.connection import connect
from repro.config import SkinnerConfig
from repro.net.server import ServerThread
from repro.optimizer.statistics import StatisticsCatalog
from repro.serving.server import QueryServer
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.generators import make_rng, uniform_keys

#: Server configuration: warm start off so every run is solo-equivalent,
#: enough admission slots that concurrency (not queueing) is measured.
_BENCH_CONFIG = SkinnerConfig(serving_warm_start=False, serving_max_inflight=8)

#: Tenants the remote clients round-robin across.
_TENANTS = ("alpha", "beta", "gamma")


def _build_columns(tuples_per_table: int, seed: int) -> dict[str, dict[str, list]]:
    """Column data for two joinable fact tables and a small dimension."""
    rng = make_rng(seed)
    num_keys = max(1, tuples_per_table // 3)  # ~3x join fan-out per key
    columns: dict[str, dict[str, list]] = {}
    for name in ("fact", "fact2"):
        columns[name] = {
            "k": uniform_keys(rng, tuples_per_table, num_keys),
            "g": uniform_keys(rng, tuples_per_table, 8),
            "v": uniform_keys(rng, tuples_per_table, 1000),
        }
    dim_rows = max(4, tuples_per_table // 20)
    columns["dim"] = {
        "g": uniform_keys(rng, dim_rows, 8),
        "name": [f"g{int(value) % 8}" for value in uniform_keys(rng, dim_rows, 8)],
    }
    return columns


def _client_workload() -> list[tuple[str, str]]:
    """The query mix each client cycles through: (name, sql).

    One pure streaming scan, one expensive join, one blocking aggregate,
    and one LIMIT query that exercises the push-down's early completion
    over the wire.
    """
    return [
        ("scan_stream", "SELECT f.v FROM fact f WHERE f.v < 40"),
        ("join_count",
         "SELECT COUNT(*) AS n FROM fact f, fact2 h WHERE f.k = h.k"),
        ("group_by", "SELECT f.g, COUNT(*) AS n FROM fact f GROUP BY f.g"),
        ("limit_pushdown",
         "SELECT f.v, h.v FROM fact f, fact2 h WHERE f.k = h.k LIMIT 8"),
    ]


def _seed_connection(connection, columns: dict[str, dict[str, list]]) -> None:
    for name, data in columns.items():
        connection.create_table(name, data)
    connection.commit()


def _reference_runs(
    columns: dict[str, dict[str, list]]
) -> dict[str, tuple[list[tuple[Any, ...]], Any, Any]]:
    """Each distinct query solo on a fresh local connection: the oracle."""
    references: dict[str, tuple[list, Any, Any]] = {}
    for name, sql in _client_workload():
        local = connect(_BENCH_CONFIG)
        _seed_connection(local, columns)
        cursor = local.cursor()
        cursor.execute(sql, use_result_cache=False)
        rows = cursor.fetchall()
        metrics = cursor.result().metrics
        references[name] = (rows, metrics.work, metrics)
        local.close()
    return references


def _p95_lower(values: list[float]) -> float:
    """Nearest-lower-rank 95th percentile (deterministic, small-n friendly)."""
    return float(np.percentile(np.asarray(values, dtype=np.float64), 95, method="lower"))


def _remote_clients(
    columns: dict[str, dict[str, list]],
    references: dict[str, tuple[list, Any, Any]],
    clients: int,
    queries_per_client: int,
) -> dict[str, Any]:
    """Live TCP server + concurrent clients; returns TTFB samples."""
    import threading

    workload = _client_workload()
    live = ServerThread(config=_BENCH_CONFIG).start()
    ttfb_seconds: dict[int, list[float]] = {}
    errors: list[BaseException] = []
    try:
        _seed_connection(live.connection, columns)

        def run_client(index: int) -> None:
            samples: list[float] = []
            try:
                conn = connect(live.dsn, tenant=_TENANTS[index % len(_TENANTS)])
                try:
                    for step in range(queries_per_client):
                        name, sql = workload[(index + step) % len(workload)]
                        cursor = conn.cursor()
                        started = time.perf_counter()
                        cursor.execute(sql, use_result_cache=False)
                        first = cursor.fetchmany(16)
                        samples.append(time.perf_counter() - started)
                        rows = first + cursor.fetchall()
                        work = cursor.result().metrics.work
                        expected_rows, expected_work, _ = references[name]
                        if rows != expected_rows:
                            raise AssertionError(f"{name}: remote rows diverge from solo run")
                        if work != expected_work:
                            raise AssertionError(f"{name}: remote charges diverge from solo run")
                        cursor.close()
                finally:
                    conn.close()
            except BaseException as exc:  # noqa: BLE001 - surfaced by the caller
                errors.append(exc)
            ttfb_seconds[index] = samples

        threads = [
            threading.Thread(target=run_client, args=(index,), daemon=True)
            for index in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        wall_seconds = time.perf_counter() - started
    finally:
        live.stop()
    if errors:
        raise errors[0]
    samples = [value for per_client in ttfb_seconds.values() for value in per_client]
    return {
        "ttfb_samples": len(samples),
        "p95_ttfb_seconds": round(_p95_lower(samples), 4) if samples else 0.0,
        "max_ttfb_seconds": round(max(samples), 4) if samples else 0.0,
        "wall_seconds": round(wall_seconds, 3),
    }


def _light_tenant_delay(
    catalog: Catalog,
    statistics: StatisticsCatalog,
    heavy_sessions: int,
    light_quota: float | None,
) -> tuple[int, dict[str, Any]]:
    """Work-clock delay of the light tenant's query under a heavy flood."""
    server = QueryServer(catalog, config=_BENCH_CONFIG,
                         statistics_provider=lambda: statistics)
    if light_quota is not None:
        server.set_tenant_quota("light", light_quota)
    heavy_sql = "SELECT COUNT(*) AS n FROM fact f, fact2 h WHERE f.k = h.k"
    light_sql = "SELECT f.g, COUNT(*) AS n FROM fact f GROUP BY f.g"
    for _ in range(heavy_sessions):
        server.submit(heavy_sql, tenant="heavy", use_result_cache=False)
    light = server.submit(light_sql, tenant="light", use_result_cache=False)
    # Session setup work is charged eagerly inside submit(), so the flood's
    # activations already advanced the clock: measure from here.
    baseline = server.ledger.grand_total()
    server.result(light)
    completed = server.session(light).completed_at_work
    assert completed is not None
    return completed - baseline, server.tenant_stats()


def multitenant_server(
    tuples_per_table: int = 3_000,
    seed: int = 17,
    clients: int = 6,
    queries_per_client: int = 3,
    heavy_sessions: int = 5,
) -> dict[str, Any]:
    """Remote p95 TTFB, byte-identity over the wire, and tenant fairness."""
    columns = _build_columns(tuples_per_table, seed)
    references = _reference_runs(columns)

    remote = _remote_clients(columns, references, clients, queries_per_client)

    catalog = Catalog()
    for name, data in columns.items():
        catalog.add_table(Table(name, data))
    statistics = StatisticsCatalog.collect(catalog)
    solo_delay, _ = _light_tenant_delay(catalog, statistics, 0, None)
    flood_delay, flood_stats = _light_tenant_delay(
        catalog, statistics, heavy_sessions, None)
    shielded_delay, shielded_stats = _light_tenant_delay(
        catalog, statistics, heavy_sessions, 3.0)

    rows = [
        {
            "Query": name,
            "Work": references[name][1].total,
            "Result Rows": len(references[name][0]),
            "Simulated Time": round(references[name][2].simulated_time, 4),
        }
        for name, _sql in _client_workload()
    ]
    records = [
        {
            "query": name,
            "simulated_time": references[name][2].simulated_time,
            "result_rows": references[name][2].result_rows,
        }
        for name, _sql in _client_workload()
    ]

    return {
        "title": "Multi-tenant network front door: remote TTFB and fairness",
        "rows": rows,
        "records": records,
        "remote": remote,
        "fairness": {
            "light_solo_delay": solo_delay,
            "light_flooded_delay": flood_delay,
            "light_shielded_delay": shielded_delay,
            "flooded_slowdown": round(flood_delay / max(1, solo_delay), 2),
            "shielded_slowdown": round(shielded_delay / max(1, solo_delay), 2),
            "flooded_light_share": round(
                flood_stats["light"]["grant_share"], 4),
            "shielded_light_share": round(
                shielded_stats["light"]["grant_share"], 4),
        },
        "parameters": {
            "tuples_per_table": tuples_per_table,
            "seed": seed,
            "clients": clients,
            "queries_per_client": queries_per_client,
            "heavy_sessions": heavy_sessions,
        },
    }
