"""The left-deep plan executor used as the "existing DBMS" execution engine.

This executor plays the role Postgres / MonetDB play in the paper: it is a
conventional engine that executes one join order for a query (or for a batch
of a query), producing a row-id relation.  It supports:

* pre-processing (unary predicate filtering) with cached results,
* hash joins when equality predicates link the new table to the prefix,
  nested-loop joins otherwise; the hash join runs the vectorized kernel by
  default, with ``join_mode="rows"`` selecting the dict-based reference path
  (see :mod:`repro.engine.operators`),
* vectorized residual/unary predicate evaluation for UDF-free comparisons
  (see :mod:`repro.engine.vectorized`); only UDF predicates are evaluated
  tuple at a time,
* an optional **work budget** — used by Skinner-G to emulate per-batch
  timeouts: when the budget is exhausted, execution aborts and all
  intermediate results are lost, exactly like a timed-out DBMS invocation.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.engine.meter import CostMeter
from repro.engine.operators import (
    filter_table,
    hash_join_step,
    nested_loop_step,
    validate_join_mode,
)
from repro.engine.relation import RowIdRelation
from repro.errors import PlanningError
from repro.query.query import Query
from repro.query.udf import UdfRegistry
from repro.storage.catalog import Catalog
from repro.storage.table import Table


class PlanExecutor:
    """Executes left-deep join orders for one query against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        query: Query,
        udfs: UdfRegistry | None = None,
        *,
        join_mode: str = "vectorized",
    ) -> None:
        self._catalog = catalog
        self._query = query
        self._udfs = udfs
        self._join_mode = validate_join_mode(join_mode)
        self._tables: dict[str, Table] = {
            alias: catalog.table(name) for alias, name in query.tables
        }
        self._filtered: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # pre-processing
    # ------------------------------------------------------------------
    @property
    def tables(self) -> Mapping[str, Table]:
        """Alias-to-table mapping for this query."""
        return self._tables

    def pre_process(self, meter: CostMeter | None = None) -> dict[str, np.ndarray]:
        """Apply unary predicates to every table; results are cached."""
        if self._filtered is None:
            meter = meter if meter is not None else CostMeter()
            filtered: dict[str, np.ndarray] = {}
            for alias, table in self._tables.items():
                predicates = self._query.unary_predicates(alias)
                filtered[alias] = filter_table(table, alias, predicates, meter, self._udfs)
            self._filtered = filtered
        return self._filtered

    def filtered_positions(self, alias: str) -> np.ndarray:
        """Row positions of ``alias`` surviving its unary predicates."""
        return self.pre_process()[alias]

    # ------------------------------------------------------------------
    # join execution
    # ------------------------------------------------------------------
    def execute_order(
        self,
        order: Sequence[str],
        meter: CostMeter,
        base_positions: Mapping[str, np.ndarray] | None = None,
    ) -> RowIdRelation:
        """Execute one left-deep join order and return the join result.

        Parameters
        ----------
        order:
            Permutation of the query's aliases.
        meter:
            Cost meter charged for all work; may carry a budget, in which
            case :class:`~repro.errors.BudgetExceeded` propagates to the
            caller when it runs out.
        base_positions:
            Optional override of the filtered positions per alias.  Skinner-G
            uses this to restrict the left-most table to one batch.
        """
        if sorted(order) != sorted(self._query.aliases):
            raise PlanningError(f"join order {order} does not cover query aliases")
        filtered = self.pre_process(meter)
        positions_of = dict(filtered)
        if base_positions:
            positions_of.update({alias: np.asarray(p, dtype=np.int64)
                                 for alias, p in base_positions.items()})

        first = order[0]
        result = RowIdRelation.from_base(first, positions_of[first])
        applied: set[int] = set()
        join_predicates = self._query.join_predicates()
        prefix_aliases = {first}
        for alias in order[1:]:
            prefix_aliases.add(alias)
            applicable = [
                (i, predicate)
                for i, predicate in enumerate(join_predicates)
                if i not in applied and predicate.tables() <= prefix_aliases
            ]
            equi = [p for _, p in applicable if p.is_equi_join and alias in p.tables()]
            residual = [p for _, p in applicable if not (p.is_equi_join and alias in p.tables())]
            applied.update(i for i, _ in applicable)
            if equi:
                result = hash_join_step(
                    result, alias, self._tables[alias], positions_of[alias],
                    equi, residual, self._tables, meter, self._udfs,
                    mode=self._join_mode,
                )
            else:
                result = nested_loop_step(
                    result, alias, self._tables[alias], positions_of[alias],
                    residual, self._tables, meter, self._udfs,
                )
        return result

    # ------------------------------------------------------------------
    # helpers used by optimizers and the true-cardinality oracle
    # ------------------------------------------------------------------
    def join_subset_cardinality(self, aliases: Sequence[str]) -> int:
        """True cardinality of joining the given aliases (all predicates applied).

        Used by the C_out oracle that computes truly optimal join orders for
        Tables 3 and 4.  The result only depends on the *set* of aliases, so
        callers may cache by frozenset.
        """
        aliases = list(aliases)
        if len(aliases) == 1:
            return int(self.filtered_positions(aliases[0]).shape[0])
        sub_query = _restrict_query(self._query, aliases)
        executor = PlanExecutor(self._catalog, sub_query, self._udfs,
                                join_mode=self._join_mode)
        executor._filtered = {alias: self.filtered_positions(alias) for alias in aliases}
        meter = CostMeter()
        graph = sub_query.join_graph()
        order = _greedy_connected_order(graph, aliases)
        result = executor.execute_order(order, meter)
        return len(result)


def _restrict_query(query: Query, aliases: Sequence[str]) -> Query:
    """Project a query onto a subset of its aliases (predicates restricted)."""
    alias_set = set(aliases)
    tables = tuple((alias, name) for alias, name in query.tables if alias in alias_set)
    predicates = tuple(p for p in query.predicates if p.tables() <= alias_set)
    return Query(tables=tables, predicates=predicates)


def _greedy_connected_order(graph, aliases: Sequence[str]) -> list[str]:
    """A join order that keeps the prefix connected whenever possible."""
    order = [aliases[0]]
    while len(order) < len(aliases):
        eligible = graph.eligible_next(order)
        order.append(eligible[0])
    return order
