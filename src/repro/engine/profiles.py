"""Engine profiles: converting work units into simulated time.

The paper compares systems with very different per-tuple overheads: MonetDB
(vectorized column store, lowest per-tuple cost), Postgres (row store),
a commercial adaptive system, and the Java-based Skinner engine (highest
per-tuple cost but best join orders).  A profile captures that constant
factor plus how much of the execution parallelizes, so the benchmark
harness can reproduce the single- vs multi-threaded comparisons
(Tables 1 vs 2) without real threads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.meter import WorkBreakdown


@dataclass(frozen=True)
class EngineProfile:
    """Weights converting a :class:`WorkBreakdown` into simulated time.

    Attributes
    ----------
    name:
        Profile name (``skinner``, ``postgres``, ``monetdb``, ``commercial``).
    scan_weight, predicate_weight, probe_weight, intermediate_weight,
    output_weight, udf_weight:
        Cost per work unit of each kind, in abstract milliseconds.
    parallel_fraction:
        Fraction of the work that parallelizes across cores in the
        multi-threaded configuration (Amdahl's law).  SkinnerDB only
        parallelizes pre-processing; MonetDB parallelizes the whole plan.
    startup_cost:
        Fixed per-query overhead (optimizer invocation, plan setup).
    """

    name: str
    scan_weight: float = 1.0
    predicate_weight: float = 1.0
    probe_weight: float = 1.0
    intermediate_weight: float = 1.0
    output_weight: float = 1.0
    udf_weight: float = 1.0
    parallel_fraction: float = 0.0
    startup_cost: float = 0.0

    def simulated_time(self, work: WorkBreakdown, *, threads: int = 1) -> float:
        """Simulated time (abstract ms) for the given work under ``threads``."""
        serial = (
            work.tuples_scanned * self.scan_weight
            + work.predicate_evals * self.predicate_weight
            + work.hash_probes * self.probe_weight
            + work.intermediate_tuples * self.intermediate_weight
            + work.output_tuples * self.output_weight
            + work.udf_invocations * self.udf_weight
        )
        if threads <= 1 or self.parallel_fraction <= 0.0:
            return self.startup_cost + serial
        parallel_part = serial * self.parallel_fraction / threads
        serial_part = serial * (1.0 - self.parallel_fraction)
        return self.startup_cost + serial_part + parallel_part


# Per-tuple cost ordering mirrors the paper's observations: MonetDB has the
# lowest per-tuple overhead, Postgres pays row-store and disk-format
# penalties, the commercial system sits in between, and the (Java) Skinner
# engine pays interpretation and join-order-switching overhead per tuple.
_PROFILES: dict[str, EngineProfile] = {
    "monetdb": EngineProfile(
        name="monetdb",
        scan_weight=0.2,
        predicate_weight=0.2,
        probe_weight=0.25,
        intermediate_weight=0.3,
        output_weight=0.3,
        udf_weight=2.0,
        parallel_fraction=0.95,
        startup_cost=5.0,
    ),
    "postgres": EngineProfile(
        name="postgres",
        scan_weight=0.8,
        predicate_weight=0.7,
        probe_weight=0.9,
        intermediate_weight=1.2,
        output_weight=1.0,
        udf_weight=2.0,
        parallel_fraction=0.0,
        startup_cost=10.0,
    ),
    "commercial": EngineProfile(
        name="commercial",
        scan_weight=0.5,
        predicate_weight=0.5,
        probe_weight=0.6,
        intermediate_weight=0.8,
        output_weight=0.7,
        udf_weight=2.0,
        parallel_fraction=0.7,
        startup_cost=8.0,
    ),
    "skinner": EngineProfile(
        name="skinner",
        scan_weight=1.0,
        predicate_weight=1.0,
        probe_weight=1.2,
        intermediate_weight=1.0,
        output_weight=1.0,
        udf_weight=2.0,
        # Only pre-processing parallelizes (paper §6.1); the join phase is
        # single-threaded, which the harness models by applying the parallel
        # fraction to pre-processing work only.
        parallel_fraction=0.3,
        startup_cost=2.0,
    ),
}


def get_profile(name: str) -> EngineProfile:
    """Return a named engine profile (case-insensitive)."""
    try:
        return _PROFILES[name.lower()]
    except KeyError as exc:
        known = ", ".join(sorted(_PROFILES))
        raise KeyError(f"unknown engine profile {name!r}; known profiles: {known}") from exc


def profile_names() -> list[str]:
    """Names of all built-in profiles."""
    return sorted(_PROFILES)
