"""Vectorized evaluation of scalar expressions over column arrays.

The tuple-at-a-time engines evaluate expressions against a *binding* (one row
dict per alias).  This module provides the batch equivalent: an expression is
evaluated once over arrays of decoded column values, producing one NumPy
array for a whole run of candidate rows.  It powers

* the columnar post-processing pipeline (:mod:`repro.engine.postprocess`),
* the vectorized generic-predicate fallback of the multi-way join
  (:meth:`repro.skinner.multiway_join.MultiwayJoin._filter_generic`), and
* the residual-predicate filters of the left-deep plan executor
  (:mod:`repro.engine.operators`).

Only UDF-free expressions are vectorizable: column references, literals,
``*``, and the built-in arithmetic functions.  String columns are decoded to
``object`` arrays so that elementwise comparisons keep exact Python
semantics (including ``TypeError`` on unorderable mixes, which callers treat
as non-vectorizable and route through the row path).  Anything else raises
:class:`NotVectorizable` and the caller falls back to row-at-a-time
evaluation — the fallback is a behavior guarantee, not an error path.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from repro.query.expressions import ColumnRef, Expression, FunctionCall, Literal, Star

__all__ = [
    "NotVectorizable",
    "broadcast",
    "evaluate_array",
    "evaluate_value",
    "has_udf",
    "vectorizable",
    "VECTOR_COMPARATORS",
]


class NotVectorizable(Exception):
    """Raised when an expression cannot be evaluated over column arrays."""


#: Comparators applied to evaluated arrays.  NumPy broadcasting gives the
#: same elementwise truth values as the Python operators the row path uses.
VECTOR_COMPARATORS: dict[str, Callable[[Any, Any], Any]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: Elementwise implementations of the built-in scalar functions.  ``div``
#: uses true division and ``mod`` floors like Python ``%``, so results match
#: the row path bit for bit on int64/float64 inputs.
_BUILTIN_ARRAY_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: np.true_divide(a, b),
    "abs": lambda a: np.abs(a),
    "mod": lambda a, b: np.mod(a, b),
}


def has_udf(expression: Expression) -> bool:
    """Whether the expression contains a non-builtin function call."""
    if isinstance(expression, FunctionCall):
        if not expression.is_builtin():
            return True
        return any(has_udf(arg) for arg in expression.args)
    return False


def vectorizable(expression: Expression) -> bool:
    """Whether :func:`evaluate_array` can handle the expression's structure."""
    if isinstance(expression, (ColumnRef, Literal, Star)):
        return True
    if isinstance(expression, FunctionCall):
        return expression.is_builtin() and all(vectorizable(a) for a in expression.args)
    return False


def evaluate_array(
    expression: Expression,
    resolve: Callable[[ColumnRef], Any],
    length: int,
) -> np.ndarray:
    """Evaluate ``expression`` into an array of ``length`` decoded values.

    ``resolve`` maps a column reference to either an array of that column's
    values for the batch or a scalar (for columns fixed across the batch).
    Scalars propagate through the arithmetic and are broadcast to a full
    array only at the end.
    """
    return broadcast(evaluate_value(expression, resolve), length)


def broadcast(value: Any, length: int) -> np.ndarray:
    """Materialize a scalar-or-array evaluation result as a full array."""
    if isinstance(value, np.ndarray) and value.ndim == 1:
        return value
    if isinstance(value, str):
        result = np.empty(length, dtype=object)
        result[:] = value
        return result
    return np.full(length, value)


def evaluate_value(expression: Expression, resolve: Callable[[ColumnRef], Any]) -> Any:
    """Evaluate to a scalar or a 1-d array, without broadcasting scalars."""
    if isinstance(expression, ColumnRef):
        return resolve(expression)
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, Star):
        return 1
    if isinstance(expression, FunctionCall):
        implementation = _BUILTIN_ARRAY_FUNCTIONS.get(expression.name.lower())
        if implementation is None:
            raise NotVectorizable(f"function {expression.name!r} is not vectorizable")
        args = [evaluate_value(arg, resolve) for arg in expression.args]
        try:
            return implementation(*args)
        except TypeError as exc:  # e.g. string arithmetic on object arrays
            raise NotVectorizable(str(exc)) from exc
    raise NotVectorizable(f"unsupported expression {type(expression).__name__}")
