"""Vectorized equi-join kernel primitives: key encoding, grouping, probing.

The plan executor's hash join and the Skinner preprocessor's join-map build
used to run as Python dict loops — one tuple construction, one dict lookup,
and one list append per row.  This module provides the columnar equivalents
they now share:

* :func:`encode_composite_keys` — turn the (possibly composite) equi-join
  key of both join sides into **one int64 code vector per side**, such that
  code equality is exactly value-tuple equality.  String columns reuse their
  dictionary codes from :class:`repro.storage.column.Column` (the probe
  side's dictionary is translated into the build side's code space); numeric
  columns are factorized jointly over both sides via ``np.unique``.
* :func:`group_rows` — group a key vector into sorted runs
  (``np.argsort`` + run boundaries), the columnar replacement for building a
  ``dict[key, list[row]]`` hash table.
* :func:`probe_grouped` / :func:`expand_matches` — binary-search probe keys
  against the grouped build side (``np.searchsorted``) and emit the
  ``(selector, build_rows)`` arrays of the join result directly.

NaN join-key semantics (pinned)
-------------------------------
A ``NaN`` float join key **never matches** — not even another ``NaN``.
This mirrors the row path: its dict keys are freshly constructed ``float``
objects, and ``nan != nan`` in Python, so a NaN key can never be found
again.  The kernel enforces the same rule explicitly: NaN rows are marked
invalid on both sides and excluded from grouping and probing (a sort-based
kernel would otherwise group NaNs together and invent matches the row path
never produces).

Cross-type keys behave like Python ``==`` exactly: ``1 == 1.0`` matches
(the float side of a mixed int/float part is narrowed to its
exactly-integral values and compared in int64, so ``2**53 + 1`` and
``2.0**53`` stay distinct), while a string part compared against a numeric
part matches nothing.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.storage.column import Column, ColumnType

__all__ = [
    "CompositeKeys",
    "GroupedRows",
    "KeyPart",
    "encode_composite_keys",
    "expand_matches",
    "group_rows",
    "probe_grouped",
]

#: Radix-combination guard: composite code spans stay below this bound, and
#: are re-compressed through ``np.unique`` when the next part would overflow.
_MAX_SPAN = 2**62


@dataclass(frozen=True)
class KeyPart:
    """One column-equality component of a composite join key.

    ``build_values`` / ``probe_values`` are the *physical* column values
    (dictionary codes for strings) already gathered for the join's candidate
    rows, so the kernel never touches full base tables.
    """

    build_column: Column
    build_values: np.ndarray
    probe_column: Column
    probe_values: np.ndarray


@dataclass(frozen=True)
class CompositeKeys:
    """Both sides of a composite join key encoded into one int64 code space.

    ``build_codes[i] == probe_codes[j]`` (with both rows valid) holds exactly
    when every key column of build row ``i`` equals the corresponding key
    column of probe row ``j`` under Python ``==``.  Invalid rows (NaN keys,
    string-vs-numeric type mismatches) can never match.
    """

    build_codes: np.ndarray
    probe_codes: np.ndarray
    build_valid: np.ndarray
    probe_valid: np.ndarray


@dataclass(frozen=True)
class GroupedRows:
    """Rows grouped by key: the columnar form of ``dict[key, list[row]]``.

    ``rows`` holds the original row indices reordered so equal keys are
    adjacent; run ``g`` covers ``rows[starts[g] : starts[g] + counts[g]]``
    and has key ``keys[g]``.  The grouping sort is stable, so rows within a
    run keep their original (ascending) order — exactly the order in which
    the dict-based build appended them to its buckets.
    """

    rows: np.ndarray
    keys: np.ndarray
    starts: np.ndarray
    counts: np.ndarray


# ----------------------------------------------------------------------
# composite key encoding
# ----------------------------------------------------------------------
def encode_composite_keys(parts: Sequence[KeyPart]) -> CompositeKeys:
    """Encode a composite equi-join key into one int64 code per side.

    Parts are combined by mixed radix over their per-part code domains;
    whenever the combined span would overflow int64, the partial codes are
    re-compressed to a dense domain via ``np.unique`` first, so any number
    of key columns is supported.
    """
    if not parts:
        raise ValueError("composite key needs at least one part")
    num_build = int(np.asarray(parts[0].build_values).shape[0])
    num_probe = int(np.asarray(parts[0].probe_values).shape[0])
    build_codes = np.zeros(num_build, dtype=np.int64)
    probe_codes = np.zeros(num_probe, dtype=np.int64)
    build_valid = np.ones(num_build, dtype=bool)
    probe_valid = np.ones(num_probe, dtype=bool)
    span = 1
    for part in parts:
        part_build, part_probe, part_build_valid, part_probe_valid, domain = _encode_part(part)
        if span > _MAX_SPAN // max(1, domain):
            joint = np.concatenate([build_codes, probe_codes])
            _, inverse = np.unique(joint, return_inverse=True)
            inverse = inverse.astype(np.int64, copy=False).reshape(-1)
            build_codes = inverse[:num_build]
            probe_codes = inverse[num_build:]
            span = max(1, num_build + num_probe)
        build_codes = build_codes * domain + part_build
        probe_codes = probe_codes * domain + part_probe
        span *= max(1, domain)
        if part_build_valid is not None:
            build_valid &= part_build_valid
        if part_probe_valid is not None:
            probe_valid &= part_probe_valid
    return CompositeKeys(build_codes, probe_codes, build_valid, probe_valid)


def _encode_part(
    part: KeyPart,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None, int]:
    """Encode one key column pair into a shared dense-ish int64 domain.

    Returns ``(build_codes, probe_codes, build_valid, probe_valid, domain)``
    with codes in ``[0, domain)`` and ``None`` valid masks meaning all-valid.
    """
    build_column, probe_column = part.build_column, part.probe_column
    build = np.asarray(part.build_values)
    probe = np.asarray(part.probe_values)
    if build_column.ctype is ColumnType.STRING and probe_column.ctype is ColumnType.STRING:
        # Reuse dictionary codes: the build side's codes are already dense;
        # the probe side's dictionary is translated into the build side's
        # code space (absent values share one sentinel code that matches no
        # build row, which keeps the radix domain at dictionary size + 1).
        translation = build_column.translate_codes(probe_column)
        probe_codes = translation[probe] if probe.shape[0] else probe.astype(np.int64)
        domain = len(build_column.dictionary) + 1
        return build.astype(np.int64, copy=False), probe_codes, None, None, domain
    if ColumnType.STRING in (build_column.ctype, probe_column.ctype):
        # String vs numeric: Python `==` is False for every pair, so no row
        # on either side can participate in a match.
        return (
            np.zeros(build.shape[0], dtype=np.int64),
            np.zeros(probe.shape[0], dtype=np.int64),
            np.zeros(build.shape[0], dtype=bool),
            np.zeros(probe.shape[0], dtype=bool),
            1,
        )
    build_valid: np.ndarray | None = None
    probe_valid: np.ndarray | None = None
    if (build_column.ctype is ColumnType.FLOAT) != (probe_column.ctype is ColumnType.FLOAT):
        # Mixed int/float key: Python compares exactly (`2**53 + 1 != 2.0**53`),
        # so casting the int side to float64 would invent matches above 2**53.
        # Instead the float side keeps only exactly-integral in-int64-range
        # values (the only ones that can equal an int64) and is compared as
        # int64; everything else — NaN included — can never match.
        if build_column.ctype is ColumnType.FLOAT:
            build, build_valid = _integral_as_int64(build)
        else:
            probe, probe_valid = _integral_as_int64(probe)
    elif build_column.ctype is ColumnType.FLOAT:
        build_nan = np.isnan(build)
        probe_nan = np.isnan(probe)
        if build_nan.any():
            build_valid = ~build_nan
            build = np.where(build_nan, 0.0, build)
        if probe_nan.any():
            probe_valid = ~probe_nan
            probe = np.where(probe_nan, 0.0, probe)
    combined = np.concatenate([build, probe])
    _, inverse = np.unique(combined, return_inverse=True)
    inverse = inverse.astype(np.int64, copy=False).reshape(-1)
    domain = max(1, int(inverse.max()) + 1) if inverse.shape[0] else 1
    return inverse[: build.shape[0]], inverse[build.shape[0]:], build_valid, probe_valid, domain


def _integral_as_int64(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Exactly-integral in-range float64 values as int64, others masked out."""
    values = values.astype(np.float64, copy=False)
    with np.errstate(invalid="ignore"):
        valid = (
            np.isfinite(values)
            & (np.floor(values) == values)
            & (values >= -9_223_372_036_854_775_808.0)
            & (values < 9_223_372_036_854_775_808.0)
        )
    return np.where(valid, values, 0.0).astype(np.int64), valid


# ----------------------------------------------------------------------
# grouping and probing
# ----------------------------------------------------------------------
def group_rows(values: np.ndarray, rows: np.ndarray | None = None) -> GroupedRows:
    """Group ``rows`` (default ``arange``) into runs of equal ``values``.

    The stable argsort keeps rows of equal keys in ascending order, which
    both the hash-jump's per-bucket ``searchsorted`` and the byte-identical
    emission order of the join kernel rely on.  Run boundaries are detected
    with ``!=`` on adjacent sorted values, so for float keys each NaN forms
    its own singleton run (``nan != nan``) — no accidental NaN grouping.
    """
    values = np.asarray(values)
    if rows is None:
        rows = np.arange(values.shape[0], dtype=np.int64)
    else:
        rows = np.asarray(rows, dtype=np.int64)
    if values.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return GroupedRows(empty, values[:0], empty, empty)
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    boundaries = np.concatenate(([True], sorted_values[1:] != sorted_values[:-1]))
    starts = np.flatnonzero(boundaries).astype(np.int64)
    counts = np.diff(np.append(starts, values.shape[0])).astype(np.int64)
    return GroupedRows(rows[order], sorted_values[starts], starts, counts)


def probe_grouped(
    grouped: GroupedRows, keys: np.ndarray, valid: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Match probe ``keys`` against a grouped build side.

    Returns ``(probe_rows, groups)``: the probe rows (ascending) that found
    a build run, and the index of that run in ``grouped``.  ``valid`` masks
    out probe rows that may never match (NaN keys, type mismatches).
    """
    keys = np.asarray(keys)
    empty = np.empty(0, dtype=np.int64)
    if grouped.keys.shape[0] == 0 or keys.shape[0] == 0:
        return empty, empty
    positions = np.searchsorted(grouped.keys, keys)
    safe = np.minimum(positions, grouped.keys.shape[0] - 1)
    hits = (positions < grouped.keys.shape[0]) & (grouped.keys[safe] == keys)
    if valid is not None:
        hits &= valid
    probe_rows = np.flatnonzero(hits).astype(np.int64)
    return probe_rows, positions[probe_rows].astype(np.int64)


def expand_matches(
    grouped: GroupedRows, probe_rows: np.ndarray, groups: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Emit the ``(selector, build_rows)`` arrays for matched probe rows.

    ``selector[k]`` is the probe row of output row ``k`` and ``build_rows[k]``
    the matching build row; probe rows appear in their given order, and the
    build rows of one run in ascending order — the same emission order as the
    dict-based loop, so join results are byte-identical between the paths.
    """
    counts = grouped.counts[groups]
    total = int(counts.sum())
    selector = np.repeat(probe_rows, counts)
    flat_starts = np.repeat(grouped.starts[groups], counts)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return selector, grouped.rows[flat_starts + offsets]
