"""Post-processing: projection, aggregation, grouping, ordering, limit.

The join phase of every engine produces a set of tuple-index combinations.
Post-processing materializes the requested output from them (paper §3:
"post-processing involves grouping, aggregation, and sorting").  It is shared
by all engines so that result correctness only depends on the join result.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from repro.engine.meter import CostMeter
from repro.engine.relation import RowIdRelation
from repro.errors import ExecutionError
from repro.query.query import Query
from repro.query.udf import UdfRegistry
from repro.storage.table import Table


def post_process(
    query: Query,
    relation: RowIdRelation,
    tables: Mapping[str, Table],
    udfs: UdfRegistry | None = None,
    meter: CostMeter | None = None,
) -> Table:
    """Turn a join result into the final output table of the query."""
    meter = meter if meter is not None else CostMeter()
    bindings = [relation.binding(row, tables) for row in range(len(relation))]
    meter.charge_output(len(bindings))

    if query.has_aggregates or query.group_by:
        rows, names = _aggregate(query, bindings, udfs)
    else:
        rows, names = _project(query, bindings, udfs, tables)

    if query.distinct:
        rows = _distinct(rows, names)
    if query.order_by:
        rows = _order(query, rows, names, udfs)
    if query.limit is not None:
        rows = rows[: query.limit]
    columns = {name: [row[name] for row in rows] for name in names}
    if not rows:
        columns = {name: [] for name in names}
    return Table("result", columns) if names else Table("result", {"count": [len(rows)]})


# ----------------------------------------------------------------------
# projection
# ----------------------------------------------------------------------
def _project(
    query: Query,
    bindings: Sequence[Mapping[str, Mapping[str, Any]]],
    udfs: UdfRegistry | None,
    tables: Mapping[str, Table],
) -> tuple[list[dict[str, Any]], list[str]]:
    if not query.select_items:
        names = []
        for alias, _ in query.tables:
            for column in tables[alias].column_names:
                names.append(f"{alias}_{column}")
        rows = []
        for binding in bindings:
            row = {}
            for alias, _ in query.tables:
                for column, value in binding[alias].items():
                    row[f"{alias}_{column}"] = value
            row["__binding__"] = binding
            rows.append(row)
        return rows, names
    names = [item.output_name(i) for i, item in enumerate(query.select_items)]
    rows = []
    for binding in bindings:
        row = {}
        for i, item in enumerate(query.select_items):
            assert item.expression is not None
            row[names[i]] = item.expression.evaluate(binding, udfs)
        # Keep source values accessible for ORDER BY expressions.
        row["__binding__"] = binding
        rows.append(row)
    return rows, names


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def _aggregate(
    query: Query,
    bindings: Sequence[Mapping[str, Mapping[str, Any]]],
    udfs: UdfRegistry | None,
) -> tuple[list[dict[str, Any]], list[str]]:
    names = [item.output_name(i) for i, item in enumerate(query.select_items)]
    groups: dict[tuple[Any, ...], dict[str, Any]] = {}
    for binding in bindings:
        key = tuple(expr.evaluate(binding, udfs) for expr in query.group_by)
        state = groups.get(key)
        if state is None:
            state = {"__first__": binding, "__count__": 0, "__aggs__": {}}
            groups[key] = state
        state["__count__"] += 1
        for i, item in enumerate(query.select_items):
            if not item.is_aggregate:
                continue
            assert item.aggregate is not None
            value = item.aggregate.argument.evaluate(binding, udfs)
            _accumulate(state["__aggs__"], i, item.aggregate.function, value)

    rows: list[dict[str, Any]] = []
    for key, state in groups.items():
        row: dict[str, Any] = {}
        binding = state["__first__"]
        for i, item in enumerate(query.select_items):
            if item.is_aggregate:
                assert item.aggregate is not None
                row[names[i]] = _finalize(state["__aggs__"], i, item.aggregate.function,
                                          state["__count__"])
            else:
                assert item.expression is not None
                row[names[i]] = item.expression.evaluate(binding, udfs)
        row["__binding__"] = binding
        rows.append(row)
    if not query.group_by and not rows:
        # Aggregates over an empty input still produce one row: COUNT and SUM
        # are 0, the other aggregates have no defined value (NaN), and plain
        # expressions default to an empty string (NULLs are not modelled).
        row = {}
        for i, item in enumerate(query.select_items):
            if item.is_aggregate:
                assert item.aggregate is not None
                function = item.aggregate.function
                row[names[i]] = 0 if function in ("count", "sum") else float("nan")
            else:
                row[names[i]] = ""
        rows.append(row)
    return rows, names


def _accumulate(states: dict[int, Any], index: int, function: str, value: Any) -> None:
    function = function.lower()
    if function == "count":
        states[index] = states.get(index, 0) + (1 if value is not None else 0)
    elif function == "sum":
        states[index] = states.get(index, 0) + value
    elif function == "avg":
        total, count = states.get(index, (0, 0))
        states[index] = (total + value, count + 1)
    elif function == "min":
        current = states.get(index)
        states[index] = value if current is None or value < current else current
    elif function == "max":
        current = states.get(index)
        states[index] = value if current is None or value > current else current
    else:  # pragma: no cover - validated at construction
        raise ExecutionError(f"unknown aggregate {function!r}")


def _finalize(states: dict[int, Any], index: int, function: str, count: int) -> Any:
    function = function.lower()
    if function == "avg":
        total, n = states.get(index, (0, 0))
        return total / n if n else None
    if function == "count":
        return states.get(index, 0)
    return states.get(index)


# ----------------------------------------------------------------------
# distinct / ordering
# ----------------------------------------------------------------------
def _distinct(rows: list[dict[str, Any]], names: list[str]) -> list[dict[str, Any]]:
    seen: set[tuple[Any, ...]] = set()
    unique: list[dict[str, Any]] = []
    for row in rows:
        key = tuple(row[name] for name in names)
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique


def _order(
    query: Query,
    rows: list[dict[str, Any]],
    names: list[str],
    udfs: UdfRegistry | None,
) -> list[dict[str, Any]]:
    def sort_key(row: dict[str, Any]) -> tuple:
        keys = []
        for item in query.order_by:
            value = _order_value(item.expression, row, names, udfs)
            keys.append(_Reversed(value) if not item.ascending else value)
        return tuple(keys)

    return sorted(rows, key=sort_key)


def _order_value(expression, row: dict[str, Any], names: list[str], udfs) -> Any:
    from repro.query.expressions import ColumnRef

    # An ORDER BY item may name an output column (by alias) ...
    if isinstance(expression, ColumnRef) and expression.column in names:
        if expression.table not in row.get("__binding__", {}):
            return row[expression.column]
    # ... or any expression over the source tables.
    binding = row.get("__binding__")
    if binding is not None:
        try:
            return expression.evaluate(binding, udfs)
        except Exception:  # noqa: BLE001 - fall back to output columns
            pass
    if isinstance(expression, ColumnRef) and expression.column in row:
        return row[expression.column]
    raise ExecutionError(f"cannot evaluate ORDER BY expression {expression.display()}")


class _Reversed:
    """Wrapper inverting comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value
