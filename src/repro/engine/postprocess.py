"""Post-processing: projection, aggregation, grouping, ordering, limit.

The join phase of every engine produces a set of tuple-index combinations.
Post-processing materializes the requested output from them (paper §3:
"post-processing involves grouping, aggregation, and sorting").  It is shared
by all engines so that result correctness only depends on the join result.

Two implementations produce identical outputs:

* the **columnar** pipeline (the default) gathers each referenced column once
  into a NumPy array over the join result's row-id vectors and runs
  projection, grouping/aggregation (``reduceat`` over group segments),
  DISTINCT, and ORDER BY as array operations;
* the **row** pipeline materializes one Python dict per result tuple and
  processes them tuple at a time — the pre-vectorization reference, selected
  with ``mode="rows"`` (``SkinnerConfig.postprocess_mode``) for A/B
  comparisons, and used automatically whenever the query's expressions are
  not vectorizable (UDF calls in the select list, GROUP BY, or ORDER BY).

Both pipelines emit rows in the same order: groups appear in first-occurrence
order, DISTINCT keeps first occurrences, and sorting is stable.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.engine.meter import CostMeter
from repro.engine.relation import RowIdRelation
from repro.engine.vectorized import NotVectorizable, evaluate_array, vectorizable
from repro.errors import ExecutionError
from repro.query.expressions import ColumnRef
from repro.query.query import Query
from repro.query.udf import UdfRegistry
from repro.storage.table import Table

#: Valid values of the ``mode`` parameter / ``SkinnerConfig.postprocess_mode``.
POSTPROCESS_MODES = ("columnar", "rows")


def post_process(
    query: Query,
    relation: RowIdRelation,
    tables: Mapping[str, Table],
    udfs: UdfRegistry | None = None,
    meter: CostMeter | None = None,
    *,
    mode: str = "columnar",
) -> Table:
    """Turn a join result into the final output table of the query."""
    if mode not in POSTPROCESS_MODES:
        raise ExecutionError(f"unknown postprocess mode {mode!r}")
    meter = meter if meter is not None else CostMeter()
    meter.charge_output(len(relation))
    if mode == "columnar" and _columnar_supported(query):
        try:
            return _post_process_columnar(query, relation, tables)
        except NotVectorizable:
            pass  # e.g. unorderable value mixes: row semantics are authoritative
    return _post_process_rows(query, relation, tables, udfs)


def _columnar_supported(query: Query) -> bool:
    """Whether every post-processing expression is UDF-free and vectorizable."""
    expressions = []
    for item in query.select_items:
        expressions.append(item.aggregate.argument if item.aggregate else item.expression)
    expressions.extend(query.group_by)
    expressions.extend(item.expression for item in query.order_by)
    return all(vectorizable(expression) for expression in expressions)


# ======================================================================
# columnar pipeline
# ======================================================================
class _ColumnarData:
    """Decoded column arrays over the join result, gathered lazily."""

    def __init__(self, relation: RowIdRelation, tables: Mapping[str, Table]) -> None:
        self._relation = relation
        self._tables = tables
        self._cache: dict[tuple[str, str], np.ndarray] = {}
        self.length = len(relation)
        self.aliases = tuple(relation.aliases)

    def table(self, alias: str) -> Table:
        return self._tables[alias]

    def column(self, alias: str, column: str) -> np.ndarray:
        """Decoded values of ``alias.column`` aligned with the result rows."""
        key = (alias, column)
        values = self._cache.get(key)
        if values is None:
            try:
                source = self._tables[alias].column(column)
            except Exception as exc:  # unknown alias or column, like the row path
                raise ExecutionError(f"no value bound for {alias}.{column}") from exc
            values = source.decoded_data[self._relation.ids(alias)]
            self._cache[key] = values
        return values

    def evaluate(self, expression, rows: np.ndarray | None = None) -> np.ndarray:
        """Evaluate an expression over (a subset of) the result rows."""

        def resolve(ref: ColumnRef) -> np.ndarray:
            values = self.column(ref.table, ref.column)
            return values if rows is None else values[rows]

        length = self.length if rows is None else int(rows.shape[0])
        return evaluate_array(expression, resolve, length)


def _post_process_columnar(
    query: Query, relation: RowIdRelation, tables: Mapping[str, Table]
) -> Table:
    if (query.has_aggregates or query.group_by) and not query.group_by and len(relation) == 0:
        # Global aggregates over an empty input produce the scalar default
        # row; delegate this single row to the (cheap) row pipeline.
        return _post_process_rows(query, relation, tables, None)
    data = _ColumnarData(relation, tables)
    if query.has_aggregates or query.group_by:
        columns, names, source_rows = _aggregate_columnar(query, data)
    else:
        columns, names, source_rows = _project_columnar(query, data)
    length = int(source_rows.shape[0])
    if query.distinct:
        keep = _distinct_selector(columns, names, length)
        columns = {name: values[keep] for name, values in columns.items()}
        source_rows = source_rows[keep]
        length = int(source_rows.shape[0])
    if query.order_by:
        order = _order_selector(query, columns, names, data, source_rows, length,
                                limit=query.limit)
        columns = {name: values[order] for name, values in columns.items()}
        source_rows = source_rows[order]
    if query.limit is not None:
        columns = {name: values[: query.limit] for name, values in columns.items()}
        source_rows = source_rows[: query.limit]
        length = int(source_rows.shape[0])
    if not names:
        return Table("result", {"count": [length]})
    if length == 0:
        # Match the row pipeline's typing of empty results exactly.
        return Table("result", {name: [] for name in dict.fromkeys(names)})
    return Table("result", columns)


# ----------------------------------------------------------------------
# projection (columnar)
# ----------------------------------------------------------------------
def _project_columnar(
    query: Query, data: _ColumnarData
) -> tuple[dict[str, np.ndarray], list[str], np.ndarray]:
    source_rows = np.arange(data.length, dtype=np.int64)
    columns: dict[str, np.ndarray] = {}
    names: list[str] = []
    if not query.select_items:
        for alias, _ in query.tables:
            for column in data.table(alias).column_names:
                name = f"{alias}_{column}"
                names.append(name)
                columns[name] = data.column(alias, column)
        return columns, names, source_rows
    names = [item.output_name(i) for i, item in enumerate(query.select_items)]
    for i, item in enumerate(query.select_items):
        assert item.expression is not None
        columns[names[i]] = data.evaluate(item.expression)
    return columns, names, source_rows


# ----------------------------------------------------------------------
# aggregation (columnar)
# ----------------------------------------------------------------------
def _aggregate_columnar(
    query: Query, data: _ColumnarData
) -> tuple[dict[str, np.ndarray], list[str], np.ndarray]:
    names = [item.output_name(i) for i, item in enumerate(query.select_items)]
    length = data.length
    if query.group_by:
        codes = _factorize([data.evaluate(expression) for expression in query.group_by], length)
        _, first_index, inverse = np.unique(codes, return_index=True, return_inverse=True)
        # Emit groups in first-occurrence order, like the row pipeline's dict.
        emission = np.argsort(first_index, kind="stable")
        rank = np.empty(emission.shape[0], dtype=np.int64)
        rank[emission] = np.arange(emission.shape[0], dtype=np.int64)
        group_ids = rank[inverse]
        representatives = first_index[emission]
    else:
        group_ids = np.zeros(length, dtype=np.int64)
        representatives = np.zeros(1 if length else 0, dtype=np.int64)
    num_groups = int(representatives.shape[0])
    sorter = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[sorter]
    starts = np.flatnonzero(np.r_[True, sorted_ids[1:] != sorted_ids[:-1]]) if length else (
        np.empty(0, dtype=np.int64))
    counts = np.diff(np.r_[starts, length])

    columns: dict[str, np.ndarray] = {}
    for i, item in enumerate(query.select_items):
        if item.is_aggregate:
            assert item.aggregate is not None
            values = data.evaluate(item.aggregate.argument)[sorter]
            columns[names[i]] = _reduce_groups(
                item.aggregate.function, values, starts, counts, num_groups
            )
        else:
            assert item.expression is not None
            columns[names[i]] = data.evaluate(item.expression, rows=representatives)
    return columns, names, representatives


def _factorize(key_arrays: Sequence[np.ndarray], length: int) -> np.ndarray:
    """Combine key columns into one int64 code per row (equal codes iff all
    key values are equal), re-compacting after each column to avoid overflow."""
    codes = np.zeros(length, dtype=np.int64)
    for values in key_arrays:
        inverse = _unique_inverse(values)
        width = int(inverse.max()) + 1 if length else 1
        _, codes = np.unique(codes * width + inverse, return_inverse=True)
        codes = codes.astype(np.int64, copy=False)
    return codes


def _unique_inverse(values: np.ndarray) -> np.ndarray:
    try:
        _, inverse = np.unique(values, return_inverse=True)
    except TypeError as exc:  # unorderable mixed-type keys: row path handles them
        raise NotVectorizable(str(exc)) from exc
    return inverse.astype(np.int64, copy=False)


def _reduce_groups(
    function: str, values: np.ndarray, starts: np.ndarray, counts: np.ndarray, num_groups: int
) -> np.ndarray:
    function = function.lower()
    if num_groups == 0:
        return np.empty(0, dtype=values.dtype if function != "avg" else np.float64)
    if function == "count":
        # NULLs are not modelled (see repro.storage.column), so every row of
        # the argument counts — COUNT equals the group size, as in the row
        # pipeline where no evaluated value is ever None.
        return counts
    if function in ("sum", "avg") and values.dtype == object:
        raise NotVectorizable("SUM/AVG over strings follows row semantics")
    try:
        if function == "sum":
            return np.add.reduceat(values, starts)
        if function == "min":
            return np.minimum.reduceat(values, starts)
        if function == "max":
            return np.maximum.reduceat(values, starts)
        if function == "avg":
            return np.true_divide(np.add.reduceat(values, starts), counts)
    except TypeError as exc:
        raise NotVectorizable(str(exc)) from exc
    raise ExecutionError(f"unknown aggregate {function!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# distinct / ordering (columnar)
# ----------------------------------------------------------------------
def _distinct_selector(
    columns: dict[str, np.ndarray], names: list[str], length: int
) -> np.ndarray:
    codes = _factorize([columns[name] for name in names], length)
    _, first_index = np.unique(codes, return_index=True)
    return np.sort(first_index)


def _order_selector(
    query: Query,
    columns: dict[str, np.ndarray],
    names: list[str],
    data: _ColumnarData,
    source_rows: np.ndarray,
    length: int,
    *,
    limit: int | None = None,
) -> np.ndarray:
    keys = []
    for item in query.order_by:
        values = _order_values(item.expression, columns, names, data, source_rows)
        key = _sort_key(values)
        keys.append(key if item.ascending else -key)
    if limit is not None and 0 <= limit < length:
        selected = _topk_selector(keys, length, limit)
        if selected is not None:
            return selected
    try:
        return np.lexsort(tuple(reversed(keys)))
    except TypeError as exc:  # pragma: no cover - keys are numeric by now
        raise NotVectorizable(str(exc)) from exc


def _topk_selector(keys: list[np.ndarray], length: int, limit: int) -> np.ndarray | None:
    """Top-``limit`` row selector without a full sort (LIMIT streaming).

    ``np.argpartition`` on the primary key narrows the rows to the ones
    whose primary key is within the ``limit`` smallest values; only that
    candidate set is then stably ``lexsort``-ed with all keys.  The result
    is *identical* to full-sort-then-slice: the stable sub-sort visits the
    candidates in their original order, so ties resolve exactly as the full
    sort resolves them.  Returns ``None`` to fall back to the full sort
    when partitioning cannot be trusted (NaN pivots — NaNs sort last but
    compare false, which would drop candidates).
    """
    if limit == 0:
        return np.empty(0, dtype=np.int64)
    primary = keys[0]
    part = np.argpartition(primary, limit - 1)[:limit]
    pivot = primary[part].max()
    if isinstance(pivot, np.floating) and np.isnan(pivot):
        return None
    candidates = np.flatnonzero(primary <= pivot)
    sub_keys = tuple(reversed([key[candidates] for key in keys]))
    try:
        order_local = np.lexsort(sub_keys)
    except TypeError as exc:  # pragma: no cover - keys are numeric by now
        raise NotVectorizable(str(exc)) from exc
    return candidates[order_local[:limit]]


def _order_values(
    expression,
    columns: dict[str, np.ndarray],
    names: list[str],
    data: _ColumnarData,
    source_rows: np.ndarray,
) -> np.ndarray:
    # Mirror the row pipeline's resolution: an ORDER BY item may name an
    # output column (by alias) ...
    if isinstance(expression, ColumnRef) and expression.column in columns:
        if expression.table not in data.aliases:
            return columns[expression.column]
    # ... or any expression over the source tables ...
    try:
        return data.evaluate(expression, rows=source_rows)
    except NotVectorizable:
        raise
    except Exception:  # noqa: BLE001 - fall back to output columns
        pass
    # ... falling back to the output column of the same name.
    if isinstance(expression, ColumnRef) and expression.column in columns:
        return columns[expression.column]
    raise ExecutionError(f"cannot evaluate ORDER BY expression {expression.display()}")


def _sort_key(values: np.ndarray) -> np.ndarray:
    """A numeric, negatable array sorting exactly like the decoded values."""
    if values.dtype == object:
        return _unique_inverse(values)  # ranks: order-isomorphic to the strings
    return values


# ======================================================================
# row pipeline (reference implementation, and UDF fallback)
# ======================================================================
def _post_process_rows(
    query: Query,
    relation: RowIdRelation,
    tables: Mapping[str, Table],
    udfs: UdfRegistry | None,
) -> Table:
    bindings = [relation.binding(row, tables) for row in range(len(relation))]
    if query.has_aggregates or query.group_by:
        rows, names = _aggregate(query, bindings, udfs)
    else:
        rows, names = _project(query, bindings, udfs, tables)

    if query.distinct:
        rows = _distinct(rows, names)
    if query.order_by:
        rows = _order(query, rows, names, udfs)
    if query.limit is not None:
        rows = rows[: query.limit]
    columns = {name: [row[name] for row in rows] for name in names}
    if not rows:
        columns = {name: [] for name in names}
    return Table("result", columns) if names else Table("result", {"count": [len(rows)]})


# ----------------------------------------------------------------------
# projection
# ----------------------------------------------------------------------
def _project(
    query: Query,
    bindings: Sequence[Mapping[str, Mapping[str, Any]]],
    udfs: UdfRegistry | None,
    tables: Mapping[str, Table],
) -> tuple[list[dict[str, Any]], list[str]]:
    if not query.select_items:
        names = []
        for alias, _ in query.tables:
            for column in tables[alias].column_names:
                names.append(f"{alias}_{column}")
        rows = []
        for binding in bindings:
            row = {}
            for alias, _ in query.tables:
                for column, value in binding[alias].items():
                    row[f"{alias}_{column}"] = value
            row["__binding__"] = binding
            rows.append(row)
        return rows, names
    names = [item.output_name(i) for i, item in enumerate(query.select_items)]
    rows = []
    for binding in bindings:
        row = {}
        for i, item in enumerate(query.select_items):
            assert item.expression is not None
            row[names[i]] = item.expression.evaluate(binding, udfs)
        # Keep source values accessible for ORDER BY expressions.
        row["__binding__"] = binding
        rows.append(row)
    return rows, names


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def _aggregate(
    query: Query,
    bindings: Sequence[Mapping[str, Mapping[str, Any]]],
    udfs: UdfRegistry | None,
) -> tuple[list[dict[str, Any]], list[str]]:
    names = [item.output_name(i) for i, item in enumerate(query.select_items)]
    groups: dict[tuple[Any, ...], dict[str, Any]] = {}
    for binding in bindings:
        key = tuple(expr.evaluate(binding, udfs) for expr in query.group_by)
        state = groups.get(key)
        if state is None:
            state = {"__first__": binding, "__count__": 0, "__aggs__": {}}
            groups[key] = state
        state["__count__"] += 1
        for i, item in enumerate(query.select_items):
            if not item.is_aggregate:
                continue
            assert item.aggregate is not None
            value = item.aggregate.argument.evaluate(binding, udfs)
            _accumulate(state["__aggs__"], i, item.aggregate.function, value)

    rows: list[dict[str, Any]] = []
    for key, state in groups.items():
        row: dict[str, Any] = {}
        binding = state["__first__"]
        for i, item in enumerate(query.select_items):
            if item.is_aggregate:
                assert item.aggregate is not None
                row[names[i]] = _finalize(state["__aggs__"], i, item.aggregate.function,
                                          state["__count__"])
            else:
                assert item.expression is not None
                row[names[i]] = item.expression.evaluate(binding, udfs)
        row["__binding__"] = binding
        rows.append(row)
    if not query.group_by and not rows:
        # Aggregates over an empty input still produce one row: COUNT and SUM
        # are 0, the other aggregates have no defined value (NaN), and plain
        # expressions default to an empty string (NULLs are not modelled).
        row = {}
        for i, item in enumerate(query.select_items):
            if item.is_aggregate:
                assert item.aggregate is not None
                function = item.aggregate.function
                row[names[i]] = 0 if function in ("count", "sum") else float("nan")
            else:
                row[names[i]] = ""
        rows.append(row)
    return rows, names


def _accumulate(states: dict[int, Any], index: int, function: str, value: Any) -> None:
    function = function.lower()
    if function == "count":
        states[index] = states.get(index, 0) + (1 if value is not None else 0)
    elif function == "sum":
        states[index] = states.get(index, 0) + value
    elif function == "avg":
        total, count = states.get(index, (0, 0))
        states[index] = (total + value, count + 1)
    elif function == "min":
        current = states.get(index)
        states[index] = value if current is None or value < current else current
    elif function == "max":
        current = states.get(index)
        states[index] = value if current is None or value > current else current
    else:  # pragma: no cover - validated at construction
        raise ExecutionError(f"unknown aggregate {function!r}")


def _finalize(states: dict[int, Any], index: int, function: str, count: int) -> Any:
    function = function.lower()
    if function == "avg":
        total, n = states.get(index, (0, 0))
        return total / n if n else None
    if function == "count":
        return states.get(index, 0)
    return states.get(index)


# ----------------------------------------------------------------------
# distinct / ordering
# ----------------------------------------------------------------------
def _distinct(rows: list[dict[str, Any]], names: list[str]) -> list[dict[str, Any]]:
    seen: set[tuple[Any, ...]] = set()
    unique: list[dict[str, Any]] = []
    for row in rows:
        key = tuple(row[name] for name in names)
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique


def _order(
    query: Query,
    rows: list[dict[str, Any]],
    names: list[str],
    udfs: UdfRegistry | None,
) -> list[dict[str, Any]]:
    def sort_key(row: dict[str, Any]) -> tuple:
        keys = []
        for item in query.order_by:
            value = _order_value(item.expression, row, names, udfs)
            keys.append(_Reversed(value) if not item.ascending else value)
        return tuple(keys)

    return sorted(rows, key=sort_key)


def _order_value(expression, row: dict[str, Any], names: list[str], udfs) -> Any:
    # An ORDER BY item may name an output column (by alias) ...
    if isinstance(expression, ColumnRef) and expression.column in names:
        if expression.table not in row.get("__binding__", {}):
            return row[expression.column]
    # ... or any expression over the source tables.
    binding = row.get("__binding__")
    if binding is not None:
        try:
            return expression.evaluate(binding, udfs)
        except Exception:  # noqa: BLE001 - fall back to output columns
            pass
    if isinstance(expression, ColumnRef) and expression.column in row:
        return row[expression.column]
    raise ExecutionError(f"cannot evaluate ORDER BY expression {expression.display()}")


class _Reversed:
    """Wrapper inverting comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value
