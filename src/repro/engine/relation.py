"""Row-id relations: join results as vectors of base-table row positions.

A join result over aliases ``(a, b, c)`` is stored as three equally long
integer arrays: row ``i`` of the result is the combination of base-table
rows ``ids['a'][i]``, ``ids['b'][i]``, ``ids['c'][i]``.  This mirrors the
paper's concise tuple representation (§4.5): tuples are described by arrays
of tuple indices and materialized only on demand.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import ExecutionError
from repro.storage.table import Table


class RowIdRelation:
    """A (possibly intermediate) join result in row-id representation."""

    def __init__(self, ids: Mapping[str, np.ndarray]) -> None:
        self._ids: dict[str, np.ndarray] = {}
        length: int | None = None
        for alias, positions in ids.items():
            positions = np.asarray(positions, dtype=np.int64)
            if length is None:
                length = positions.shape[0]
            elif positions.shape[0] != length:
                raise ExecutionError("row-id vectors must have equal length")
            self._ids[alias] = positions
        self._length = length or 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_base(cls, alias: str, positions: np.ndarray | Sequence[int]) -> "RowIdRelation":
        """A relation over a single base table."""
        return cls({alias: np.asarray(positions, dtype=np.int64)})

    @classmethod
    def empty(cls, aliases: Sequence[str]) -> "RowIdRelation":
        """An empty relation over the given aliases."""
        return cls({alias: np.empty(0, dtype=np.int64) for alias in aliases})

    @classmethod
    def from_index_tuples(
        cls, aliases: Sequence[str], tuples: Sequence[Sequence[int]]
    ) -> "RowIdRelation":
        """Build from a list of index tuples ordered like ``aliases``."""
        if not tuples:
            return cls.empty(aliases)
        return cls.from_matrix(aliases, np.asarray(tuples, dtype=np.int64))

    @classmethod
    def from_matrix(cls, aliases: Sequence[str], matrix: np.ndarray) -> "RowIdRelation":
        """Build from a ``(rows, aliases)`` int64 matrix (one column per alias)."""
        matrix = np.asarray(matrix, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != len(aliases):
            raise ExecutionError("matrix shape must be (rows, num_aliases)")
        return cls({alias: matrix[:, i] for i, alias in enumerate(aliases)})

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def aliases(self) -> list[str]:
        """Aliases covered by this relation."""
        return list(self._ids)

    def ids(self, alias: str) -> np.ndarray:
        """Row positions for one alias."""
        try:
            return self._ids[alias]
        except KeyError as exc:
            raise ExecutionError(f"relation does not cover alias {alias!r}") from exc

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        return f"RowIdRelation(aliases={self.aliases}, rows={self._length})"

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def take(self, selector: np.ndarray) -> "RowIdRelation":
        """Return a new relation restricted to the selected result rows."""
        return RowIdRelation({alias: positions[selector] for alias, positions in self._ids.items()})

    def extend(self, alias: str, positions: np.ndarray, selector: np.ndarray) -> "RowIdRelation":
        """Join in a new alias.

        ``selector`` picks, for each output row, which existing result row it
        derives from; ``positions`` gives the new alias's base-table row for
        each output row.
        """
        ids = {existing: values[selector] for existing, values in self._ids.items()}
        ids[alias] = np.asarray(positions, dtype=np.int64)
        return RowIdRelation(ids)

    def canonical_order(self, aliases: Sequence[str] | None = None) -> "RowIdRelation":
        """Rows lexsorted by the given alias order.

        The same canonical order :meth:`JoinResultSet.to_matrix` produces,
        so a materialized row order becomes a pure function of the result
        *set* — never of the executor (hash join, external scan, ...) that
        happened to find the tuples.
        """
        key_aliases = list(aliases) if aliases is not None else self.aliases
        if self._length == 0:
            return self
        matrix = np.stack([self._ids[alias] for alias in key_aliases], axis=1)
        order = np.lexsort(matrix.T[::-1])
        return RowIdRelation({alias: ids[order] for alias, ids in self._ids.items()})

    def index_tuples(self, aliases: Sequence[str] | None = None) -> list[tuple[int, ...]]:
        """Return the result as a list of index tuples ordered by ``aliases``."""
        order = list(aliases) if aliases is not None else self.aliases
        columns = [self._ids[alias] for alias in order]
        return [tuple(int(column[row]) for column in columns) for row in range(self._length)]

    # ------------------------------------------------------------------
    # materialization helpers
    # ------------------------------------------------------------------
    def binding(self, row: int, tables: Mapping[str, Table]) -> dict[str, dict[str, Any]]:
        """Materialize result row ``row`` as ``alias -> {column: value}``."""
        bound: dict[str, dict[str, Any]] = {}
        for alias, positions in self._ids.items():
            table = tables[alias]
            bound[alias] = table.row(int(positions[row]))
        return bound
