"""Work-unit accounting and budget enforcement.

Every engine charges its work to a :class:`CostMeter`.  The meter serves
three purposes:

* it is the **simulated clock**: benchmarks report weighted work units
  instead of wall-clock time (see DESIGN.md §1);
* it enforces **budgets**: Skinner-G aborts a batch when the per-batch
  timeout elapses, which here means the meter raises
  :class:`~repro.errors.BudgetExceeded` once the budget is spent;
* it records the **intermediate-result cardinality** metric the paper uses
  as an engine-independent measure of join-order quality (Tables 1 and 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import BudgetExceeded


@dataclass
class WorkBreakdown:
    """Immutable snapshot of the counters of a :class:`CostMeter`."""

    tuples_scanned: int = 0
    predicate_evals: int = 0
    hash_probes: int = 0
    intermediate_tuples: int = 0
    output_tuples: int = 0
    udf_invocations: int = 0

    @property
    def total(self) -> int:
        """Total unweighted work units."""
        return (
            self.tuples_scanned
            + self.predicate_evals
            + self.hash_probes
            + self.intermediate_tuples
            + self.output_tuples
            + self.udf_invocations
        )


@dataclass
class CostMeter:
    """Mutable work-unit accumulator with optional budget.

    Parameters
    ----------
    budget:
        Maximum total work units.  ``None`` means unlimited.  When the budget
        is exceeded, the charging call raises :class:`BudgetExceeded`; the
        charge that triggered the overflow is still recorded so callers can
        observe how much work was wasted.
    """

    budget: int | None = None
    tuples_scanned: int = 0
    predicate_evals: int = 0
    hash_probes: int = 0
    intermediate_tuples: int = 0
    output_tuples: int = 0
    udf_invocations: int = 0
    _checkpoints: list[int] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def charge(self, kind: str, amount: int = 1) -> None:
        """Charge ``amount`` work units of the given ``kind``."""
        if amount < 0:
            raise ValueError("cannot charge negative work")
        current = getattr(self, kind)
        setattr(self, kind, current + amount)
        if self.budget is not None and self.total > self.budget:
            raise BudgetExceeded(spent=self.total)

    def charge_scan(self, amount: int = 1) -> None:
        """Charge scanning ``amount`` base-table tuples."""
        self.charge("tuples_scanned", amount)

    def charge_predicate(self, amount: int = 1) -> None:
        """Charge ``amount`` predicate evaluations."""
        self.charge("predicate_evals", amount)

    def charge_probe(self, amount: int = 1) -> None:
        """Charge ``amount`` hash-table probes."""
        self.charge("hash_probes", amount)

    def charge_intermediate(self, amount: int = 1) -> None:
        """Charge materializing ``amount`` intermediate result tuples."""
        self.charge("intermediate_tuples", amount)

    def charge_output(self, amount: int = 1) -> None:
        """Charge producing ``amount`` final result tuples."""
        self.charge("output_tuples", amount)

    def charge_udf(self, amount: int = 1) -> None:
        """Charge ``amount`` user-defined-function invocations."""
        self.charge("udf_invocations", amount)

    def clamp_batch(self, requested: int) -> int:
        """Largest batch size (at least 1) that fits the remaining budget.

        Batched executors charge whole batches of tuples at once; without
        clamping, a single large batch could overshoot the budget by up to
        the full batch size before :class:`BudgetExceeded` fires.  Clamping
        to the remaining budget bounds the recorded overshoot to one
        remaining-budget-sized chunk per charge kind (scans, then the
        predicate evaluations over that chunk) instead of the unbounded
        batch size.  The result is never below 1 so that a meter at the
        edge of its budget still makes progress (and raises on the recorded
        overflow, exactly like :meth:`charge`).
        """
        if requested < 1:
            raise ValueError("batch size must be at least 1")
        remaining = self.remaining
        if remaining is None:
            return requested
        return max(1, min(requested, remaining))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Total unweighted work units charged so far."""
        return (
            self.tuples_scanned
            + self.predicate_evals
            + self.hash_probes
            + self.intermediate_tuples
            + self.output_tuples
            + self.udf_invocations
        )

    @property
    def remaining(self) -> int | None:
        """Remaining budget, or ``None`` if unlimited."""
        if self.budget is None:
            return None
        return max(0, self.budget - self.total)

    def snapshot(self) -> WorkBreakdown:
        """Return an immutable copy of the counters."""
        return WorkBreakdown(
            tuples_scanned=self.tuples_scanned,
            predicate_evals=self.predicate_evals,
            hash_probes=self.hash_probes,
            intermediate_tuples=self.intermediate_tuples,
            output_tuples=self.output_tuples,
            udf_invocations=self.udf_invocations,
        )

    def merge(self, other: "CostMeter | WorkBreakdown") -> None:
        """Add another meter's counters into this one (budget unchecked)."""
        self.tuples_scanned += other.tuples_scanned
        self.predicate_evals += other.predicate_evals
        self.hash_probes += other.hash_probes
        self.intermediate_tuples += other.intermediate_tuples
        self.output_tuples += other.output_tuples
        self.udf_invocations += other.udf_invocations

    # ------------------------------------------------------------------
    # checkpointing (used by time-sliced execution)
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Record the current total and return it."""
        self._checkpoints.append(self.total)
        return self.total

    def since_checkpoint(self) -> int:
        """Work done since the last checkpoint (or since creation)."""
        base = self._checkpoints[-1] if self._checkpoints else 0
        return self.total - base

    def reset(self) -> None:
        """Zero all counters and checkpoints (budget is preserved)."""
        self.tuples_scanned = 0
        self.predicate_evals = 0
        self.hash_probes = 0
        self.intermediate_tuples = 0
        self.output_tuples = 0
        self.udf_invocations = 0
        self._checkpoints.clear()


class WorkLedger:
    """Per-query work accounting under interleaved episode execution.

    The serving scheduler runs many queries on one thread, one budgeted
    episode at a time; each query charges its own :class:`CostMeter`, and
    the ledger records how much of the *shared* virtual clock every query
    consumed per episode.  Because every work unit is attributed to exactly
    one query, per-query charges under interleaving equal the solo-run
    charges, and :meth:`grand_total` is the scheduler's virtual time — the
    deterministic substitute for wall-clock time in fairness accounting and
    time-to-first-result measurements.
    """

    def __init__(self) -> None:
        self._totals: dict[Any, int] = {}
        self._grand_total = 0

    def record(self, key: Any, amount: int) -> None:
        """Attribute ``amount`` work units to ``key``."""
        if amount < 0:
            raise ValueError("cannot record negative work")
        self._totals[key] = self._totals.get(key, 0) + amount
        self._grand_total += amount

    def total(self, key: Any) -> int:
        """Work units attributed to ``key`` so far."""
        return self._totals.get(key, 0)

    def grand_total(self) -> int:
        """Work units consumed by all queries together (the virtual clock)."""
        return self._grand_total

    def snapshot(self) -> dict[Any, int]:
        """Copy of the per-key totals."""
        return dict(self._totals)
