"""The execution contract between engines and their schedulers.

Historically the episode-task protocol (``run_episode`` / ``work_total`` /
``finalize``) was duck-typed: each Skinner variant shipped a task class that
happened to have the right methods, and the serving layer hoped for the
best.  Worker dispatch for morsel parallelism needs a serializable,
introspectable contract, so the protocol is now a formal ABC:

:class:`EngineTask`
    One query's resumable execution state.  A scheduler drives it one
    bounded episode at a time (``run_episode``), reads monotone progress
    (``work_total``), and materializes the answer exactly once
    (``finalize``).  Optional extensions — streaming, partial results,
    parallel morsel execution — are declared through well-known attributes
    so registries can *validate* a task class against the capabilities its
    engine spec claims (see :func:`validate_task_contract`).

:class:`ExecutionBackend`
    An engine: a factory of tasks (episodic engines) and/or a one-shot
    ``execute`` entry point (monolithic engines).

Keeping the ABC in ``repro.engine`` (below both ``repro.skinner`` and
``repro.serving`` in the import graph) lets engine implementations and the
serving scheduler share it without cycles.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.query import Query
    from repro.result import QueryResult


class EngineTask(abc.ABC):
    """One query's resumable execution state, driven episode by episode.

    Lifecycle contract (enforced by :func:`validate_task_contract` at
    engine-registration time, relied on by the serving scheduler):

    * ``finished`` is readable at any point after construction.  A task may
      be born finished (empty input, single-table fast path).
    * :meth:`run_episode` performs one bounded slice of work and returns
      the new value of ``finished``.  Calling it on a finished task must be
      a no-op returning ``True``.
    * :meth:`work_total` is monotonically non-decreasing across episodes —
      the serving layer accounts scheduler grants from its deltas.
    * :meth:`finalize` materializes the result; it may only be called once
      ``finished`` is true.
    * :meth:`close` releases external resources (worker pools, shared
      memory) and must be idempotent and safe at *any* point, including
      mid-query cancellation.  The base implementation is a no-op.

    Optional extensions, discovered via ``hasattr`` by the serving layer
    and validated against the owning :class:`~repro.api.registry.EngineSpec`
    capabilities:

    * **streamable** — ``enable_streaming()`` / ``drain_new_tuples()`` plus
      ``stream_aliases`` / ``stream_tables`` for incremental row delivery.
    * **partial results** — ``partial_metrics(result_rows)`` for
      LIMIT-style early termination.
    * **parallelizable** — a truthy ``parallel_capable`` class attribute
      marking the task as a valid worker-side morsel executor.
    """

    #: Whether the query has produced its complete result set.  Concrete
    #: tasks typically manage this as a plain instance attribute.
    finished: bool = False

    #: Whether instances can serve as worker-side morsel executors (safe to
    #: construct from pickled query state in a spawned process).  Engine
    #: specs declaring ``parallelizable`` must provide a task class with a
    #: truthy value.
    parallel_capable: bool = False

    @abc.abstractmethod
    def run_episode(self) -> bool:
        """Run one bounded episode; return whether the query is finished."""

    @abc.abstractmethod
    def work_total(self) -> int:
        """Total work units charged so far (monotone across episodes)."""

    @abc.abstractmethod
    def finalize(self) -> "QueryResult":
        """Materialize the final result (requires ``finished``)."""

    def close(self) -> None:
        """Release external resources; idempotent, safe mid-query."""

    def __enter__(self) -> "EngineTask":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class ExecutionBackend(abc.ABC):
    """An engine: executes queries, optionally via resumable tasks.

    Monolithic engines implement only :meth:`execute`; episodic engines
    additionally override :meth:`task` so schedulers can interleave many
    queries on one thread.
    """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """The engine's registry name."""

    @abc.abstractmethod
    def execute(self, query: "Query") -> "QueryResult":
        """Run ``query`` to completion and return its result."""

    def task(self, query: "Query", **kwargs: Any) -> EngineTask:
        """Create a resumable task for ``query`` (episodic engines only)."""
        raise ReproError(f"engine {self.name!r} is not episodic")


#: Method names every episodic task class must provide.
_EPISODIC_METHODS = ("run_episode", "work_total", "finalize")

#: Method names a streamable task class must additionally provide.
_STREAMING_METHODS = ("enable_streaming", "drain_new_tuples")


def validate_task_contract(
    spec_name: str,
    task_class: type | None,
    *,
    episodic: bool = False,
    streamable: bool = False,
    parallelizable: bool = False,
) -> None:
    """Check a task class against the capabilities an engine spec declares.

    Raises :class:`~repro.errors.ReproError` when a declared capability has
    no implementation to back it — at registration time, not mid-query.
    Specs that declare no task-level capabilities and ship no task class
    (monolithic engines) pass trivially.
    """
    if task_class is None:
        missing = [
            flag
            for flag, declared in (
                ("streamable", streamable),
                ("parallelizable", parallelizable),
            )
            if declared
        ]
        if missing:
            raise ReproError(
                f"engine {spec_name!r} declares {', '.join(missing)} but "
                "provides no task_class implementing it"
            )
        return
    required = list(_EPISODIC_METHODS) if episodic or streamable else []
    if streamable:
        required += _STREAMING_METHODS
    for method in required:
        if not callable(getattr(task_class, method, None)):
            raise ReproError(
                f"engine {spec_name!r}: task class "
                f"{task_class.__name__!r} does not implement {method}()"
            )
    if parallelizable and not getattr(task_class, "parallel_capable", False):
        raise ReproError(
            f"engine {spec_name!r} declares parallelizable but task class "
            f"{task_class.__name__!r} is not marked parallel_capable"
        )
