"""The execution contract between engines and their schedulers.

Historically the episode-task protocol (``run_episode`` / ``work_total`` /
``finalize``) was duck-typed: each Skinner variant shipped a task class that
happened to have the right methods, and the serving layer hoped for the
best.  Worker dispatch for morsel parallelism needs a serializable,
introspectable contract, so the protocol is now a formal ABC:

:class:`EngineTask`
    One query's resumable execution state.  A scheduler drives it one
    bounded episode at a time (``run_episode``), reads monotone progress
    (``work_total``), and materializes the answer exactly once
    (``finalize``).  Optional extensions — streaming, partial results,
    parallel morsel execution — are declared through well-known attributes
    so registries can *validate* a task class against the capabilities its
    engine spec claims (see :func:`validate_task_contract`).

:class:`ExecutionBackend`
    An engine: a factory of tasks (episodic engines) and/or a one-shot
    ``execute`` entry point (monolithic engines).

:class:`GenericEngine`
    The execution substrate Skinner-G/H drive their batch attempts on —
    the paper's "existing DBMS".  The internal left-deep
    :class:`~repro.engine.executor.PlanExecutor` implements it as the
    default and A/B reference; :mod:`repro.external` implements it over
    real databases (sqlite3, Postgres) by emitting order-forcing SQL.

Keeping the ABCs in ``repro.engine`` (below ``repro.skinner``,
``repro.external``, and ``repro.serving`` in the import graph) lets engine
implementations and the serving scheduler share them without cycles.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.engine.meter import CostMeter
    from repro.engine.relation import RowIdRelation
    from repro.query.query import Query
    from repro.result import QueryResult
    from repro.storage.table import Table


class EngineTask(abc.ABC):
    """One query's resumable execution state, driven episode by episode.

    Lifecycle contract (enforced by :func:`validate_task_contract` at
    engine-registration time, relied on by the serving scheduler):

    * ``finished`` is readable at any point after construction.  A task may
      be born finished (empty input, single-table fast path).
    * :meth:`run_episode` performs one bounded slice of work and returns
      the new value of ``finished``.  Calling it on a finished task must be
      a no-op returning ``True``.
    * :meth:`work_total` is monotonically non-decreasing across episodes —
      the serving layer accounts scheduler grants from its deltas.
    * :meth:`finalize` materializes the result; it may only be called once
      ``finished`` is true.
    * :meth:`close` releases external resources (worker pools, shared
      memory) and must be idempotent and safe at *any* point, including
      mid-query cancellation.  The base implementation is a no-op.

    Optional extensions, discovered via ``hasattr`` by the serving layer
    and validated against the owning :class:`~repro.api.registry.EngineSpec`
    capabilities:

    * **streamable** — ``enable_streaming()`` / ``drain_new_tuples()`` plus
      ``stream_aliases`` / ``stream_tables`` for incremental row delivery.
    * **partial results** — ``partial_metrics(result_rows)`` for
      LIMIT-style early termination.
    * **parallelizable** — a truthy ``parallel_capable`` class attribute
      marking the task as a valid worker-side morsel executor.
    """

    #: Whether the query has produced its complete result set.  Concrete
    #: tasks typically manage this as a plain instance attribute.
    finished: bool = False

    #: Whether instances can serve as worker-side morsel executors (safe to
    #: construct from pickled query state in a spawned process).  Engine
    #: specs declaring ``parallelizable`` must provide a task class with a
    #: truthy value.
    parallel_capable: bool = False

    @abc.abstractmethod
    def run_episode(self) -> bool:
        """Run one bounded episode; return whether the query is finished."""

    @abc.abstractmethod
    def work_total(self) -> int:
        """Total work units charged so far (monotone across episodes)."""

    @abc.abstractmethod
    def finalize(self) -> "QueryResult":
        """Materialize the final result (requires ``finished``)."""

    def close(self) -> None:
        """Release external resources; idempotent, safe mid-query."""

    def __enter__(self) -> "EngineTask":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class ExecutionBackend(abc.ABC):
    """An engine: executes queries, optionally via resumable tasks.

    Monolithic engines implement only :meth:`execute`; episodic engines
    additionally override :meth:`task` so schedulers can interleave many
    queries on one thread.
    """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """The engine's registry name."""

    @abc.abstractmethod
    def execute(self, query: "Query") -> "QueryResult":
        """Run ``query`` to completion and return its result."""

    def task(self, query: "Query", **kwargs: Any) -> EngineTask:
        """Create a resumable task for ``query`` (episodic engines only)."""
        raise ReproError(f"engine {self.name!r} is not episodic")


class GenericEngine(abc.ABC):
    """The execution substrate of one Skinner-G/H query — a pluggable DBMS.

    Skinner-G (Algorithm 1) is a learning layer *on top of* an existing
    database: it repeatedly asks the host engine to join one batch of the
    left-most table with the remaining tuples of every other table, under a
    work-unit budget, in a forced join order.  This ABC is that host-engine
    contract.  One instance serves exactly one query; the learning run
    (:class:`~repro.skinner.skinner_g.GenericLearningRun`) and the hybrid's
    traditional-plan attempts both drive it.

    Budget and accounting contract (the deterministic work-unit clock):

    * Budgets are **work units**, never wall-clock seconds.  Implementations
      must derive every meter charge from deterministic quantities (rows
      delivered, engine-reported progress ticks), so that repeated runs of
      the same query on the same data charge byte-identical work and bench
      fingerprints stay reproducible.
    * A timed-out attempt returns ``None`` results and must charge a
      deterministic amount — the internal executor charges the work it
      performed up to (and including) the overflowing charge; external
      adapters charge exactly the budget — so learning trajectories are a
      pure function of data + knobs.
    * Row identity: results are **row-position tuples** into the base
      tables (the internal row-id representation), ordered like
      ``query.aliases``, so post-processing, deduplication, and result
      ordering stay inside the reproduction and rows are byte-identical
      across substrates.
    """

    @property
    @abc.abstractmethod
    def tables(self) -> "Mapping[str, Table]":
        """Alias-to-table mapping of the query this engine executes."""

    @abc.abstractmethod
    def pre_process(self, meter: "CostMeter") -> None:
        """Apply unary predicates to every table, charging ``meter``."""

    @abc.abstractmethod
    def filtered_positions(self, alias: str) -> "np.ndarray":
        """Ascending row positions of ``alias`` surviving its unary predicates."""

    @abc.abstractmethod
    def execute_batch(
        self,
        order: Sequence[str],
        base_positions: "Mapping[str, np.ndarray]",
        budget: int,
    ) -> "tuple[CostMeter, list[tuple[int, ...]] | None]":
        """One batch attempt in the forced ``order`` under ``budget``.

        ``base_positions`` restricts each alias to a subset of its filtered
        positions (the left-most alias to one batch, the others to their
        unprocessed remainder).  Returns the meter charged for the attempt
        and the joined row-position tuples (``query.aliases`` order), or
        ``None`` when the budget expired first.
        """

    @abc.abstractmethod
    def execute_plan(
        self, order: Sequence[str], budget: int
    ) -> "tuple[CostMeter, RowIdRelation | None]":
        """One whole-query attempt in the forced ``order`` under ``budget``.

        Used by Skinner-H's traditional-plan side.  Returns the meter and
        the complete join relation, or ``None`` on timeout.
        """

    def close(self) -> None:
        """Release external resources; idempotent."""


#: Method names every episodic task class must provide.
_EPISODIC_METHODS = ("run_episode", "work_total", "finalize")

#: Method names a streamable task class must additionally provide.
_STREAMING_METHODS = ("enable_streaming", "drain_new_tuples")


def validate_task_contract(
    spec_name: str,
    task_class: type | None,
    *,
    episodic: bool = False,
    streamable: bool = False,
    parallelizable: bool = False,
) -> None:
    """Check a task class against the capabilities an engine spec declares.

    Raises :class:`~repro.errors.ReproError` when a declared capability has
    no implementation to back it — at registration time, not mid-query.
    Specs that declare no task-level capabilities and ship no task class
    (monolithic engines) pass trivially.
    """
    if task_class is None:
        missing = [
            flag
            for flag, declared in (
                ("streamable", streamable),
                ("parallelizable", parallelizable),
            )
            if declared
        ]
        if missing:
            raise ReproError(
                f"engine {spec_name!r} declares {', '.join(missing)} but "
                "provides no task_class implementing it"
            )
        return
    required = list(_EPISODIC_METHODS) if episodic or streamable else []
    if streamable:
        required += _STREAMING_METHODS
    for method in required:
        if not callable(getattr(task_class, method, None)):
            raise ReproError(
                f"engine {spec_name!r}: task class "
                f"{task_class.__name__!r} does not implement {method}()"
            )
    if parallelizable and not getattr(task_class, "parallel_capable", False):
        raise ReproError(
            f"engine {spec_name!r} declares parallelizable but task class "
            f"{task_class.__name__!r} is not marked parallel_capable"
        )
