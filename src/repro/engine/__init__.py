"""Relational execution substrate shared by all engines.

The engines in this repository (the traditional executor used as the
"existing DBMS" for Skinner-G/H and as a baseline, the Skinner-C multi-way
join, Eddies, ...) all operate on *row-id relations*: join results are
vectors of base-table row positions, one per joined alias, and values are
materialized lazily from the column store.

Costs are not measured in wall-clock time but in **work units** charged to a
:class:`~repro.engine.meter.CostMeter` (tuples scanned, predicate
evaluations, hash probes, intermediate tuples).  An
:class:`~repro.engine.profiles.EngineProfile` converts work units into
simulated time so that different engines (row store, vectorized column
store, the Java-style Skinner engine) can be compared the way the paper
compares Postgres, MonetDB, and SkinnerDB.  See DESIGN.md §1 for the
substitution rationale.
"""

from repro.engine.executor import PlanExecutor
from repro.engine.joinkernels import (
    CompositeKeys,
    GroupedRows,
    KeyPart,
    encode_composite_keys,
    expand_matches,
    group_rows,
    probe_grouped,
)
from repro.engine.meter import CostMeter, WorkBreakdown
from repro.engine.operators import JOIN_MODES, validate_join_mode
from repro.engine.postprocess import post_process
from repro.engine.profiles import EngineProfile, get_profile
from repro.engine.relation import RowIdRelation
from repro.engine.task import EngineTask, ExecutionBackend, validate_task_contract

__all__ = [
    "JOIN_MODES",
    "CompositeKeys",
    "CostMeter",
    "EngineProfile",
    "EngineTask",
    "ExecutionBackend",
    "GroupedRows",
    "KeyPart",
    "PlanExecutor",
    "RowIdRelation",
    "WorkBreakdown",
    "encode_composite_keys",
    "expand_matches",
    "get_profile",
    "group_rows",
    "post_process",
    "probe_grouped",
    "validate_join_mode",
    "validate_task_contract",
]
