"""Physical operators over row-id relations.

Three operators are enough for the left-deep plans used throughout the
repository:

* :func:`filter_table` — apply a table's unary predicates, producing the row
  positions that survive (pre-processing in the paper's terminology).
* :func:`hash_join_step` — extend an intermediate result by one table via a
  hash join on the applicable equality predicates, with residual predicates
  evaluated tuple-at-a-time.
* :func:`nested_loop_step` — the fallback when no equality predicate links
  the new table to the current prefix (Cartesian product or generic/UDF-only
  join predicates).

The hash join runs in one of two modes (``SkinnerConfig.join_mode``):

* ``"vectorized"`` (default) — the columnar kernel from
  :mod:`repro.engine.joinkernels`: composite keys encoded as int64 code
  vectors, the build side grouped by stable argsort, the probe side matched
  via ``searchsorted``, and the result emitted as whole selector arrays.
* ``"rows"`` — the dict-based build/probe reference path, kept for A/B
  comparisons (mirroring the ``postprocess_mode`` and ``batch_size=1``
  precedents).  Both modes produce byte-identical relations and charge
  identical meter work; NaN float join keys never match in either mode (see
  :mod:`repro.engine.joinkernels`).

All operators charge their work to a :class:`~repro.engine.meter.CostMeter`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.engine.joinkernels import (
    KeyPart,
    encode_composite_keys,
    expand_matches,
    group_rows,
    probe_grouped,
)
from repro.engine.meter import CostMeter
from repro.engine.relation import RowIdRelation
from repro.engine.vectorized import (
    VECTOR_COMPARATORS,
    NotVectorizable,
    evaluate_value,
    vectorizable,
)
from repro.query.expressions import ColumnRef
from repro.query.predicates import Predicate
from repro.query.udf import UdfRegistry
from repro.storage.table import Table

#: Valid hash-join implementations (``SkinnerConfig.join_mode``).
JOIN_MODES = ("vectorized", "rows")


def validate_join_mode(mode: str) -> str:
    """Validate a ``join_mode`` value and return it."""
    if mode not in JOIN_MODES:
        raise ValueError(f"join_mode must be one of {JOIN_MODES}, got {mode!r}")
    return mode


def filter_table(
    table: Table,
    alias: str,
    predicates: Sequence[Predicate],
    meter: CostMeter,
    udfs: UdfRegistry | None = None,
) -> np.ndarray:
    """Apply unary predicates to a base table and return surviving positions."""
    meter.charge_scan(table.num_rows)
    positions = np.arange(table.num_rows, dtype=np.int64)
    for predicate in predicates:
        if positions.shape[0] == 0:
            break
        mask = _unary_mask(table, alias, predicate, positions, meter, udfs)
        positions = positions[mask]
    return positions


def _unary_mask(
    table: Table,
    alias: str,
    predicate: Predicate,
    positions: np.ndarray,
    meter: CostMeter,
    udfs: UdfRegistry | None,
) -> np.ndarray:
    """Boolean mask over ``positions`` for one unary predicate."""
    from repro.query.expressions import Literal

    meter.charge_predicate(positions.shape[0])
    per_row = predicate.udf_cost(udfs) - 1
    if per_row > 0:  # meter only actual (registered) UDF invocations
        meter.charge_udf(positions.shape[0] * per_row)
    # Fast path: column <op> literal without UDFs.
    if (
        predicate.op is not None
        and isinstance(predicate.left, ColumnRef)
        and isinstance(predicate.right, Literal)
        and not predicate.uses_udf
    ):
        column = table.column(predicate.left.column)
        full_mask = column.compare(predicate.op, predicate.right.value)
        return full_mask[positions]
    # Vectorized path for the remaining UDF-free comparisons (arithmetic
    # expressions, reversed literal order, ...) over decoded column arrays.
    if _comparison_vectorizable(predicate):
        def resolve(ref: ColumnRef) -> np.ndarray:
            return table.column(ref.column).decoded_data[positions]

        mask = _vector_comparison_mask(predicate, resolve, int(positions.shape[0]))
        if mask is not None:
            return mask
    # Generic path: evaluate tuple at a time (UDFs, bare boolean expressions).
    mask = np.zeros(positions.shape[0], dtype=bool)
    for i, position in enumerate(positions):
        binding = {alias: table.row(int(position))}
        mask[i] = predicate.evaluate(binding, udfs)
    return mask


def _comparison_vectorizable(predicate: Predicate) -> bool:
    """Whether the predicate is a UDF-free comparison of vectorizable sides."""
    return (
        predicate.op in VECTOR_COMPARATORS
        and predicate.right is not None
        and not predicate.uses_udf
        and vectorizable(predicate.left)
        and vectorizable(predicate.right)
    )


def _vector_comparison_mask(predicate: Predicate, resolve, length: int) -> np.ndarray | None:
    """Evaluate a comparison predicate over arrays; ``None`` to fall back."""
    try:
        left = evaluate_value(predicate.left, resolve)
        right = evaluate_value(predicate.right, resolve)
        mask = np.asarray(VECTOR_COMPARATORS[predicate.op](left, right), dtype=bool)
    except NotVectorizable:
        return None
    if mask.ndim == 0:  # incomparable scalar fallout: uniform truth value
        return np.full(length, bool(mask))
    return mask


def hash_join_step(
    prefix: RowIdRelation,
    alias: str,
    table: Table,
    positions: np.ndarray,
    equi_predicates: Sequence[Predicate],
    residual_predicates: Sequence[Predicate],
    tables: Mapping[str, Table],
    meter: CostMeter,
    udfs: UdfRegistry | None = None,
    mode: str = "vectorized",
) -> RowIdRelation:
    """Extend ``prefix`` by ``alias`` using a hash join.

    ``equi_predicates`` must each connect ``alias`` to some alias already in
    the prefix via column equality.  ``residual_predicates`` are evaluated on
    each candidate combination.  ``mode`` selects the vectorized kernel or
    the dict-based ``"rows"`` reference path; both emit the same relation in
    the same row order and charge the same meter work.
    """
    validate_join_mode(mode)
    # Building the hash side scans/hashes the new table's tuples once, so it
    # is charged as scan work, not as hash probes: the probe counter must
    # mean the same thing across join implementations for the meter profiles
    # and the Table-6 ablation to be comparable.
    meter.charge_scan(positions.shape[0])
    if mode == "rows":
        candidate = _rows_hash_join(prefix, alias, table, positions, equi_predicates,
                                    tables, meter)
    else:
        candidate = _vectorized_hash_join(prefix, alias, table, positions, equi_predicates,
                                          tables, meter)
    return _apply_residual(candidate, residual_predicates, tables, meter, udfs)


def _rows_hash_join(
    prefix: RowIdRelation,
    alias: str,
    table: Table,
    positions: np.ndarray,
    equi_predicates: Sequence[Predicate],
    tables: Mapping[str, Table],
    meter: CostMeter,
) -> RowIdRelation:
    """Dict-based build/probe reference path (``join_mode="rows"``)."""
    build_keys = _composite_keys_for_new(table, positions, alias, equi_predicates)
    buckets: dict[Any, list[int]] = {}
    for row, key in enumerate(build_keys):
        buckets.setdefault(key, []).append(row)

    probe_keys = _composite_keys_for_prefix(prefix, tables, alias, equi_predicates)
    selector: list[int] = []
    new_positions: list[int] = []
    meter.charge_probe(len(prefix))
    for prefix_row, key in enumerate(probe_keys):
        matches = buckets.get(key, ())
        if matches:
            # Charge before materializing so a work budget cuts off an
            # exploding join as soon as the budget is reached.
            meter.charge_intermediate(len(matches))
        for build_row in matches:
            selector.append(prefix_row)
            new_positions.append(int(positions[build_row]))
    return prefix.extend(alias, np.asarray(new_positions, dtype=np.int64),
                         np.asarray(selector, dtype=np.int64))


def _vectorized_hash_join(
    prefix: RowIdRelation,
    alias: str,
    table: Table,
    positions: np.ndarray,
    equi_predicates: Sequence[Predicate],
    tables: Mapping[str, Table],
    meter: CostMeter,
) -> RowIdRelation:
    """Columnar build/probe via the :mod:`repro.engine.joinkernels` primitives."""
    parts = []
    for predicate in equi_predicates:
        left, right = predicate.equi_join_columns()
        own = left if left.table == alias else right
        other = right if left.table == alias else left
        build_column = table.column(own.column)
        probe_column = tables[other.table].column(other.column)
        parts.append(KeyPart(
            build_column=build_column,
            build_values=build_column.data[positions],
            probe_column=probe_column,
            probe_values=probe_column.data[prefix.ids(other.table)],
        ))
    keys = encode_composite_keys(parts)
    meter.charge_probe(len(prefix))
    build_rows_valid = np.flatnonzero(keys.build_valid).astype(np.int64)
    grouped = group_rows(keys.build_codes[build_rows_valid], build_rows_valid)
    probe_rows, groups = probe_grouped(grouped, keys.probe_codes, keys.probe_valid)
    # Charge before materializing so a work budget cuts off an exploding
    # join as soon as the budget is reached.  The rows path charges one
    # probe row's matches at a time and stops at the group that crosses the
    # budget; to record the identical overshoot (Skinner-G/H merge aborted
    # meters into their reported work), a charge that would exceed the
    # remaining budget is truncated to the cumulative count through that
    # same crossing group before it raises.
    counts = grouped.counts[groups]
    total_matches = int(counts.sum())
    remaining = meter.remaining
    if remaining is not None and total_matches > remaining:
        cumulative = np.cumsum(counts)
        crossing = int(np.searchsorted(cumulative, remaining, side="right"))
        total_matches = int(cumulative[crossing])
    meter.charge_intermediate(total_matches)
    selector, build_rows = expand_matches(grouped, probe_rows, groups)
    return prefix.extend(alias, positions[build_rows], selector)


def nested_loop_step(
    prefix: RowIdRelation,
    alias: str,
    table: Table,
    positions: np.ndarray,
    predicates: Sequence[Predicate],
    tables: Mapping[str, Table],
    meter: CostMeter,
    udfs: UdfRegistry | None = None,
) -> RowIdRelation:
    """Extend ``prefix`` by ``alias`` via a (predicate-filtered) cross product."""
    n_prefix = len(prefix)
    n_new = positions.shape[0]
    if n_prefix == 0 or n_new == 0:
        aliases = prefix.aliases + [alias]
        return RowIdRelation.empty(aliases)
    # Charge before materializing so a work budget cuts off an exploding
    # Cartesian product before it is allocated.
    meter.charge_intermediate(n_prefix * n_new)
    selector = np.repeat(np.arange(n_prefix, dtype=np.int64), n_new)
    new_positions = np.tile(positions, n_prefix)
    candidate = prefix.extend(alias, new_positions, selector)
    return _apply_residual(candidate, predicates, tables, meter, udfs)


def _apply_residual(
    candidate: RowIdRelation,
    predicates: Sequence[Predicate],
    tables: Mapping[str, Table],
    meter: CostMeter,
    udfs: UdfRegistry | None,
) -> RowIdRelation:
    """Filter a candidate relation by residual predicates.

    Predicates are applied sequentially to the shrinking survivor set, so
    the work charged matches the former row-at-a-time loop's short-circuit
    exactly.  UDF-free comparisons are evaluated vectorized over decoded
    column arrays; only UDF predicates (and bare boolean expressions) pay
    the per-row binding cost.
    """
    if not predicates or len(candidate) == 0:
        return candidate
    selector = np.arange(len(candidate), dtype=np.int64)
    for predicate in predicates:
        if selector.shape[0] == 0:
            break
        length = int(selector.shape[0])
        meter.charge_predicate(length)
        per_row = predicate.udf_cost(udfs) - 1
        if per_row > 0:  # meter only actual (registered) UDF invocations
            meter.charge_udf(length * per_row)
        mask = None
        if _comparison_vectorizable(predicate):
            def resolve(ref: ColumnRef) -> np.ndarray:
                ids = candidate.ids(ref.table)[selector]
                return tables[ref.table].column(ref.column).decoded_data[ids]

            mask = _vector_comparison_mask(predicate, resolve, length)
        if mask is None:
            mask = np.zeros(length, dtype=bool)
            for i, row in enumerate(selector.tolist()):
                binding = candidate.binding(row, tables)
                mask[i] = predicate.evaluate(binding, udfs)
        selector = selector[mask]
    return candidate.take(selector)


# ----------------------------------------------------------------------
# key extraction for hash joins
# ----------------------------------------------------------------------
def _composite_keys_for_new(
    table: Table,
    positions: np.ndarray,
    alias: str,
    equi_predicates: Sequence[Predicate],
) -> list[tuple[Any, ...]]:
    """Hash keys (one per position) on the build side of the join."""
    columns = []
    for predicate in equi_predicates:
        left, right = predicate.equi_join_columns()
        ref = left if left.table == alias else right
        columns.append(table.column(ref.column))
    keys: list[tuple[Any, ...]] = []
    for position in positions:
        keys.append(tuple(column.value(int(position)) for column in columns))
    return keys


def _composite_keys_for_prefix(
    prefix: RowIdRelation,
    tables: Mapping[str, Table],
    new_alias: str,
    equi_predicates: Sequence[Predicate],
) -> list[tuple[Any, ...]]:
    """Hash keys (one per prefix row) on the probe side of the join."""
    sources = []
    for predicate in equi_predicates:
        left, right = predicate.equi_join_columns()
        ref = right if left.table == new_alias else left
        sources.append((ref.table, tables[ref.table].column(ref.column)))
    keys: list[tuple[Any, ...]] = []
    for row in range(len(prefix)):
        key = tuple(column.value(int(prefix.ids(alias_)[row])) for alias_, column in sources)
        keys.append(key)
    return keys
