"""PEP 249-style cursors with streaming result fetches.

A :class:`Cursor` submits its query through the connection's
:class:`~repro.api.transport.Transport` with incremental delivery enabled,
so ``fetchone`` / ``fetchmany`` hand rows to the client as the engine
materializes them — for a streamable engine/query combination the first
batch arrives strictly before the query completes (the whole point of an
engine that adapts *during* execution).  Queries with blocking
post-processing (aggregates, GROUP BY, ORDER BY, DISTINCT) deliver all
rows at completion through the same interface; a plain LIMIT on a
streamable query is pushed into the stream, so the session stops running
— and releases its admission slot — the moment the cursor's row budget is
filled.

Because the cursor only sees the transport, the same code serves both
in-process connections and ``repro://`` remote ones.  On a local
connection fetch calls cooperatively drive the server, so several open
cursors interleave their queries' episodes; on a remote connection the
server's own pump makes progress and fetches simply wait for batches.

Closing a cursor mid-stream cancels its submission (at the next episode
boundary) and releases its admission slot — abandoning a half-fetched
result cannot starve later queries.  All methods raise
:class:`~repro.errors.InterfaceError` after ``close()`` (PEP 249).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from typing import TYPE_CHECKING, Any

from repro.config import SkinnerConfig
from repro.errors import InterfaceError, ReproError
from repro.result import QueryResult

if TYPE_CHECKING:
    from repro.api.connection import Connection

#: ``description`` type codes are not modelled; every column reports None.
_DESCRIPTION_PAD = (None, None, None, None, None, None)


class Cursor:
    """A PEP 249 cursor over one connection.

    Attributes
    ----------
    arraysize:
        Default row count of :meth:`fetchmany` (PEP 249; default 1).
    engine, profile:
        Execution knobs applied to subsequent :meth:`execute` calls; both
        can also be overridden per call.  ``engine`` defaults to the
        connection's :attr:`~repro.api.connection.Connection.default_engine`
        (the ``connect(engine=...)`` / ``REPRO_ENGINE`` resolution).
    """

    def __init__(
        self,
        connection: Connection,
        *,
        engine: str | None = None,
        profile: str = "postgres",
    ) -> None:
        self.connection = connection
        self.arraysize = 1
        self.engine = engine if engine is not None else connection.default_engine
        self.profile = profile
        self._ticket: int | None = None
        self._description: list[tuple] | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # PEP 249 attributes
    # ------------------------------------------------------------------
    @property
    def description(self) -> list[tuple] | None:
        """Per-column 7-tuples ``(name, type_code, ...)`` of the last query."""
        return self._description

    @property
    def rowcount(self) -> int:
        """Rows produced by the last query, or -1 while still unknown."""
        if self._ticket is None:
            return -1
        snapshot = self.connection.transport.poll(self._ticket)
        if snapshot.get("state") == "finished" and "result_rows" in snapshot:
            return snapshot["result_rows"]
        return -1

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` was called."""
        return self._closed

    @property
    def ticket(self) -> int | None:
        """Server ticket of the current submission (for ``poll`` etc.)."""
        return self._ticket

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        operation: str | Any,
        parameters: Sequence[Any] | Mapping[str, Any] | None = None,
        *,
        engine: str | None = None,
        profile: str | None = None,
        config: SkinnerConfig | None = None,
        threads: int = 1,
        forced_order: Sequence[str] | None = None,
        use_result_cache: bool = True,
        weight: float = 1.0,
        priority: int = 0,
    ) -> Cursor:
        """Submit a query for (streaming) execution; returns the cursor.

        ``operation`` is SQL text with optional ``?`` / ``:name``
        placeholders bound from ``parameters``, or (on a local connection)
        a prebuilt :class:`~repro.query.query.Query`.  The call returns as
        soon as the query is admitted or queued — rows are produced by the
        fetch methods.  ``config=None`` uses the serving side's default:
        the connection's config locally, the *server's* config remotely.
        """
        self._check_fetchable(needs_query=False)
        self._abandon()
        handle = self.connection.transport.submit(
            operation,
            parameters,
            engine=engine or self.engine,
            profile=profile or self.profile,
            config=config,
            threads=threads,
            forced_order=forced_order,
            use_result_cache=use_result_cache,
            weight=weight,
            priority=priority,
            stream=True,
        )
        self._ticket = handle.ticket
        self._description = [(name,) + _DESCRIPTION_PAD for name in handle.columns]
        return self

    def executemany(
        self,
        operation: str,
        seq_of_parameters: Sequence[Sequence[Any] | Mapping[str, Any]],
    ) -> Cursor:
        """Run ``operation`` once per parameter set (result sets discarded)."""
        for parameters in seq_of_parameters:
            self.execute(operation, parameters)
            self.fetchall()
        return self

    # ------------------------------------------------------------------
    # fetching
    # ------------------------------------------------------------------
    def fetchone(self) -> tuple[Any, ...] | None:
        """The next result row, or ``None`` when the result is exhausted."""
        rows = self._fetch(1)
        return rows[0] if rows else None

    def fetchmany(self, size: int | None = None) -> list[tuple[Any, ...]]:
        """Up to ``size`` rows (default :attr:`arraysize`).

        For a streaming query this returns as soon as *any* rows are
        fetchable — possibly fewer than ``size`` — so the first batch
        arrives before the query finishes; an empty list means the result
        is exhausted.
        """
        return self._fetch(size if size is not None else self.arraysize)

    def fetchall(self) -> list[tuple[Any, ...]]:
        """All remaining rows of the current result."""
        rows: list[tuple[Any, ...]] = []
        while True:
            batch = self._fetch(None)
            if not batch:
                return rows
            rows.extend(batch)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return self

    def __next__(self) -> tuple[Any, ...]:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    def _fetch(self, max_rows: int | None) -> list[tuple[Any, ...]]:
        self._check_fetchable(needs_query=True)
        assert self._ticket is not None
        return self.connection.transport.fetch(self._ticket, max_rows)

    # ------------------------------------------------------------------
    # results and metrics
    # ------------------------------------------------------------------
    def result(self) -> QueryResult:
        """The full :class:`QueryResult` (drives the query to completion).

        The result's rows are the *completion-ordered* materialization —
        identical content to the streamed rows — and its metrics carry the
        per-query meter charges, which streaming does not alter.
        """
        self._check_fetchable(needs_query=True)
        assert self._ticket is not None
        return self.connection.transport.result(self._ticket)

    @property
    def metrics(self):
        """Metrics of the completed query (drives it to completion)."""
        return self.result().metrics

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the cursor, cancelling an unfinished submission.

        Safe mid-stream: a running query is cancelled at its next episode
        boundary and its admission slot is handed to the next queued
        query — closing early never leaks serving capacity, locally or
        over the wire.  Idempotent (PEP 249).
        """
        if self._closed:
            return
        self._abandon()
        self._closed = True
        self.connection._forget_cursor(self)

    def _abandon(self) -> None:
        """Drop the current submission (cancel if still in flight)."""
        if self._ticket is None:
            return
        transport = self.connection.transport
        try:
            transport.cancel(self._ticket)
            transport.forget(self._ticket)
        except ReproError:
            pass  # already forgotten server-side, or the wire is gone
        self._ticket = None
        self._description = None

    def __enter__(self) -> Cursor:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_fetchable(self, *, needs_query: bool) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        if self.connection.closed:
            raise InterfaceError("connection is closed")
        if needs_query and self._ticket is None:
            raise InterfaceError("no query has been executed on this cursor")

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"ticket={self._ticket}"
        return f"<repro.api.cursor.Cursor {state}>"
