"""Transports: the single result channel behind connections and cursors.

The PEP 249 surface (:class:`~repro.api.connection.Connection` /
:class:`~repro.api.cursor.Cursor`) does not talk to an execution engine
directly; every operation — submissions, streamed fetches, whole results,
schema mutations, transaction boundaries, metrics — goes through one
:class:`Transport`.  Two implementations exist:

* :class:`LocalTransport` — the in-process path: operations act on the
  connection's own catalog, UDF registry, and lazily created
  :class:`~repro.serving.server.QueryServer`.  This is what ``connect()``
  with a :class:`~repro.config.SkinnerConfig` (the historical form) uses.
* :class:`~repro.net.client.RemoteTransport` — a blocking socket speaking
  the length-prefixed JSON protocol of :mod:`repro.net` against a live
  server.  ``connect("repro://host:port/?tenant=...")`` resolves to it.

Because cursors only see the transport interface, the streamed fetch path
and the completion-delivered result path behave identically against either
transport — the property tests pin byte-identical rows and meter charges
between the two.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.config import SkinnerConfig
from repro.result import QueryResult
from repro.storage.loader import file_fingerprint, load_csv
from repro.storage.table import Table

if TYPE_CHECKING:
    from repro.api.connection import Connection


@dataclass(frozen=True)
class SubmitHandle:
    """What a submission returns: the server ticket plus output columns.

    The columns travel with the handle so a cursor can populate its PEP 249
    ``description`` without a client-side catalog (remote connections have
    none — the server parses the query and reports the output names).
    """

    ticket: int
    columns: tuple[str, ...]


class Transport(ABC):
    """The operations a connection needs from its execution backend."""

    #: Whether operations cross a process boundary (capability flag: remote
    #: transports cannot ship Python objects — prebuilt queries, UDFs).
    remote: bool = False
    #: Tenant identity submissions are accounted to (fixed at handshake for
    #: remote transports).
    tenant: str = "default"

    # -- query execution ------------------------------------------------
    @abstractmethod
    def submit(
        self,
        operation: str | Any,
        parameters: Sequence[Any] | Mapping[str, Any] | None,
        *,
        engine: str,
        profile: str,
        config: SkinnerConfig | None,
        threads: int,
        forced_order: Sequence[str] | None,
        use_result_cache: bool,
        weight: float,
        priority: int,
        stream: bool = True,
    ) -> SubmitHandle:
        """Submit a query; ``config=None`` means the backend's default."""

    @abstractmethod
    def fetch(self, ticket: int, max_rows: int | None) -> list[tuple[Any, ...]]:
        """Next streamed row batch (empty list = result exhausted)."""

    @abstractmethod
    def poll(self, ticket: int) -> dict[str, Any]:
        """Non-blocking progress snapshot of a submission."""

    @abstractmethod
    def result(self, ticket: int) -> QueryResult:
        """The completed result (drives/waits until the query finishes)."""

    @abstractmethod
    def cancel(self, ticket: int) -> bool:
        """Cancel a queued or running submission."""

    @abstractmethod
    def forget(self, ticket: int) -> bool:
        """Drop a terminal submission's server-side bookkeeping."""

    @abstractmethod
    def execute(
        self,
        operation: str | Any,
        parameters: Sequence[Any] | Mapping[str, Any] | None,
        *,
        engine: str,
        profile: str,
        config: SkinnerConfig | None,
        threads: int,
        forced_order: Sequence[str] | None,
        use_result_cache: bool,
    ) -> QueryResult:
        """Whole-result convenience path (submit + result + forget)."""

    # -- schema and transactions ----------------------------------------
    @abstractmethod
    def create_table(
        self, name: str, columns: Mapping[str, Sequence[Any]], *, replace: bool
    ) -> Table:
        """Create a table from a column mapping."""

    @abstractmethod
    def add_table(self, table: Table, *, replace: bool) -> None:
        """Register an existing table (shipped column-wise when remote)."""

    @abstractmethod
    def drop_table(self, name: str) -> None:
        """Remove a table."""

    @abstractmethod
    def load_csv(
        self, path: str | Path, table_name: str | None, *, replace: bool
    ) -> Table:
        """Load a CSV file (always read client-side) into a table."""

    def load_document(
        self,
        path: str | Path,
        table_name: str | None,
        *,
        format: str | None,
        replace: bool,
    ) -> Table:
        """Shred an XML/JSON document (client-side) into a node table.

        The default implementation works over any transport: the document
        is parsed and shredded in this process and the resulting node
        columns travel through :meth:`create_table` (column-wise over the
        wire when remote).  :class:`LocalTransport` overrides it to add the
        durable-catalog warm-start skip shared with :meth:`load_csv`.
        """
        from repro.docstore.shred import shred_document

        path = Path(path)
        name = table_name or path.stem
        return self.create_table(
            name, shred_document(path, format=format), replace=replace
        )

    @abstractmethod
    def register_udf(
        self,
        name: str,
        function: Callable[..., Any],
        *,
        cost: int,
        selectivity_hint: float,
        replace: bool,
    ) -> None:
        """Register a Python UDF (local transports only)."""

    @abstractmethod
    def commit(self) -> None:
        """Make schema mutations since the last commit permanent."""

    @abstractmethod
    def rollback(self) -> None:
        """Undo schema mutations since the last commit."""

    # -- lifecycle and health -------------------------------------------
    @abstractmethod
    def stats(self) -> dict[str, Any]:
        """Serving-layer metrics (queue depths, tenant shares, caches)."""

    @abstractmethod
    def close(self) -> None:
        """Release transport resources (idempotent)."""


class LocalTransport(Transport):
    """The in-process transport over a connection's own serving layer."""

    remote = False

    def __init__(self, connection: Connection, tenant: str = "default") -> None:
        self._connection = connection
        self.tenant = tenant

    # -- query execution ------------------------------------------------
    def submit(
        self,
        operation: str | Any,
        parameters: Sequence[Any] | Mapping[str, Any] | None,
        *,
        engine: str,
        profile: str,
        config: SkinnerConfig | None,
        threads: int,
        forced_order: Sequence[str] | None,
        use_result_cache: bool,
        weight: float,
        priority: int,
        stream: bool = True,
    ) -> SubmitHandle:
        conn = self._connection
        parsed = conn._resolve_query(operation, parameters)
        ticket = conn.server.submit(
            parsed,
            engine=engine,
            profile=profile,
            # Resolve against the connection's (reassignable) config, not
            # the server's construction-time snapshot.
            config=config or conn.config,
            threads=threads,
            forced_order=forced_order,
            use_result_cache=use_result_cache,
            weight=weight,
            priority=priority,
            tenant=self.tenant,
            stream=stream,
        )
        return SubmitHandle(ticket, tuple(parsed.output_names(conn.catalog)))

    def fetch(self, ticket: int, max_rows: int | None) -> list[tuple[Any, ...]]:
        return self._connection.server.fetch(ticket, max_rows)

    def poll(self, ticket: int) -> dict[str, Any]:
        return self._connection.server.poll(ticket)

    def result(self, ticket: int) -> QueryResult:
        return self._connection.server.result(ticket)

    def cancel(self, ticket: int) -> bool:
        return self._connection.server.cancel(ticket)

    def forget(self, ticket: int) -> bool:
        return self._connection.server.forget(ticket)

    def execute(
        self,
        operation: str | Any,
        parameters: Sequence[Any] | Mapping[str, Any] | None,
        *,
        engine: str,
        profile: str,
        config: SkinnerConfig | None,
        threads: int,
        forced_order: Sequence[str] | None,
        use_result_cache: bool,
    ) -> QueryResult:
        conn = self._connection
        parsed = conn._resolve_query(operation, parameters)
        return conn.server.execute(
            parsed,
            engine=engine,
            profile=profile,
            config=config or conn.config,
            threads=threads,
            forced_order=forced_order,
            use_result_cache=use_result_cache,
        )

    # -- schema and transactions ----------------------------------------
    def create_table(
        self, name: str, columns: Mapping[str, Sequence[Any]], *, replace: bool
    ) -> Table:
        conn = self._connection
        conn._before_mutation()
        conn.catalog.add_table(Table(name, columns), replace=replace)
        conn._invalidate()
        conn._after_mutation()
        # The registered table, not the transient one built above — a
        # durable catalog re-wraps columns as memory-mapped views.
        return conn.catalog.table(name)

    def add_table(self, table: Table, *, replace: bool) -> None:
        conn = self._connection
        conn._before_mutation()
        conn.catalog.add_table(table, replace=replace)
        conn._invalidate()
        conn._after_mutation()

    def drop_table(self, name: str) -> None:
        conn = self._connection
        conn._before_mutation()
        conn.catalog.drop_table(name)
        conn._invalidate()
        conn._after_mutation()

    def _warm_ingest(self, name: str, fingerprint: str) -> Table | None:
        """The table already ingested from identical bytes, else ``None``.

        Idempotent ingest on durable catalogs: when the recovered catalog
        already holds this table and remembers the same source-file
        fingerprint, the load is a no-op — this is what lets a warm start
        on a data_dir answer its first query without re-parsing any source
        file.  In-memory catalogs keep the strict contract (reloading an
        existing table requires ``replace=True``): nothing persists, so a
        duplicate load is a schema mistake, not a warm start.  Shared by
        the CSV and document ingest paths so both skip identically.
        """
        conn = self._connection
        if (
            conn.catalog.buffer_manager.durable
            and conn.catalog.has_table(name)
            and conn.catalog.ingest_fingerprint(name) == fingerprint
        ):
            return conn.catalog.table(name)
        return None

    def _ingest(self, name: str, table: Table, fingerprint: str, *,
                replace: bool) -> Table:
        """Register a freshly parsed table and remember its source bytes."""
        conn = self._connection
        conn._before_mutation()
        conn.catalog.add_table(table, replace=replace)
        conn.catalog.record_ingest(name, fingerprint)
        conn._invalidate()
        conn._after_mutation()
        return conn.catalog.table(name)

    def load_csv(
        self, path: str | Path, table_name: str | None, *, replace: bool
    ) -> Table:
        path = Path(path)
        name = table_name or path.stem
        fingerprint = file_fingerprint(path)
        warm = self._warm_ingest(name, fingerprint)
        if warm is not None:
            return warm
        return self._ingest(name, load_csv(path, table_name), fingerprint,
                            replace=replace)

    def load_document(
        self,
        path: str | Path,
        table_name: str | None,
        *,
        format: str | None,
        replace: bool,
    ) -> Table:
        from repro.docstore.shred import shred_document

        path = Path(path)
        name = table_name or path.stem
        fingerprint = file_fingerprint(path)
        warm = self._warm_ingest(name, fingerprint)
        if warm is not None:
            return warm
        table = Table(name, shred_document(path, format=format))
        return self._ingest(name, table, fingerprint, replace=replace)

    def register_udf(
        self,
        name: str,
        function: Callable[..., Any],
        *,
        cost: int,
        selectivity_hint: float,
        replace: bool,
    ) -> None:
        conn = self._connection
        conn._before_mutation()
        conn.udfs.register(
            name, function, cost=cost, selectivity_hint=selectivity_hint, replace=replace
        )
        conn._invalidate()
        conn._after_mutation()

    def commit(self) -> None:
        conn = self._connection
        conn.catalog.commit()
        conn._txn_tables = None
        conn._txn_udfs = None

    def rollback(self) -> None:
        conn = self._connection
        if conn._txn_tables is not None:
            conn.catalog.restore(conn._txn_tables)
            assert conn._txn_udfs is not None
            conn.udfs.restore(conn._txn_udfs)
            conn._txn_tables = None
            conn._txn_udfs = None
            conn._invalidate()

    # -- lifecycle and health -------------------------------------------
    def stats(self) -> dict[str, Any]:
        return self._connection.server.stats()

    def close(self) -> None:
        pass  # nothing beyond the connection's own state to release
