"""The engine registry: one pluggable dispatch point for every engine.

Before this module existed the library hard-coded engine dispatch twice —
once in the :class:`~repro.db.SkinnerDB` facade's direct path and once in
the serving layer's ``SERVABLE_ENGINES`` tuple — so adding an engine meant
editing library code in two places that could (and did) drift.  Now a
single :class:`EngineRegistry` owns the mapping from engine names to
:class:`EngineSpec` entries; ``SkinnerDB.execute``, ``execute_direct``, the
:class:`~repro.serving.server.QueryServer`, and the PEP 249
:class:`~repro.api.connection.Connection` all resolve engines here, and
third-party code extends the set with :func:`register_engine` without
touching the library:

>>> from repro.api import EngineSpec, register_engine
>>> register_engine(EngineSpec("my-engine", factory=lambda ctx: MyEngine(ctx)))

A factory receives an :class:`EngineContext` (catalog, UDFs, config,
profile, modelled thread count, and a lazy statistics provider) and returns
an engine object with an ``execute(query) -> QueryResult`` method.  The
capability flags on the spec describe what else the engine supports:
``episodic`` engines expose ``task(query)`` returning a resumable episode
task the server can interleave; ``streamable`` engines produce tasks whose
result batches can be drained before completion; ``supports_forced_order``
engines accept ``execute(query, forced_order=...)``; ``needs_statistics``
is advisory (factories pull statistics from the context themselves).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.baselines.eddy import EddyEngine
from repro.baselines.reoptimizer import ReOptimizerEngine
from repro.baselines.traditional import TraditionalEngine
from repro.config import SkinnerConfig
from repro.engine.task import validate_task_contract
from repro.errors import ReproError
from repro.external.engines import sqlite_skinner_g_factory, sqlite_skinner_h_factory
from repro.query.query import Query
from repro.query.udf import UdfRegistry
from repro.result import QueryResult
from repro.skinner.skinner_c import SkinnerC, SkinnerCTask
from repro.skinner.skinner_g import SkinnerG, SkinnerGTask
from repro.skinner.skinner_h import SkinnerH, SkinnerHTask
from repro.storage.catalog import Catalog


@dataclass
class EngineContext:
    """Everything an engine factory may need to build an engine instance.

    Statistics are exposed as a method rather than a value so that engines
    that do not need them (the Skinner strategies famously "maintain no
    data statistics") never pay for collection.
    """

    catalog: Catalog
    udfs: UdfRegistry | None
    config: SkinnerConfig
    profile: str = "postgres"
    threads: int = 1
    statistics_provider: Callable[[], Any] | None = None
    _statistics: Any = field(default=None, repr=False)

    def statistics(self) -> Any:
        """Collect (or return cached) optimizer statistics."""
        if self._statistics is None:
            if self.statistics_provider is not None:
                self._statistics = self.statistics_provider()
            else:
                from repro.optimizer.statistics import StatisticsCatalog

                self._statistics = StatisticsCatalog.collect(self.catalog)
        return self._statistics


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine: its name, factory, and capabilities.

    Attributes
    ----------
    name:
        Engine name as referenced by ``engine=`` arguments (lower-case).
    factory:
        ``factory(context) -> engine`` where the engine has at least an
        ``execute(query) -> QueryResult`` method.
    supports_forced_order:
        Whether ``execute(query, forced_order=...)`` is accepted (the
        traditional optimizer baseline).
    needs_statistics:
        Whether the factory consults ``context.statistics()`` — serving
        pure Skinner traffic then never collects statistics.
    streamable:
        Whether the engine's episode tasks support incremental result
        delivery (``enable_streaming()`` / ``drain_new_tuples()``), so a
        cursor can fetch result batches before the query completes.
    episodic:
        Whether the engine exposes ``task(query)`` returning a resumable
        episode task; non-episodic engines run through the server as one
        monolithic episode.
    warm_startable:
        Whether ``task(query, order_prior=...)`` accepts join-order priors
        from the cross-query join-order cache.
    parallelizable:
        Whether the engine can execute one query over several worker
        processes when ``config.parallel_workers > 1`` — its task class is
        a valid worker-side morsel executor (``parallel_capable``).
    task_class:
        The :class:`~repro.engine.task.EngineTask` implementation behind
        ``task(query)``.  Optional for plain episodic engines, but required
        to *declare* ``streamable`` or ``parallelizable``: registration
        validates the class against the declared capabilities (see
        :func:`~repro.engine.task.validate_task_contract`), so a spec whose
        capabilities its task cannot honor is rejected at registration
        time, not mid-query.
    """

    name: str
    factory: Callable[[EngineContext], Any]
    supports_forced_order: bool = False
    needs_statistics: bool = False
    streamable: bool = False
    episodic: bool = False
    warm_startable: bool = False
    parallelizable: bool = False
    task_class: type | None = None

    def build(self, context: EngineContext) -> Any:
        """Instantiate the engine for one execution context."""
        return self.factory(context)

    def execute(
        self,
        context: EngineContext,
        query: Query,
        *,
        forced_order: Sequence[str] | None = None,
    ) -> QueryResult:
        """Build the engine and execute ``query`` directly (no serving layer)."""
        self.check_forced_order(forced_order)
        engine = self.build(context)
        if forced_order is not None:
            return engine.execute(query, forced_order=forced_order)
        return engine.execute(query)

    def create_task(
        self,
        context: EngineContext,
        query: Query,
        *,
        forced_order: Sequence[str] | None = None,
        order_prior: Sequence[tuple[tuple[str, ...], float, int]] | None = None,
    ) -> Any:
        """Build the episode task the server schedules for ``query``.

        Episodic engines return their native resumable task; all other
        engines are wrapped in a
        :class:`~repro.serving.session.MonolithicTask` running the whole
        query as one (unbounded) episode.
        """
        self.check_forced_order(forced_order)
        engine = self.build(context)
        if self.episodic:
            if self.warm_startable and order_prior:
                return engine.task(query, order_prior=order_prior)
            return engine.task(query)
        from repro.serving.session import MonolithicTask

        if forced_order is not None:
            return MonolithicTask(lambda: engine.execute(query, forced_order=forced_order))
        return MonolithicTask(lambda: engine.execute(query))

    def check_forced_order(self, forced_order: Sequence[str] | None) -> None:
        """Reject ``forced_order`` on engines that cannot honor it."""
        if forced_order is not None and not self.supports_forced_order:
            raise ReproError(
                f"forced_order is not supported by engine {self.name!r}"
            )


class EngineRegistry:
    """Name-to-spec mapping shared by the facade, the API, and the server."""

    def __init__(self) -> None:
        self._specs: dict[str, EngineSpec] = {}

    def register(self, spec: EngineSpec, *, replace: bool = False) -> EngineSpec:
        """Register an engine spec; raises if the name exists unless ``replace``.

        Specs that ship a ``task_class`` (or declare task-level
        capabilities) are validated against the
        :class:`~repro.engine.task.EngineTask` contract here, so capability
        lies surface at registration time.
        """
        name = spec.name.lower()
        if name != spec.name:
            spec = dataclasses.replace(spec, name=name)
        validate_task_contract(
            name,
            spec.task_class,
            episodic=spec.episodic,
            streamable=spec.streamable,
            parallelizable=spec.parallelizable,
        )
        if name in self._specs and not replace:
            raise ReproError(f"engine {name!r} is already registered")
        self._specs[name] = spec
        return spec

    def unregister(self, name: str) -> None:
        """Remove an engine from the registry."""
        self._specs.pop(name.lower(), None)

    def resolve(self, name: str) -> EngineSpec:
        """The spec for an engine name — the *single* unknown-engine error site.

        Every execution path (``SkinnerDB.execute``, ``execute_direct``,
        ``QueryServer.submit``, ``Connection.cursor()``) validates engine
        names here, so the error message cannot drift between paths.
        """
        spec = self._specs.get(name.lower())
        if spec is None:
            raise ReproError(
                f"unknown engine {name!r}; registered engines: "
                f"{', '.join(self.names())}"
            )
        return spec

    def names(self) -> tuple[str, ...]:
        """Registered engine names in registration order."""
        return tuple(self._specs)

    def specs(self) -> tuple[EngineSpec, ...]:
        """All registered specs in registration order."""
        return tuple(self._specs.values())

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)


class RegistryNames(Sequence):
    """A live, tuple-like view of a registry's engine names.

    ``repro.ENGINE_NAMES`` and ``repro.serving.SERVABLE_ENGINES`` are
    instances of this view over the default registry, so engines added via
    :func:`register_engine` appear in both without any recomputation —
    the two historical constants can no longer drift apart.
    """

    def __init__(self, registry: EngineRegistry) -> None:
        self._registry = registry

    def __getitem__(self, index):
        return self._registry.names()[index]

    def __len__(self) -> int:
        return len(self._registry)

    def __contains__(self, name: object) -> bool:
        return name in self._registry

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.names())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (tuple, list, RegistryNames)):
            return tuple(self) == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - view identity only
        return id(self)

    def __repr__(self) -> str:
        return repr(self._registry.names())


# ----------------------------------------------------------------------
# built-in engines
# ----------------------------------------------------------------------
def _skinner_c(context: EngineContext) -> SkinnerC:
    return SkinnerC(context.catalog, context.udfs, context.config,
                    threads=context.threads)


def _skinner_g(context: EngineContext) -> SkinnerG:
    return SkinnerG(context.catalog, context.udfs, context.config,
                    dbms_profile=context.profile, threads=context.threads)


def _skinner_h(context: EngineContext) -> SkinnerH:
    return SkinnerH(context.catalog, context.udfs, context.config,
                    dbms_profile=context.profile,
                    statistics=context.statistics(), threads=context.threads)


def _traditional(context: EngineContext) -> TraditionalEngine:
    return TraditionalEngine(context.catalog, context.udfs,
                             statistics=context.statistics(),
                             profile=context.profile, threads=context.threads)


def _eddy(context: EngineContext) -> EddyEngine:
    return EddyEngine(context.catalog, context.udfs, threads=context.threads)


def _reoptimizer(context: EngineContext) -> ReOptimizerEngine:
    return ReOptimizerEngine(context.catalog, context.udfs,
                             statistics=context.statistics(),
                             threads=context.threads)


BUILTIN_SPECS = (
    EngineSpec("skinner-c", _skinner_c, episodic=True, streamable=True,
               warm_startable=True, parallelizable=True,
               task_class=SkinnerCTask),
    EngineSpec("skinner-g", _skinner_g, episodic=True,
               task_class=SkinnerGTask),
    EngineSpec("skinner-h", _skinner_h, episodic=True, needs_statistics=True,
               task_class=SkinnerHTask),
    EngineSpec("traditional", _traditional, supports_forced_order=True,
               needs_statistics=True),
    EngineSpec("eddy", _eddy),
    EngineSpec("reoptimizer", _reoptimizer, needs_statistics=True),
    # Skinner-G/H over a real host DBMS (the paper's actual deployment):
    # batches run as order-forcing SQL on a per-catalog sqlite mirror, with
    # automatic fallback to the internal executor for queries the dialect
    # cannot replicate (see repro.external).
    EngineSpec("skinner_g_sqlite", sqlite_skinner_g_factory, episodic=True,
               task_class=SkinnerGTask),
    EngineSpec("skinner_h_sqlite", sqlite_skinner_h_factory, episodic=True,
               needs_statistics=True, task_class=SkinnerHTask),
)

#: The process-wide default registry with the built-in engines.
DEFAULT_REGISTRY = EngineRegistry()
for _spec in BUILTIN_SPECS:
    DEFAULT_REGISTRY.register(_spec)


def register_engine(
    spec: EngineSpec | None = None,
    *,
    name: str | None = None,
    factory: Callable[[EngineContext], Any] | None = None,
    replace: bool = False,
    registry: EngineRegistry | None = None,
    **capabilities: bool,
) -> EngineSpec:
    """Register an engine with the default (or a given) registry.

    Accepts either a prebuilt :class:`EngineSpec`, or ``name``/``factory``
    plus capability keyword flags::

        register_engine(name="my-engine", factory=lambda ctx: MyEngine(ctx))

    Registered engines are immediately selectable via ``engine="my-engine"``
    in ``SkinnerDB.execute``, ``Connection.cursor().execute``, and
    ``QueryServer.submit``.
    """
    registry = registry if registry is not None else DEFAULT_REGISTRY
    if spec is None:
        if name is None or factory is None:
            raise ReproError("register_engine needs an EngineSpec or name+factory")
        spec = EngineSpec(name=name, factory=factory, **capabilities)
    return registry.register(spec, replace=replace)


def engine_names(registry: EngineRegistry | None = None) -> tuple[str, ...]:
    """Names of all engines in the default (or a given) registry."""
    return (registry if registry is not None else DEFAULT_REGISTRY).names()
