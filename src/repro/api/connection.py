"""PEP 249-style connections over the repro engines.

:func:`connect` opens a :class:`Connection` — the session object owning a
catalog, a UDF registry, the serving layer, and the engine registry the
session resolves ``engine=`` names against.  Cursors created from it submit
queries through the :class:`~repro.serving.server.QueryServer`, so every
cursor execution gets admission control, fair-share scheduling, the serving
caches, and — for streamable engine/query combinations — incremental result
delivery (first rows before the query completes).

Transactions cover *schema mutations*: ``create_table`` / ``add_table`` /
``load_csv`` / ``drop_table`` / ``register_udf`` apply immediately (queries
in the same session see them), and ``rollback()`` restores the catalog and
UDF registry to their state at the last ``commit()``.  Query execution is
read-only and unaffected by transaction boundaries.  Facade-style callers
(:class:`repro.db.SkinnerDB`) open the connection with ``autocommit=True``,
which turns every mutation into its own committed transaction.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.api.cursor import Cursor
from repro.api.registry import DEFAULT_REGISTRY, EngineContext, EngineRegistry
from repro.config import DEFAULT_CONFIG, SkinnerConfig
from repro.errors import ReproError
from repro.optimizer.statistics import StatisticsCatalog
from repro.query.parser import parse_query
from repro.query.query import Query
from repro.query.udf import UdfRegistry
from repro.result import QueryResult
from repro.storage.catalog import Catalog
from repro.storage.loader import load_csv
from repro.storage.table import Table

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.serving.server import QueryServer

#: PEP 249 module globals.
apilevel = "2.0"
#: Threads may share the module but not connections (the server is a
#: cooperative single-threaded scheduler by design).
threadsafety = 1
#: Default parameter style; ``:name`` (``named``) is accepted as well.
paramstyle = "qmark"


def connect(
    config: SkinnerConfig = DEFAULT_CONFIG,
    *,
    registry: EngineRegistry | None = None,
    autocommit: bool = False,
) -> Connection:
    """Open a connection to a fresh in-memory database.

    >>> import repro.api as db_api
    >>> conn = db_api.connect()
    >>> conn.create_table("r", {"id": [1, 2], "x": [10, 20]})  # doctest: +ELLIPSIS
    Table(...)
    >>> cur = conn.cursor()
    >>> cur.execute("SELECT r.x FROM r WHERE r.id = ?", (2,))  # doctest: +ELLIPSIS
    <repro.api.cursor.Cursor ...>
    >>> cur.fetchall()
    [(20,)]
    """
    return Connection(config, registry=registry, autocommit=autocommit)


class Connection:
    """A session: schema + UDFs + serving layer + engine registry.

    Parameters
    ----------
    config:
        Default :class:`~repro.config.SkinnerConfig` for executions on this
        connection (including the ``serving_*`` sizing knobs).
    registry:
        Engine registry for resolving ``engine=`` names; defaults to the
        process-wide registry, so engines added via
        :func:`repro.api.register_engine` are available on every connection.
    autocommit:
        When true, schema mutations commit immediately and ``rollback()``
        is a no-op (the :class:`~repro.db.SkinnerDB` facade's mode).
    """

    def __init__(
        self,
        config: SkinnerConfig = DEFAULT_CONFIG,
        *,
        registry: EngineRegistry | None = None,
        autocommit: bool = False,
    ) -> None:
        self.catalog = Catalog()
        self.udfs = UdfRegistry()
        self.config = config
        self.autocommit = autocommit
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self._statistics: StatisticsCatalog | None = None
        self._server: QueryServer | None = None
        self._closed = False
        self._txn_tables: dict[str, Table] | None = None
        self._txn_udfs: dict[str, Any] | None = None
        self._cursors: list[Cursor] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` was called."""
        return self._closed

    def close(self) -> None:
        """Close the connection: roll back pending schema changes, close cursors."""
        if self._closed:
            return
        self.rollback()
        for cursor in list(self._cursors):
            cursor.close()
        self._closed = True

    def __enter__(self) -> Connection:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # PEP 249 context managers commit on success, roll back on error.
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("connection is closed")

    # ------------------------------------------------------------------
    # transactions over schema mutations
    # ------------------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        """Whether uncommitted schema mutations exist."""
        return self._txn_tables is not None

    def _before_mutation(self) -> None:
        """Open an implicit transaction at the first mutation (PEP 249)."""
        self._check_open()
        if not self.autocommit and self._txn_tables is None:
            self._txn_tables = self.catalog.snapshot()
            self._txn_udfs = self.udfs.snapshot()

    def commit(self) -> None:
        """Make schema mutations since the last commit permanent."""
        self._check_open()
        self._txn_tables = None
        self._txn_udfs = None

    def rollback(self) -> None:
        """Undo schema mutations since the last commit."""
        if self._closed:
            return
        if self._txn_tables is not None:
            self.catalog.restore(self._txn_tables)
            assert self._txn_udfs is not None
            self.udfs.restore(self._txn_udfs)
            self._txn_tables = None
            self._txn_udfs = None
            self._invalidate()

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------
    def create_table(
        self, name: str, columns: Mapping[str, Sequence[Any]], *, replace: bool = False
    ) -> Table:
        """Create a table from a column name to value-list mapping."""
        self._before_mutation()
        table = Table(name, columns)
        self.catalog.add_table(table, replace=replace)
        self._invalidate()
        return table

    def add_table(self, table: Table, *, replace: bool = False) -> None:
        """Register an existing :class:`Table`."""
        self._before_mutation()
        self.catalog.add_table(table, replace=replace)
        self._invalidate()

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        self._before_mutation()
        self.catalog.drop_table(name)
        self._invalidate()

    def load_csv(
        self,
        path: str | Path,
        table_name: str | None = None,
        *,
        replace: bool = False,
    ) -> Table:
        """Load a CSV file into a new table (``replace=True`` to reload)."""
        self._before_mutation()
        table = load_csv(path, table_name)
        self.catalog.add_table(table, replace=replace)
        self._invalidate()
        return table

    def register_udf(
        self,
        name: str,
        function: Callable[..., Any],
        *,
        cost: int = 1,
        selectivity_hint: float = 0.33,
        replace: bool = False,
    ) -> None:
        """Register a user-defined function callable from SQL."""
        self._before_mutation()
        self.udfs.register(
            name, function, cost=cost, selectivity_hint=selectivity_hint, replace=replace
        )
        self._invalidate()

    def _invalidate(self) -> None:
        """Schema or UDF change: drop statistics and serving caches."""
        self._statistics = None
        if self._server is not None:
            self._server.invalidate_caches()

    # ------------------------------------------------------------------
    # statistics (used by the traditional baselines only)
    # ------------------------------------------------------------------
    def statistics(self, *, refresh: bool = False) -> StatisticsCatalog:
        """Collect (or return cached) optimizer statistics."""
        if self._statistics is None or refresh:
            self._statistics = StatisticsCatalog.collect(self.catalog)
        return self._statistics

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def server(self) -> QueryServer:
        """The serving layer over this connection (created lazily)."""
        if self._server is None:
            from repro.serving.server import QueryServer

            self._server = QueryServer(
                self.catalog, self.udfs, self.config,
                statistics_provider=self.statistics,
                registry=self.registry,
            )
        return self._server

    def cursor(self) -> Cursor:
        """A new cursor over this connection (PEP 249)."""
        self._check_open()
        cursor = Cursor(self)
        self._cursors.append(cursor)
        return cursor

    def parse(
        self,
        sql: str,
        params: Sequence[Any] | Mapping[str, Any] | None = None,
    ) -> Query:
        """Parse SQL text (with optional bound parameters) into a query."""
        return parse_query(sql, self.catalog, params)

    def execute(
        self,
        query: str | Query,
        *,
        engine: str = "skinner-c",
        profile: str = "postgres",
        config: SkinnerConfig | None = None,
        threads: int = 1,
        forced_order: Sequence[str] | None = None,
        use_result_cache: bool = True,
        params: Sequence[Any] | Mapping[str, Any] | None = None,
    ) -> QueryResult:
        """Execute a query through the serving layer and return the result.

        This is the whole-result convenience path (cursors stream); it
        resolves the engine through the connection's registry and benefits
        from the serving caches and the join-order warm start.
        """
        self._check_open()
        parsed = self._resolve_query(query, params)
        return self.server.execute(
            parsed,
            engine=engine,
            profile=profile,
            # Resolve against the connection's (reassignable) config, not
            # the server's construction-time snapshot.
            config=config or self.config,
            threads=threads,
            forced_order=forced_order,
            use_result_cache=use_result_cache,
        )

    def execute_direct(
        self,
        query: str | Query,
        *,
        engine: str = "skinner-c",
        profile: str = "postgres",
        config: SkinnerConfig | None = None,
        threads: int = 1,
        forced_order: Sequence[str] | None = None,
        params: Sequence[Any] | Mapping[str, Any] | None = None,
    ) -> QueryResult:
        """Execute on a directly constructed engine (no serving layer).

        The pre-serving code path, kept for A/B comparisons and callers
        that want to bypass admission control and the caches; engines are
        resolved through the same registry as :meth:`execute`, so both
        paths reject an unknown engine with the identical error.
        """
        self._check_open()
        parsed = self._resolve_query(query, params)
        spec = self.registry.resolve(engine)
        context = EngineContext(
            self.catalog,
            self.udfs,
            config or self.config,
            profile=profile,
            threads=threads,
            statistics_provider=self.statistics,
        )
        return spec.execute(context, parsed, forced_order=forced_order)

    def _resolve_query(
        self,
        query: str | Query,
        params: Sequence[Any] | Mapping[str, Any] | None,
    ) -> Query:
        """Parse SQL text with bound params; pass prebuilt queries through.

        Parameters alongside a prebuilt :class:`Query` are rejected (the
        query's literal values are already baked in) — silently ignoring
        them would drop the caller's bindings without a trace.
        """
        if isinstance(query, str):
            return self.parse(query, params)
        if params:
            raise ReproError(
                "parameters require SQL text; a prebuilt Query has its "
                "values baked in"
            )
        return query

    def _forget_cursor(self, cursor: Cursor) -> None:
        if cursor in self._cursors:
            self._cursors.remove(cursor)
