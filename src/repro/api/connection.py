"""PEP 249-style connections over the repro engines — local or remote.

:func:`connect` opens a :class:`Connection` in one of two forms:

* ``connect(config)`` (or no arguments) — the historical in-process form:
  the connection owns a catalog, a UDF registry, the serving layer, and the
  engine registry the session resolves ``engine=`` names against.
* ``connect("repro://host:port/?tenant=...")`` — a DSN: the connection
  speaks the length-prefixed JSON wire protocol of :mod:`repro.net`
  against a live server; the catalog, UDFs, and scheduling live
  server-side and this process only holds a socket.

Either way the connection routes every operation through one
:class:`~repro.api.transport.Transport`, so cursors, schema mutations, and
transactions behave identically over both forms (capability differences —
no Python UDFs or prebuilt :class:`Query` objects over the wire — raise
:class:`~repro.errors.InterfaceError`; see ``docs/api.md``).

Transactions cover *schema mutations*: ``create_table`` / ``add_table`` /
``load_csv`` / ``drop_table`` / ``register_udf`` apply immediately (queries
in the same session see them), and ``rollback()`` restores the catalog and
UDF registry to their state at the last ``commit()``.  Query execution is
read-only and unaffected by transaction boundaries.  Facade-style callers
(:class:`repro.db.SkinnerDB`) open the connection with ``autocommit=True``,
which turns every mutation into its own committed transaction.  On a
remote connection the transaction verbs act on the server's shared session
(see ``docs/serving.md``).

Use-after-close raises :class:`~repro.errors.InterfaceError` (a
:class:`~repro.errors.ReproError` subclass) from every connection and
cursor method, and ``close()`` is idempotent — both per PEP 249.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Mapping, Sequence
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.api.cursor import Cursor
from repro.api.registry import DEFAULT_REGISTRY, EngineContext, EngineRegistry
from repro.api.transport import LocalTransport, Transport
from repro.config import DEFAULT_CONFIG, SkinnerConfig
from repro.errors import InterfaceError, OperationalError, ReproError
from repro.optimizer.statistics import StatisticsCatalog
from repro.query.parser import parse_query
from repro.query.query import Query
from repro.query.udf import UdfRegistry
from repro.result import QueryResult
from repro.storage.catalog import Catalog
from repro.storage.table import Table

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.serving.server import QueryServer

#: PEP 249 module globals.
apilevel = "2.0"
#: Threads may share the module but not connections (the server is a
#: cooperative single-threaded scheduler by design).
threadsafety = 1
#: Default parameter style; ``:name`` (``named``) is accepted as well.
paramstyle = "qmark"


def connect(
    config: SkinnerConfig | str = DEFAULT_CONFIG,
    *,
    registry: EngineRegistry | None = None,
    autocommit: bool = False,
    tenant: str | None = None,
    timeout: float | None = None,
    workers: int | None = None,
    data_dir: str | Path | None = None,
    engine: str | None = None,
) -> Connection:
    """Open a connection — to a fresh in-memory database, or to a server.

    The first argument is either a :class:`~repro.config.SkinnerConfig`
    (in-process database, the historical form) or a DSN string
    ``repro://host:port/?tenant=name&timeout=seconds&workers=N`` selecting
    the remote transport.  ``tenant``, ``timeout``, and ``workers`` keyword
    arguments override the DSN's query parameters; for an in-process
    connection ``tenant`` tags this connection's submissions in the serving
    layer's quota accounting and ``timeout`` is ignored (there is no wire
    to time out).  ``registry`` and ``autocommit`` apply to in-process
    connections only (a remote server resolves engines and commits against
    its own state).

    ``workers`` sets this connection's default intra-query parallelism for
    parallelizable engines (morsel-parallel Skinner-C): explicit keyword
    beats the ``REPRO_PARALLEL_WORKERS`` environment variable beats the
    config's own ``parallel_workers``.  Anything but a positive integer
    raises :class:`~repro.errors.InterfaceError` here, at connect time.

    ``data_dir`` selects durable storage, resolved through the identical
    chain: explicit keyword beats the ``REPRO_DATA_DIR`` environment
    variable beats the config's own ``data_dir`` (``None`` everywhere
    keeps the in-memory catalog).  Locally, opening the directory recovers
    committed tables before :func:`connect` returns — warm starts answer
    their first query without re-parsing CSVs; remotely the value is sent
    in the handshake and must match the server's own data directory.  Bad
    values (non-string, empty, an existing non-directory path, or a
    format-version mismatch on open) raise
    :class:`~repro.errors.InterfaceError` here, at connect time.

    ``engine`` sets this connection's default engine for executions that
    name none, resolved through the identical chain: explicit keyword
    beats the ``REPRO_ENGINE`` environment variable beats the DSN's
    ``?engine=`` parameter beats the config's own ``default_engine``.
    Locally the name is validated against the connection's registry (and
    remotely against the server's) so unknown engines raise
    :class:`~repro.errors.InterfaceError` here, at connect time.

    >>> import repro.api as db_api
    >>> conn = db_api.connect()
    >>> conn.create_table("r", {"id": [1, 2], "x": [10, 20]})  # doctest: +ELLIPSIS
    Table(...)
    >>> cur = conn.cursor()
    >>> cur.execute("SELECT r.x FROM r WHERE r.id = ?", (2,))  # doctest: +ELLIPSIS
    <repro.api.cursor.Cursor ...>
    >>> cur.fetchall()
    [(20,)]
    """
    workers = _resolve_workers(workers)
    data_dir = _resolve_data_dir(data_dir)
    engine = _resolve_engine(engine)
    if isinstance(config, str):
        from repro.net.client import RemoteTransport

        transport = RemoteTransport.from_dsn(
            config, tenant=tenant, timeout=timeout, workers=workers,
            data_dir=data_dir, engine=engine,
        )
        return Connection(transport=transport)
    if workers is not None:
        config = config.with_overrides(parallel_workers=workers)
    if data_dir is not None:
        config = config.with_overrides(data_dir=data_dir)
    if engine is not None:
        config = config.with_overrides(default_engine=engine)
    effective_registry = registry if registry is not None else DEFAULT_REGISTRY
    if config.default_engine not in effective_registry:
        raise InterfaceError(
            f"unknown engine {config.default_engine!r}; registered engines: "
            f"{', '.join(effective_registry.names())}"
        )
    return Connection(
        config,
        registry=registry,
        autocommit=autocommit,
        tenant=tenant if tenant is not None else "default",
    )


def _resolve_workers(workers: int | None) -> int | None:
    """Validate the ``workers`` request (kwarg, then environment).

    Returns ``None`` when neither the keyword nor ``REPRO_PARALLEL_WORKERS``
    asks for anything — the config's own ``parallel_workers`` then applies
    untouched.  Invalid values fail *here*, at connect time, instead of
    surfacing as a confusing mid-query error.
    """
    if workers is None:
        raw = os.environ.get("REPRO_PARALLEL_WORKERS")
        if raw is None or raw == "":
            return None
        try:
            value = int(raw)
        except ValueError:
            raise InterfaceError(
                f"REPRO_PARALLEL_WORKERS must be a positive integer, got {raw!r}"
            ) from None
        if value < 1:
            raise InterfaceError(
                f"REPRO_PARALLEL_WORKERS must be a positive integer, got {raw!r}"
            )
        return value
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise InterfaceError(f"workers must be a positive integer, got {workers!r}")
    if workers < 1:
        raise InterfaceError(f"workers must be a positive integer, got {workers!r}")
    return workers


def _resolve_data_dir(data_dir: str | Path | None) -> str | None:
    """Validate the ``data_dir`` request (kwarg, then environment).

    Returns ``None`` when neither the keyword nor ``REPRO_DATA_DIR`` asks
    for anything — the config's own ``data_dir`` then applies untouched.
    Invalid values fail *here*, at connect time, mirroring
    :func:`_resolve_workers`.
    """
    origin = "data_dir"
    if data_dir is None:
        raw = os.environ.get("REPRO_DATA_DIR")
        if raw is None or raw == "":
            return None
        data_dir = raw
        origin = "REPRO_DATA_DIR"
    if isinstance(data_dir, Path):
        data_dir = str(data_dir)
    if not isinstance(data_dir, str) or not data_dir.strip():
        raise InterfaceError(f"{origin} must be a non-empty path, got {data_dir!r}")
    path = Path(data_dir)
    if path.exists() and not path.is_dir():
        raise InterfaceError(f"{origin} {data_dir!r} exists and is not a directory")
    return data_dir


def _resolve_engine(engine: str | None) -> str | None:
    """Validate the ``engine`` request (kwarg, then environment).

    Returns ``None`` when neither the keyword nor ``REPRO_ENGINE`` asks
    for anything — the DSN's ``?engine=`` (remote) or the config's own
    ``default_engine`` (local) then applies untouched.  Shape errors fail
    *here*, at connect time, mirroring :func:`_resolve_workers`; registry
    membership is checked by the caller (locally) or the server handshake
    (remotely), which own the authoritative name sets.
    """
    origin = "engine"
    if engine is None:
        raw = os.environ.get("REPRO_ENGINE")
        if raw is None or raw == "":
            return None
        engine = raw
        origin = "REPRO_ENGINE"
    if not isinstance(engine, str) or not engine.strip():
        raise InterfaceError(f"{origin} must be a non-empty engine name, got {engine!r}")
    return engine.lower()


def _build_buffer_manager(config: SkinnerConfig):
    """The storage backend a local connection's catalog runs on.

    ``config.data_dir`` selects durable storage; ``None`` (the default)
    returns ``None`` so :class:`~repro.storage.catalog.Catalog` builds its
    historical in-memory backend.  Recovery runs inside the catalog's
    constructor, so a corrupt or version-mismatched directory fails the
    ``connect()`` call itself.
    """
    if config.data_dir is None:
        return None
    from repro.storage.durable import DurableBufferManager

    return DurableBufferManager(config.data_dir, pool_bytes=config.buffer_pool_bytes)


class Connection:
    """A session: schema + UDFs + serving layer, behind one transport.

    Parameters
    ----------
    config:
        Default :class:`~repro.config.SkinnerConfig` for executions on this
        connection (including the ``serving_*`` sizing knobs).  Unused when
        ``transport`` is given (the server's own config applies).
    registry:
        Engine registry for resolving ``engine=`` names; defaults to the
        process-wide registry, so engines added via
        :func:`repro.api.register_engine` are available on every connection.
    autocommit:
        When true, schema mutations commit immediately and ``rollback()``
        is a no-op (the :class:`~repro.db.SkinnerDB` facade's mode).
    tenant:
        Tenant identity for the serving layer's quota accounting.
    transport:
        A remote :class:`~repro.api.transport.Transport`; when given, the
        connection holds no local catalog/UDFs/server and every operation
        crosses the wire.  Use :func:`connect` with a DSN rather than
        constructing one directly.
    """

    def __init__(
        self,
        config: SkinnerConfig = DEFAULT_CONFIG,
        *,
        registry: EngineRegistry | None = None,
        autocommit: bool = False,
        tenant: str = "default",
        transport: Transport | None = None,
    ) -> None:
        self._remote = transport is not None
        if transport is not None:
            self.catalog = None
            self.udfs = None
            self.config = None
            self.registry = None
            self.autocommit = False
            self._transport: Transport = transport
        else:
            self.catalog = Catalog(_build_buffer_manager(config))
            self.udfs = UdfRegistry()
            self.config = config
            self.autocommit = autocommit
            self.registry = registry if registry is not None else DEFAULT_REGISTRY
            self._transport = LocalTransport(self, tenant=tenant)
        self._statistics: StatisticsCatalog | None = None
        self._server: QueryServer | None = None
        self._closed = False
        # Opaque catalog snapshot token of the open transaction (a table
        # mapping in-memory, a WAL offset with durable storage) — None
        # outside transactions.
        self._txn_tables: Any | None = None
        self._txn_udfs: dict[str, Any] | None = None
        self._cursors: list[Cursor] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` was called."""
        return self._closed

    @property
    def is_remote(self) -> bool:
        """Whether operations cross a process boundary (DSN connection)."""
        return self._remote

    @property
    def transport(self) -> Transport:
        """The transport every operation on this connection routes through."""
        return self._transport

    @property
    def tenant(self) -> str:
        """Tenant identity this connection's submissions are accounted to."""
        return self._transport.tenant

    @property
    def default_engine(self) -> str:
        """Engine used when a query names none explicitly.

        Locally the config's ``default_engine`` (after :func:`connect`'s
        ``engine=``/``REPRO_ENGINE`` resolution); remotely the name the
        server acknowledged in the handshake.
        """
        if self._remote:
            return getattr(self._transport, "engine", None) or "skinner-c"
        assert self.config is not None
        return self.config.default_engine

    def close(self) -> None:
        """Close the connection: roll back pending schema changes, close
        cursors, release the transport.  Idempotent (PEP 249)."""
        if self._closed:
            return
        try:
            self.rollback()
            for cursor in list(self._cursors):
                cursor.close()
        except OperationalError:
            pass  # a dead wire must not keep the handle open client-side
        finally:
            self._closed = True
            try:
                self._transport.close()
            except OperationalError:
                pass
            if self.catalog is not None:
                # Release external-DBMS mirrors (scratch sqlite files)
                # before the catalog itself.
                from repro.external.engines import close_adapters

                close_adapters(self.catalog)
                self.catalog.close()

    def __enter__(self) -> Connection:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # PEP 249 context managers commit on success, roll back on error.
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def _check_local(self, operation: str) -> None:
        if self._remote:
            raise InterfaceError(
                f"{operation} is not available on a remote connection "
                "(the catalog and engines live server-side)"
            )

    # ------------------------------------------------------------------
    # transactions over schema mutations
    # ------------------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        """Whether uncommitted schema mutations exist (local connections)."""
        self._check_local("in_transaction")
        return self._txn_tables is not None

    def _before_mutation(self) -> None:
        """Open an implicit transaction at the first mutation (PEP 249)."""
        if not self.autocommit and self._txn_tables is None and not self._remote:
            assert self.catalog is not None and self.udfs is not None
            self._txn_tables = self.catalog.snapshot()
            self._txn_udfs = self.udfs.snapshot()

    def _after_mutation(self) -> None:
        """Autocommit: every mutation is its own committed transaction.

        Without this, durable storage would never see a commit record on
        autocommit connections (the :class:`~repro.db.SkinnerDB` facade)
        and their mutations would be rolled back on reopen.
        """
        if self.autocommit and not self._remote:
            assert self.catalog is not None
            self.catalog.commit()

    def commit(self) -> None:
        """Make schema mutations since the last commit permanent."""
        self._check_open()
        self._transport.commit()

    def rollback(self) -> None:
        """Undo schema mutations since the last commit."""
        if self._closed:
            return
        self._transport.rollback()

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------
    def create_table(
        self, name: str, columns: Mapping[str, Sequence[Any]], *, replace: bool = False
    ) -> Table:
        """Create a table from a column name to value-list mapping."""
        self._check_open()
        return self._transport.create_table(name, columns, replace=replace)

    def add_table(self, table: Table, *, replace: bool = False) -> None:
        """Register an existing :class:`Table`."""
        self._check_open()
        self._transport.add_table(table, replace=replace)

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        self._check_open()
        self._transport.drop_table(name)

    def load_csv(
        self,
        path: str | Path,
        table_name: str | None = None,
        *,
        replace: bool = False,
    ) -> Table:
        """Load a CSV file into a new table (``replace=True`` to reload).

        The file is always read client-side; over a remote transport the
        parsed columns are shipped to the server.
        """
        self._check_open()
        return self._transport.load_csv(path, table_name, replace=replace)

    def load_document(
        self,
        path: str | Path,
        table_name: str | None = None,
        *,
        format: str | None = None,
        replace: bool = False,
    ) -> Table:
        """Shred an XML or JSON document into a relational node table.

        The document is parsed client-side and shredded into one row per
        node (pre/post order, parent, depth, kind/tag, typed value columns
        — see ``docs/docstore.md``); XPath-style axis queries over the
        table are built with :mod:`repro.docstore.axes`.  ``format`` is
        ``"xml"`` or ``"json"``, inferred from the file suffix when
        ``None``.  Like :meth:`load_csv`, re-loading identical bytes into a
        durable catalog is a warm-start no-op, and the parsed columns ship
        over the wire on remote connections.
        """
        self._check_open()
        return self._transport.load_document(
            path, table_name, format=format, replace=replace
        )

    def register_udf(
        self,
        name: str,
        function: Callable[..., Any],
        *,
        cost: int = 1,
        selectivity_hint: float = 0.33,
        replace: bool = False,
    ) -> None:
        """Register a user-defined function callable from SQL.

        Local connections only: Python callables cannot be shipped over
        the wire (remote transports raise
        :class:`~repro.errors.InterfaceError`).
        """
        self._check_open()
        self._transport.register_udf(
            name, function, cost=cost, selectivity_hint=selectivity_hint, replace=replace
        )

    def _invalidate(self) -> None:
        """Schema or UDF change: drop statistics and serving caches."""
        self._statistics = None
        if self._server is not None:
            self._server.invalidate_caches()

    # ------------------------------------------------------------------
    # statistics (used by the traditional baselines only)
    # ------------------------------------------------------------------
    def statistics(self, *, refresh: bool = False) -> StatisticsCatalog:
        """Collect (or return cached) optimizer statistics."""
        self._check_local("statistics()")
        if self._statistics is None or refresh:
            self._statistics = StatisticsCatalog.collect(self.catalog)
        return self._statistics

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def server(self) -> QueryServer:
        """The serving layer over this connection (created lazily)."""
        self._check_local("server")
        if self._server is None:
            from repro.serving.server import QueryServer

            self._server = QueryServer(
                self.catalog, self.udfs, self.config,
                statistics_provider=self.statistics,
                registry=self.registry,
            )
        return self._server

    def cursor(self) -> Cursor:
        """A new cursor over this connection (PEP 249)."""
        self._check_open()
        cursor = Cursor(self)
        self._cursors.append(cursor)
        return cursor

    def parse(
        self,
        sql: str,
        params: Sequence[Any] | Mapping[str, Any] | None = None,
    ) -> Query:
        """Parse SQL text (with optional bound parameters) into a query."""
        self._check_local("parse()")
        return parse_query(sql, self.catalog, params)

    def stats(self) -> dict[str, Any]:
        """Serving-layer metrics: queue depths, tenant shares, cache hits.

        Works over both transports — remotely this is the wire protocol's
        metrics/health verb.
        """
        self._check_open()
        return self._transport.stats()

    def info(self) -> dict[str, Any]:
        """Connection facts: transport kind, tenant, effective parallelism.

        ``workers`` is the intra-query parallelism Skinner-C queries on
        this connection run with by default — locally the config's
        ``parallel_workers`` (after :func:`connect`'s ``workers=``/
        ``REPRO_PARALLEL_WORKERS`` resolution), remotely the value the
        server granted in the handshake.  ``engines`` lists the resolvable
        engine names (local connections only — a remote server owns its
        registry).  ``caches`` echoes the serving layer's result- and
        join-order-cache counters (hits/misses/invalidations): live values
        once this connection's server exists, zeroed counters before the
        first execution, and ``None`` remotely (read :meth:`stats` for the
        server-side numbers).
        """
        self._check_open()
        if self._remote:
            return {
                "remote": True,
                "tenant": self.tenant,
                "workers": getattr(self._transport, "workers", 1),
                "data_dir": getattr(self._transport, "data_dir", None),
                "engine": self.default_engine,
                "engines": None,
                "autocommit": False,
                "caches": None,
            }
        assert self.config is not None and self.registry is not None
        if self._server is not None:
            caches = {
                "result": self._server.result_cache.counters(),
                "order": self._server.order_cache.counters(),
            }
        else:  # no execution yet — report zeroed counters, don't boot serving
            zeroed = {"entries": 0, "hits": 0, "misses": 0, "invalidations": 0}
            caches = {"result": dict(zeroed), "order": dict(zeroed)}
        return {
            "remote": False,
            "tenant": self.tenant,
            "workers": self.config.parallel_workers,
            "data_dir": self.config.data_dir,
            "engine": self.default_engine,
            "engines": self.registry.names(),
            "autocommit": self.autocommit,
            "caches": caches,
        }

    def execute(
        self,
        query: str | Query,
        *,
        engine: str | None = None,
        profile: str = "postgres",
        config: SkinnerConfig | None = None,
        threads: int = 1,
        forced_order: Sequence[str] | None = None,
        use_result_cache: bool = True,
        params: Sequence[Any] | Mapping[str, Any] | None = None,
    ) -> QueryResult:
        """Execute a query through the serving layer and return the result.

        This is the whole-result convenience path (cursors stream); it
        resolves the engine through the serving side's registry and
        benefits from the serving caches and the join-order warm start.
        ``engine=None`` selects the connection's :attr:`default_engine`.
        """
        self._check_open()
        return self._transport.execute(
            query,
            params,
            engine=engine if engine is not None else self.default_engine,
            profile=profile,
            config=config,
            threads=threads,
            forced_order=forced_order,
            use_result_cache=use_result_cache,
        )

    def execute_direct(
        self,
        query: str | Query,
        *,
        engine: str | None = None,
        profile: str = "postgres",
        config: SkinnerConfig | None = None,
        threads: int = 1,
        forced_order: Sequence[str] | None = None,
        params: Sequence[Any] | Mapping[str, Any] | None = None,
    ) -> QueryResult:
        """Execute on a directly constructed engine (no serving layer).

        The pre-serving code path, kept for A/B comparisons and callers
        that want to bypass admission control and the caches; engines are
        resolved through the same registry as :meth:`execute`, so both
        paths reject an unknown engine with the identical error.  Local
        connections only — a remote server always serves through its
        scheduler.
        """
        self._check_open()
        self._check_local("execute_direct()")
        parsed = self._resolve_query(query, params)
        spec = self.registry.resolve(engine if engine is not None else self.default_engine)
        context = EngineContext(
            self.catalog,
            self.udfs,
            config or self.config,
            profile=profile,
            threads=threads,
            statistics_provider=self.statistics,
        )
        return spec.execute(context, parsed, forced_order=forced_order)

    def _resolve_query(
        self,
        query: str | Query,
        params: Sequence[Any] | Mapping[str, Any] | None,
    ) -> Query:
        """Parse SQL text with bound params; pass prebuilt queries through.

        Parameters alongside a prebuilt :class:`Query` are rejected (the
        query's literal values are already baked in) — silently ignoring
        them would drop the caller's bindings without a trace.
        """
        if isinstance(query, str):
            return self.parse(query, params)
        if params:
            raise ReproError(
                "parameters require SQL text; a prebuilt Query has its "
                "values baked in"
            )
        return query

    def _forget_cursor(self, cursor: Cursor) -> None:
        if cursor in self._cursors:
            self._cursors.remove(cursor)
