"""``repro.api`` — the PEP 249-style public API of the repository.

Four pieces:

* :func:`connect` / :class:`Connection` / :class:`Cursor` — the DB-API 2.0
  surface: session-scoped schema management with transactions over schema
  mutations, parameterized ``execute(sql, params)``, and **streaming**
  fetches (``fetchmany`` returns first rows before the query completes when
  the engine supports it).  ``connect()`` takes either a config (in-process
  database) or a ``repro://host:port/?tenant=...`` DSN (remote server).
* :class:`Transport` / :class:`LocalTransport` /
  :class:`~repro.net.client.RemoteTransport` — the single result channel
  behind connections and cursors; both the streamed fetch path and the
  completion-delivered result path go through it, which is what makes
  local and remote connections behave identically.
* :class:`EngineRegistry` / :class:`EngineSpec` / :func:`register_engine` —
  the pluggable engine registry every execution path resolves engine names
  through; third-party engines register here and become usable from
  cursors, ``SkinnerDB.execute``, and the serving layer alike.
* module globals ``apilevel`` / ``threadsafety`` / ``paramstyle`` per
  PEP 249.

See ``docs/api.md`` for the full tour.
"""

from repro.api.connection import (
    Connection,
    apilevel,
    connect,
    paramstyle,
    threadsafety,
)
from repro.api.cursor import Cursor
from repro.api.transport import LocalTransport, SubmitHandle, Transport
from repro.api.registry import (
    BUILTIN_SPECS,
    DEFAULT_REGISTRY,
    EngineContext,
    EngineRegistry,
    EngineSpec,
    RegistryNames,
    engine_names,
    register_engine,
)

__all__ = [
    "BUILTIN_SPECS",
    "Connection",
    "Cursor",
    "LocalTransport",
    "SubmitHandle",
    "Transport",
    "DEFAULT_REGISTRY",
    "EngineContext",
    "EngineRegistry",
    "EngineSpec",
    "RegistryNames",
    "apilevel",
    "connect",
    "engine_names",
    "paramstyle",
    "register_engine",
    "threadsafety",
]
