"""Deterministic, correlation-heavy XPath-axes workloads.

The generator builds an auction-style document forest (sites holding
regions, items, nested bundles, reviews) whose *structure is the
correlation*: ``rating`` nodes exist only under ``review`` nodes, review
fan-out depends on the item's price band, and a few Zipf-hot sellers
dominate the listings.  Per-column statistics on the shredded node table
see only marginal tag/value frequencies, so an independence-based cost
model misestimates every intermediate of an axis path — while every alias
being the *same* table starves it of base-table signal entirely.  That is
the regime the paper's learned join ordering targets, and the workload
queries are tuned to sit in it: deep self-join chains mixing equi-join
axes (child, the parent half of following-sibling) with inequality region
axes (descendant, ancestor) and selective value predicates.

Everything is a pure function of the seed and the size knobs — the
benchmark gate compares deterministic work fingerprints across machines.
"""

from __future__ import annotations

import math

from repro.docstore.axes import AxisStep, axis_query
from repro.docstore.shred import DocNode, shred_nodes
from repro.query.parser import parse_query
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.generators import Workload, WorkloadQuery, make_rng

_REGIONS = ("africa", "asia", "europe", "namerica", "samerica")
_CATEGORIES = ("coins", "books", "art", "maps", "tools", "toys")
_ADJECTIVES = ("rare", "vintage", "signed", "restored", "boxed", "odd")
_COMMENTS = ("great", "as described", "slow shipping", "damaged", "perfect")


# ----------------------------------------------------------------------
# document generation
# ----------------------------------------------------------------------
def random_item(rng, *, depth: int, sellers: int) -> DocNode:
    """One ``item`` subtree; ``depth`` allows nested ``bundle`` items.

    The built-in correlations: review count tracks the price band (cheap
    items rarely get reviewed), ratings skew low for hot sellers (their
    volume attracts complaints), and bundles recurse only under non-cheap
    items.
    """
    item = DocNode(tag="item", kind="elem")
    category = _CATEGORIES[int(rng.integers(0, len(_CATEGORIES)))]
    adjective = _ADJECTIVES[int(rng.integers(0, len(_ADJECTIVES)))]
    price = float(round(math.exp(rng.uniform(0.0, 7.0)), 2))
    # Zipf-ish seller id: low ids are hot.
    seller = int(rng.zipf(1.4)) % sellers
    item.children.append(DocNode(tag="name", kind="elem",
                                 text=f"{adjective} {category}"))
    item.children.append(DocNode(tag="category", kind="elem", text=category))
    item.children.append(DocNode(tag="price", kind="elem",
                                 text=f"{price:.2f}", number=price))
    item.children.append(DocNode(tag="seller", kind="elem",
                                 text=f"s{seller:03d}", number=float(seller)))
    # View counters stretch the numeric value domain far above the rating
    # scale: the shredded table holds every number in one ``val_num``
    # column, so a marginal histogram over it sees mostly large values and
    # misprices tag-correlated range predicates (``rating >= 5`` looks
    # broad, yet five-star ratings are rare below).
    views = int(rng.integers(500, 5000))
    item.children.append(DocNode(tag="views", kind="elem",
                                 text=str(views), number=float(views)))
    # Correlation: pricey items attract reviews, cheap ones almost none.
    reviews = int(rng.integers(0, 2)) if price < 50 else int(rng.integers(2, 6))
    for _ in range(reviews):
        review = DocNode(tag="review", kind="elem")
        # Correlation: hot sellers (low ids) collect the bad ratings, and
        # a five-star rating is rare for everyone.
        if seller < max(1, sellers // 10):
            rating = float(rng.integers(1, 4))
        elif rng.random() < 0.08:
            rating = 5.0
        else:
            rating = float(rng.integers(3, 5))
        review.children.append(DocNode(tag="rating", kind="elem",
                                       text=f"{rating:.0f}", number=rating))
        # Praise is cheap: most comments are the same hot string, which a
        # distinct-count model still prices as one-in-hundreds.
        if rng.random() < 0.6:
            comment = "great"
        else:
            comment = _COMMENTS[int(rng.integers(1, len(_COMMENTS)))]
        review.children.append(DocNode(tag="comment", kind="elem",
                                       text=comment))
        item.children.append(review)
    if depth > 0 and price >= 50 and rng.random() < 0.6:
        bundle = DocNode(tag="bundle", kind="elem")
        for _ in range(int(rng.integers(1, 3))):
            bundle.children.append(
                random_item(rng, depth=depth - 1, sellers=sellers)
            )
        item.children.append(bundle)
    return item


def build_forest(
    *,
    documents: int = 8,
    items_per_document: int = 24,
    depth: int = 2,
    sellers: int = 40,
    seed: int = 7,
) -> list[DocNode]:
    """A deterministic auction-site forest (one ``site`` root per document)."""
    rng = make_rng(seed)
    roots = []
    for doc in range(documents):
        site = DocNode(tag="site", kind="elem", text=f"site{doc}")
        for region_name in _REGIONS[: 1 + doc % len(_REGIONS)]:
            region = DocNode(tag="region", kind="elem", text=region_name)
            region.children.append(DocNode(tag="rname", kind="attr",
                                           text=region_name))
            share = max(1, items_per_document // (1 + doc % len(_REGIONS)))
            for _ in range(share):
                region.children.append(
                    random_item(rng, depth=depth, sellers=sellers)
                )
            site.children.append(region)
        roots.append(site)
    return roots


def to_xml(node: DocNode) -> str:
    """Serialize an element tree back to XML (for file-ingest round trips)."""
    if node.kind == "attr":
        raise ValueError("attributes serialize with their parent element")
    attributes = "".join(
        f' {child.tag}="{child.text}"'
        for child in node.children if child.kind == "attr"
    )
    children = "".join(to_xml(c) for c in node.children if c.kind != "attr")
    return f"<{node.tag}{attributes}>{node.text}{children}</{node.tag}>"


# ----------------------------------------------------------------------
# query generation
# ----------------------------------------------------------------------
def _query_pool(table: str) -> list[tuple[str, str, list[AxisStep]]]:
    """The axis-path templates the workload samples from.

    Each entry: (name stem, description, steps).  The paths deliberately
    hit the estimator's blind spots — descendant steps from near-root
    nodes (huge true fan-out, flat default selectivity), value predicates
    whose truth is correlated with the structure (bad ratings live under
    hot sellers), and sibling steps among same-tag children.
    """
    return [
        (
            "deep_ratings",
            "ratings of reviews of items anywhere under a site",
            [
                AxisStep("self", tag="site"),
                AxisStep("descendant", tag="item"),
                AxisStep("child", tag="review"),
                AxisStep("child", tag="rating", value_op="<=", value=2),
            ],
        ),
        (
            "region_pricey",
            "prices above threshold for items directly under a region",
            [
                AxisStep("self", tag="region"),
                AxisStep("child", tag="item"),
                AxisStep("child", tag="price", value_op=">", value=400),
            ],
        ),
        (
            "bad_rating_sellers",
            "sellers of items that own a low rating (ancestor axis)",
            [
                AxisStep("self", tag="rating", value_op="<=", value=2),
                AxisStep("ancestor", tag="item"),
                AxisStep("child", tag="seller"),
            ],
        ),
        (
            "repeat_reviews",
            "later reviews of twice-reviewed items (following-sibling)",
            [
                AxisStep("self", tag="item"),
                AxisStep("child", tag="review"),
                AxisStep("following-sibling", tag="review"),
                AxisStep("child", tag="rating", value_op=">=", value=5),
            ],
        ),
        (
            "bundle_prices",
            "prices of items nested inside bundles",
            [
                AxisStep("self", tag="bundle"),
                AxisStep("descendant", tag="item"),
                AxisStep("child", tag="price", value_op="<", value=100),
            ],
        ),
        (
            "praised_five_star",
            "items praised 'great' that also earned a five-star rating",
            [
                AxisStep("self", tag="comment", value_op="=", value="great"),
                AxisStep("ancestor", tag="item"),
                AxisStep("descendant", tag="rating", value_op=">=", value=5),
            ],
        ),
        (
            "praised_context",
            "any context holding both praise and a five-star rating",
            [
                AxisStep("self", tag="comment", value_op="=", value="great"),
                AxisStep("ancestor"),
                AxisStep("descendant", tag="rating", value_op=">=", value=5),
            ],
        ),
        (
            "deep_bundle_ratings",
            "ratings reached through a bundle (two descendant hops)",
            [
                AxisStep("self", tag="site"),
                AxisStep("descendant", tag="bundle"),
                AxisStep("descendant", tag="rating", value_op=">=", value=4),
            ],
        ),
    ]


def make_docstore_workload(
    *,
    documents: int = 8,
    items_per_document: int = 24,
    depth: int = 2,
    sellers: int = 40,
    seed: int = 7,
    table_name: str = "doc_nodes",
) -> Workload:
    """Build the node table and the seeded axes queries over it.

    The returned :class:`~repro.workloads.generators.Workload` carries the
    populated catalog plus one parsed query per template in
    :func:`_query_pool` (tagged ``axes`` and by their axis kinds), with
    the generation knobs recorded in ``parameters``.
    """
    roots = build_forest(
        documents=documents, items_per_document=items_per_document,
        depth=depth, sellers=sellers, seed=seed,
    )
    catalog = Catalog()
    catalog.add_table(Table(table_name, shred_nodes(roots)))
    workload = Workload(
        name="docstore_axes",
        catalog=catalog,
        parameters={
            "documents": documents,
            "items_per_document": items_per_document,
            "depth": depth,
            "sellers": sellers,
            "seed": seed,
            "table_name": table_name,
        },
    )
    for index, (stem, description, steps) in enumerate(_query_pool(table_name)):
        sql = axis_query(table_name, steps, distinct=True)
        axes_used = tuple(sorted({step.axis for step in steps[1:]}))
        workload.queries.append(
            WorkloadQuery(
                name=f"ax{index:02d}_{stem}",
                query=parse_query(sql, catalog),
                description=description,
                tags=("axes", *axes_used),
            )
        )
    return workload
