"""Compile XPath-style axis steps into self-join SQL.

An axis path over a shredded node table (see :mod:`repro.docstore.shred`)
is a chain of steps, each binding one alias of the *same* table; step
*i* is related to step *i-1* by its axis predicate:

=================== =====================================================
axis                join predicates between ``sN`` and its context ``sM``
=================== =====================================================
child               ``sN.parent = sM.pre``
descendant          ``sN.pre > sM.pre AND sN.post < sM.post``
following-sibling   ``sN.parent = sM.parent AND sN.pre > sM.pre``
ancestor            ``sN.pre < sM.pre AND sN.post > sM.post``
=================== =====================================================

``child`` and the parent half of ``following-sibling`` are equi-joins
(hash-join eligible); ``descendant``/``ancestor`` and the order half of
``following-sibling`` are generic inequality join predicates — the mix is
what makes axis paths the paper's favorite stress case: every alias is
the same relation, so base-table statistics carry almost no signal, and
the structural predicates are strongly correlated (a ``rating`` child
exists almost surely under a ``review`` but almost never elsewhere),
which breaks the independence assumptions behind static cost models.

Node tests and value predicates attach to each step as unary predicates
(``tag``/``kind`` equality, ``val_str``/``val_num`` comparisons), so the
emitted SQL stays inside the repro grammar: conjunctive predicates over
aliased tables, no arithmetic, no OR.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ReproError

#: Axes the compiler understands (``self`` only anchors the first step).
AXES = ("self", "child", "descendant", "following-sibling", "ancestor")

_VALUE_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class AxisStep:
    """One step of an axis path: an axis plus optional node/value tests.

    ``tag``/``kind`` test the step's node; ``value_op``+``value`` compare
    its typed value — against ``val_num`` for numeric values, ``val_str``
    for strings.  The first step of a path must use the ``self`` axis (it
    selects the context nodes); every later step must not.
    """

    axis: str
    tag: str | None = None
    kind: str | None = None
    value_op: str | None = None
    value: str | float | int | None = None

    def __post_init__(self) -> None:
        if self.axis not in AXES:
            raise ReproError(
                f"unknown axis {self.axis!r}; expected one of {', '.join(AXES)}"
            )
        if (self.value_op is None) != (self.value is None):
            raise ReproError("value_op and value must be given together")
        if self.value_op is not None and self.value_op not in _VALUE_OPS:
            raise ReproError(f"unsupported value operator {self.value_op!r}")


def _quote(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def _step_predicates(alias: str, step: AxisStep) -> list[str]:
    """The unary node/value tests of one step, rendered as SQL."""
    predicates = []
    if step.tag is not None:
        predicates.append(f"{alias}.tag = {_quote(step.tag)}")
    if step.kind is not None:
        predicates.append(f"{alias}.kind = {_quote(step.kind)}")
    if step.value_op is not None:
        if isinstance(step.value, (int, float)) and not isinstance(step.value, bool):
            predicates.append(f"{alias}.val_num {step.value_op} {step.value!r}")
        else:
            predicates.append(f"{alias}.val_str {step.value_op} {_quote(str(step.value))}")
    return predicates


def _axis_predicates(alias: str, context: str, axis: str) -> list[str]:
    """The join predicates relating one step to its context step."""
    if axis == "child":
        return [f"{alias}.parent = {context}.pre"]
    if axis == "descendant":
        return [f"{alias}.pre > {context}.pre", f"{alias}.post < {context}.post"]
    if axis == "following-sibling":
        return [f"{alias}.parent = {context}.parent", f"{alias}.pre > {context}.pre"]
    if axis == "ancestor":
        return [f"{alias}.pre < {context}.pre", f"{alias}.post > {context}.post"]
    raise ReproError(f"axis {axis!r} cannot extend a path")  # i.e. "self"


def axis_query(
    table: str,
    steps: Sequence[AxisStep],
    *,
    select: str | None = None,
    distinct: bool = False,
) -> str:
    """Render an axis path as a multi-way self-join SELECT statement.

    Step *i* binds alias ``s{i}`` of ``table``; the first step must be the
    ``self`` axis (the context-node test) and later steps chain off their
    predecessor.  ``select`` overrides the projection (default: the final
    step's ``pre``, ``tag``, and ``val_str``); ``distinct`` deduplicates —
    descendant/ancestor chains can reach the same final node along
    multiple intermediate bindings, and XPath node-set semantics want each
    node once.

    >>> axis_query("doc", [AxisStep("self", tag="review"),
    ...                    AxisStep("child", tag="rating")])
    "SELECT s1.pre, s1.tag, s1.val_str FROM doc s0, doc s1 WHERE s0.tag = 'review' AND s1.parent = s0.pre AND s1.tag = 'rating'"
    """
    if not steps:
        raise ReproError("an axis path needs at least one step")
    if steps[0].axis != "self":
        raise ReproError("the first step must use the 'self' axis")
    if any(step.axis == "self" for step in steps[1:]):
        raise ReproError("'self' can only anchor the first step")
    aliases = [f"s{i}" for i in range(len(steps))]
    predicates: list[str] = []
    predicates.extend(_step_predicates(aliases[0], steps[0]))
    for i in range(1, len(steps)):
        predicates.extend(_axis_predicates(aliases[i], aliases[i - 1], steps[i].axis))
        predicates.extend(_step_predicates(aliases[i], steps[i]))
    last = aliases[-1]
    projection = select or f"{last}.pre, {last}.tag, {last}.val_str"
    keyword = "SELECT DISTINCT" if distinct else "SELECT"
    from_list = ", ".join(f"{table} {alias}" for alias in aliases)
    sql = f"{keyword} {projection} FROM {from_list}"
    if predicates:
        sql += " WHERE " + " AND ".join(predicates)
    return sql
