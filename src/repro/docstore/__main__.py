"""CLI entry point: ``python -m repro.docstore`` runs the churn driver."""

from repro.docstore.churn import main

if __name__ == "__main__":
    raise SystemExit(main())
