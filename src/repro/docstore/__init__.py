"""Document data over the relational engines: shredding, axes, churn.

Hierarchical documents (XML/JSON) are the canonical generator of the
queries the paper's learned join ordering is strongest on: XPath axis
steps over a shredded node table become deep *self-joins* whose structural
predicates are heavily correlated — exactly where a conventional
optimizer's independence assumptions collapse (see ``docs/docstore.md``).

Three parts:

* :mod:`repro.docstore.shred` — parse XML/JSON into a node tree and encode
  it as a relational node table (pre/post order, parent, depth, tag/kind,
  typed value columns);
* :mod:`repro.docstore.axes` / :mod:`repro.docstore.workload` — compile
  XPath-style axis steps into multi-way self-join SQL on the repro query
  surface, and generate deterministic, correlation-heavy axes workloads;
* :mod:`repro.docstore.churn` — interleave subtree INSERT/UPDATE/DELETE
  through transactions while streamed queries run through the serving
  layer, proving rows and meter charges byte-identical to a serialized
  replay.
"""

from repro.docstore.axes import AxisStep, axis_query
from repro.docstore.churn import ChurnReport, run_churn
from repro.docstore.shred import (
    DocNode,
    parse_json,
    parse_xml,
    shred_document,
    shred_nodes,
)
from repro.docstore.workload import make_docstore_workload

__all__ = [
    "AxisStep",
    "ChurnReport",
    "DocNode",
    "axis_query",
    "make_docstore_workload",
    "parse_json",
    "parse_xml",
    "run_churn",
    "shred_document",
    "shred_nodes",
]
