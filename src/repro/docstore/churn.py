"""Read/write churn under serving: interleaved run vs serialized replay.

The driver turns the serving layer's central invariant — *per-query rows
and meter charges do not depend on how execution interleaves* — into an
executable proof over document data.  One deterministic schedule of
operations (axis queries, subtree INSERT/UPDATE/DELETE through the PR 5
transaction surface) is executed twice:

* **interleaved** — queries are submitted with ``stream=True`` and
  drained a few rows at a time, with mutations committed *between fetches*
  while the query's task is mid-execution;
* **serialized replay** — the same schedule on a fresh catalog, but every
  query runs to completion at its submission point before the next
  operation applies.

Because engine tasks snapshot their input tables at activation, the
catalog state each query observes is its *submission-time* state in both
runs, so rows, ``simulated_time``, and ledger charges must be
byte-identical pairwise — any divergence is a bug in snapshotting, cache
invalidation (the catalog-epoch fence), or admission accounting, and the
report names it.  The schedule keeps at most one query in flight so the
serving caches traverse identical states in both runs; warm-starting is
disabled for the same reason (it couples one query's charges to another's
*completion* time, which is exactly what the two runs make different).

Runs work on in-memory and durable catalogs alike; ``python -m
repro.docstore.churn --data-dir DIR`` is the CI entry point.
"""

from __future__ import annotations

import argparse
import copy
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.config import DEFAULT_CONFIG, SkinnerConfig
from repro.docstore.axes import axis_query
from repro.docstore.shred import (
    DocNode,
    delete_subtree,
    forest_size,
    insert_subtree,
    shred_nodes,
    update_value,
)
from repro.docstore.workload import _query_pool, build_forest, random_item
from repro.storage.table import Table
from repro.workloads.generators import make_rng

_TABLE = "doc_nodes"


@dataclass(frozen=True)
class ChurnOp:
    """One schedule entry, fully materialized at build time.

    Everything random is drawn while building the schedule, so applying
    an op is a pure function — both runs replay identical values.
    """

    kind: str  # "query" | "insert" | "update" | "delete"
    name: str = ""
    sql: str = ""
    fraction: float = 0.0  # node selector: fraction of the live forest
    text: str = ""
    subtree: DocNode | None = None


@dataclass
class ChurnReport:
    """What one churn comparison produced."""

    steps: int
    queries: int
    mutations: int
    matched: bool
    mismatches: list[str] = field(default_factory=list)
    invalidations: int = 0
    interleaved_work: int = 0
    replay_work: int = 0
    per_query: list[dict[str, Any]] = field(default_factory=list)

    def summary(self) -> str:
        verdict = "MATCH" if self.matched else "MISMATCH"
        lines = [
            f"churn: {self.steps} ops ({self.queries} queries, "
            f"{self.mutations} mutations) -> {verdict}",
            f"  cache invalidations: {self.invalidations}",
            f"  work: interleaved={self.interleaved_work} "
            f"replay={self.replay_work}",
        ]
        lines.extend(f"  !! {reason}" for reason in self.mismatches)
        return "\n".join(lines)


def build_schedule(*, steps: int, seed: int) -> list[ChurnOp]:
    """A deterministic operation schedule (queries and subtree mutations)."""
    rng = make_rng(seed)
    pool = _query_pool(_TABLE)
    ops: list[ChurnOp] = []
    for index in range(steps):
        draw = rng.random()
        if draw < 0.5 or index == 0:  # start with a query so streams exist
            stem, _, axis_steps = pool[int(rng.integers(0, len(pool)))]
            ops.append(ChurnOp(
                kind="query",
                name=f"q{index:02d}_{stem}",
                # No DISTINCT: bare select-project-join keeps the streaming
                # path incremental, which is what the interleaving stresses.
                sql=axis_query(_TABLE, axis_steps, distinct=False),
            ))
        elif draw < 0.7:
            ops.append(ChurnOp(
                kind="insert",
                fraction=float(rng.random()),
                subtree=random_item(rng, depth=1, sellers=40),
            ))
        elif draw < 0.9:
            ops.append(ChurnOp(
                kind="update",
                fraction=float(rng.random()),
                text=f"{float(rng.integers(1, 6)):.0f}",
            ))
        else:
            ops.append(ChurnOp(kind="delete", fraction=float(rng.random())))
    return ops


def _apply_mutation(forest: list[DocNode], op: ChurnOp) -> None:
    index = int(op.fraction * (forest_size(forest) - 1))
    if op.kind == "insert":
        assert op.subtree is not None
        # Deep copy: the schedule's subtree object is shared by both runs,
        # and later updates must not leak between their forests through it.
        insert_subtree(forest, index, copy.deepcopy(op.subtree))
    elif op.kind == "update":
        update_value(forest, index, op.text)
    elif op.kind == "delete":
        delete_subtree(forest, index)
    else:  # pragma: no cover - schedule construction guards this
        raise ValueError(f"not a mutation: {op.kind}")


def _commit_forest(conn, forest: list[DocNode]) -> None:
    """Re-encode the forest and commit it as the node table's new version."""
    conn.add_table(Table(_TABLE, shred_nodes(forest)), replace=True)
    conn.commit()


def _result_rows(result) -> list[tuple]:
    table = result.table
    columns = [table.column(name).values() for name in table.column_names]
    return list(zip(*columns))


def _connect(config: SkinnerConfig, data_dir: str | None):
    import repro.api as api

    if data_dir is not None:
        config = config.with_overrides(data_dir=data_dir)
    return api.connect(config)


def _run_schedule(
    schedule: list[ChurnOp],
    *,
    config: SkinnerConfig,
    data_dir: str | None,
    forest_seed: int,
    forest_kwargs: dict[str, int],
    engine: str,
    fetch_rows: int,
    interleave: bool,
) -> dict[str, Any]:
    """Execute the schedule once; returns per-query observations."""
    forest = build_forest(seed=forest_seed, **forest_kwargs)
    conn = _connect(config, data_dir)
    try:
        _commit_forest(conn, forest)
        server = conn.server
        observations: list[dict[str, Any]] = []
        active: dict[str, Any] | None = None

        def drain_active() -> None:
            nonlocal active
            if active is None:
                return
            while True:
                chunk = server.fetch(active["ticket"], fetch_rows)
                if not chunk:
                    break
                active["streamed"].extend(chunk)
            result = server.result(active["ticket"])
            active["rows"] = _result_rows(result)
            active["simulated_time"] = result.metrics.simulated_time
            active["work"] = server.ledger.total(active["ticket"])
            observations.append(active)
            active = None

        for op in schedule:
            if op.kind == "query":
                drain_active()
                parsed = conn.parse(op.sql)
                ticket = server.submit(
                    parsed, engine=engine, tenant="churn", stream=True,
                    config=config,
                )
                active = {"name": op.name, "ticket": ticket, "streamed": []}
                if interleave:
                    active["streamed"].extend(server.fetch(ticket, fetch_rows))
                else:
                    drain_active()
            else:
                if interleave and active is not None:
                    # Pull a partial chunk so the mutation lands strictly
                    # between fetches of a mid-execution stream.
                    active["streamed"].extend(server.fetch(active["ticket"],
                                                           fetch_rows))
                _apply_mutation(forest, op)
                _commit_forest(conn, forest)
        drain_active()
        stats = server.stats()
        return {
            "observations": observations,
            "invalidations": stats["result_cache"]["invalidations"],
            "work_total": stats["work_total"],
            "inflight": stats["inflight"],
            "queued": stats["queued"],
        }
    finally:
        conn.close()


def run_churn(
    *,
    steps: int = 24,
    seed: int = 11,
    engine: str = "skinner-c",
    data_dir: str | Path | None = None,
    fetch_rows: int = 3,
    documents: int = 3,
    items_per_document: int = 8,
    depth: int = 1,
    config: SkinnerConfig | None = None,
) -> ChurnReport:
    """Run the interleaved schedule and its serialized replay, compare.

    With ``data_dir`` set, each run gets its own durable catalog under it
    (``interleaved/`` and ``replay/`` subdirectories); ``None`` runs both
    in memory.  The returned report's ``matched`` asserts byte-identical
    canonical rows, identical streamed-row multisets, and identical
    ``simulated_time`` and ledger charges per query — plus zero leaked
    admission slots in both runs.
    """
    base = config if config is not None else DEFAULT_CONFIG
    # Warm-starting couples a query's charges to its *predecessor's
    # completion*, which is precisely what interleaving changes; the
    # byte-identity contract is defined with it off.
    run_config = base.with_overrides(serving_warm_start=False)
    schedule = build_schedule(steps=steps, seed=seed)
    forest_kwargs = {
        "documents": documents,
        "items_per_document": items_per_document,
        "depth": depth,
    }
    dirs: dict[str, str | None] = {"interleaved": None, "replay": None}
    if data_dir is not None:
        root = Path(data_dir)
        for mode in dirs:
            (root / mode).mkdir(parents=True, exist_ok=True)
            dirs[mode] = str(root / mode)
    runs = {
        mode: _run_schedule(
            schedule, config=run_config, data_dir=dirs[mode],
            forest_seed=seed * 7919, forest_kwargs=forest_kwargs,
            engine=engine, fetch_rows=fetch_rows,
            interleave=(mode == "interleaved"),
        )
        for mode in ("interleaved", "replay")
    }
    queries = sum(1 for op in schedule if op.kind == "query")
    report = ChurnReport(
        steps=len(schedule),
        queries=queries,
        mutations=len(schedule) - queries,
        matched=True,
        invalidations=runs["interleaved"]["invalidations"],
        interleaved_work=runs["interleaved"]["work_total"],
        replay_work=runs["replay"]["work_total"],
    )
    for mode, run in runs.items():
        if run["inflight"] or run["queued"]:
            report.mismatches.append(
                f"{mode}: leaked admission slots "
                f"(inflight={run['inflight']}, queued={run['queued']})"
            )
    left = runs["interleaved"]["observations"]
    right = runs["replay"]["observations"]
    if len(left) != len(right):
        report.mismatches.append(
            f"query counts differ: {len(left)} vs {len(right)}"
        )
    for one, two in zip(left, right):
        entry = {
            "name": one["name"],
            "rows": len(one["rows"]),
            "simulated_time": one["simulated_time"],
            "work": one["work"],
        }
        report.per_query.append(entry)
        if one["rows"] != two["rows"]:
            report.mismatches.append(f"{one['name']}: canonical rows differ")
        if sorted(one["streamed"]) != sorted(two["streamed"]):
            report.mismatches.append(f"{one['name']}: streamed rows differ")
        if sorted(one["streamed"]) != sorted(one["rows"]):
            report.mismatches.append(
                f"{one['name']}: streamed rows disagree with the result"
            )
        if one["simulated_time"] != two["simulated_time"]:
            report.mismatches.append(
                f"{one['name']}: simulated_time {one['simulated_time']} "
                f"vs {two['simulated_time']}"
            )
        if one["work"] != two["work"]:
            report.mismatches.append(
                f"{one['name']}: ledger charge {one['work']} vs {two['work']}"
            )
    mutations = report.mutations
    if report.invalidations < mutations:
        # Every mutation commits through the facade, which must clear the
        # serving caches (the initial load predates the server, so it does
        # not count) — fewer invalidations than mutations means a commit
        # bypassed invalidation and stale results could be served.
        report.mismatches.append(
            f"expected at least {mutations} cache invalidations for "
            f"{mutations} mutations, saw {report.invalidations}"
        )
    report.matched = not report.mismatches
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Interleave document churn with streamed queries and "
                    "compare against a serialized replay."
    )
    parser.add_argument("--steps", type=int, default=24)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--engine", default="skinner-c")
    parser.add_argument("--data-dir", default=None,
                        help="durable catalog root (omit to run in memory)")
    parser.add_argument("--fetch-rows", type=int, default=3)
    args = parser.parse_args(argv)
    report = run_churn(
        steps=args.steps, seed=args.seed, engine=args.engine,
        data_dir=args.data_dir, fetch_rows=args.fetch_rows,
    )
    print(report.summary())
    return 0 if report.matched else 1


if __name__ == "__main__":  # pragma: no cover - CI entry point
    raise SystemExit(main())
