"""Shred XML/JSON documents into relational node tables.

The encoding is the classic pre/post region scheme: every document node
becomes one row carrying its preorder rank (``pre``), postorder rank
(``post``), parent's preorder rank (``parent``, ``-1`` for roots), depth,
node kind, tag/key, and typed value columns.  Within one document the
region containment test

    ``d.pre > a.pre AND d.post < a.post``  ⇔  *d* is a descendant of *a*

holds exactly, and because each document in a forest gets a disjoint
``[base, base + size)`` range for *both* ranks, the test stays exact
across multi-document tables (a cross-document pair always fails one of
the two comparisons).  The axis compiler (:mod:`repro.docstore.axes`)
relies on nothing but these columns, so every axis step is expressible as
repro join predicates — no arithmetic, no window functions.

Columns of a shredded table:

======== ======= ====================================================
column   type    meaning
======== ======= ====================================================
pre      INT     preorder rank (document order; unique row id)
post     INT     postorder rank (same per-document offset as ``pre``)
parent   INT     ``pre`` of the parent node, ``-1`` for document roots
depth    INT     0 for roots
size     INT     number of descendants (subtree size minus one)
kind     STRING  ``elem``/``attr`` (XML), ``object``/``array``/
                 ``string``/``number``/``bool``/``null`` (JSON)
tag      STRING  element tag, attribute name, or object key;
                 ``#item`` for array members, ``#root`` for JSON roots
val_str  STRING  text value (``""`` when none)
val_num  FLOAT   numeric value (NaN when not numeric)
======== ======= ====================================================

XML simplifications (documented contract): an element's direct text is
stored on the element row itself (no separate text nodes, tails are
ignored) and attributes become child rows of kind ``attr`` preceding the
element children.  NaN ``val_num`` entries never match a join or survive a
comparison predicate, matching the engine-wide "NaN keys never match"
semantics.
"""

from __future__ import annotations

import json
import math
import xml.etree.ElementTree as ElementTree
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

#: Synthetic tags for nodes that have no name of their own.
ITEM_TAG = "#item"
ROOT_TAG = "#root"


@dataclass
class DocNode:
    """One document node: a tag/kind plus typed value and children.

    The tree is the mutable source of truth for churn workloads — subtree
    inserts/updates/deletes edit :class:`DocNode` forests and re-encode
    them through :func:`shred_nodes`; the relational table itself stays
    immutable, as the storage layer requires.
    """

    tag: str
    kind: str = "elem"
    text: str = ""
    number: float = math.nan
    children: list[DocNode] = field(default_factory=list)

    def subtree_size(self) -> int:
        """Number of nodes in this subtree (including the node itself)."""
        return 1 + sum(child.subtree_size() for child in self.children)

    def walk(self):
        """Yield the subtree's nodes in document (preorder) order."""
        yield self
        for child in self.children:
            yield from child.walk()


def _numeric(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        return math.nan
    return value if math.isfinite(value) else math.nan


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def parse_xml(text: str) -> DocNode:
    """Parse an XML document string into a :class:`DocNode` tree."""
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise ReproError(f"malformed XML document: {exc}") from exc
    return _from_element(root)


def _from_element(element: ElementTree.Element) -> DocNode:
    value = (element.text or "").strip()
    node = DocNode(
        tag=element.tag, kind="elem", text=value, number=_numeric(value)
    )
    for name, attr_value in element.attrib.items():
        node.children.append(
            DocNode(tag=name, kind="attr", text=attr_value,
                    number=_numeric(attr_value))
        )
    for child in element:
        if isinstance(child.tag, str):  # skip comments/processing instructions
            node.children.append(_from_element(child))
    return node


def parse_json(text: str) -> DocNode:
    """Parse a JSON document string into a :class:`DocNode` tree."""
    try:
        value = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed JSON document: {exc}") from exc
    return _from_json(ROOT_TAG, value)


def _from_json(tag: str, value) -> DocNode:
    if isinstance(value, dict):
        node = DocNode(tag=tag, kind="object")
        node.children = [_from_json(key, item) for key, item in value.items()]
        return node
    if isinstance(value, list):
        node = DocNode(tag=tag, kind="array")
        node.children = [_from_json(ITEM_TAG, item) for item in value]
        return node
    if isinstance(value, bool):
        return DocNode(tag=tag, kind="bool", text=str(value).lower(),
                       number=float(value))
    if isinstance(value, (int, float)):
        number = float(value)
        if not math.isfinite(number):
            number = math.nan
        return DocNode(tag=tag, kind="number", text=json.dumps(value),
                       number=number)
    if value is None:
        return DocNode(tag=tag, kind="null")
    return DocNode(tag=tag, kind="string", text=str(value),
                   number=_numeric(str(value)))


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def shred_nodes(roots: list[DocNode] | DocNode) -> dict[str, list]:
    """Encode a document forest as node-table columns.

    Each document occupies one disjoint ``[base, base + size)`` range of
    both the ``pre`` and ``post`` rank spaces, keeping the region
    containment test exact across the whole forest.  Rows are emitted in
    ``pre`` order, so ``pre`` doubles as the row id (and lines up with the
    ``_repro_rid`` of external-DBMS mirrors).
    """
    if isinstance(roots, DocNode):
        roots = [roots]
    columns: dict[str, list] = {
        "pre": [], "post": [], "parent": [], "depth": [], "size": [],
        "kind": [], "tag": [], "val_str": [], "val_num": [],
    }
    base = 0
    for root in roots:
        counters = {"pre": base, "post": base}
        _encode(root, parent=-1, depth=0, counters=counters, columns=columns)
        base += root.subtree_size()
    return columns


def _encode(node: DocNode, *, parent: int, depth: int,
            counters: dict[str, int], columns: dict[str, list]) -> int:
    pre = counters["pre"]
    counters["pre"] += 1
    row = len(columns["pre"])
    columns["pre"].append(pre)
    columns["post"].append(0)  # patched once the subtree is numbered
    columns["parent"].append(parent)
    columns["depth"].append(depth)
    columns["size"].append(node.subtree_size() - 1)
    columns["kind"].append(node.kind)
    columns["tag"].append(node.tag)
    columns["val_str"].append(node.text)
    columns["val_num"].append(node.number)
    for child in node.children:
        _encode(child, parent=pre, depth=depth + 1,
                counters=counters, columns=columns)
    columns["post"][row] = counters["post"]
    counters["post"] += 1
    return pre


def shred_document(path: str | Path, *, format: str | None = None) -> dict[str, list]:
    """Read and shred one document file into node-table columns.

    ``format`` is ``"xml"`` or ``"json"``; ``None`` infers it from the
    file suffix.  This is the ingestion entry point behind
    ``Connection.load_document()`` — the returned mapping feeds
    ``create_table`` on any transport.
    """
    path = Path(path)
    if format is None:
        suffix = path.suffix.lower().lstrip(".")
        if suffix in ("xml", "json"):
            format = suffix
        else:
            raise ReproError(
                f"cannot infer document format from {path.name!r}; "
                "pass format='xml' or format='json'"
            )
    format = format.lower()
    text = path.read_text(encoding="utf-8")
    if format == "xml":
        root = parse_xml(text)
    elif format == "json":
        root = parse_json(text)
    else:
        raise ReproError(f"unsupported document format {format!r}")
    return shred_nodes(root)


# ----------------------------------------------------------------------
# forest editing (the churn driver's mutation surface)
# ----------------------------------------------------------------------
def node_at(roots: list[DocNode], index: int) -> DocNode:
    """The ``index``-th node of the forest in document order."""
    for root in roots:
        size = root.subtree_size()
        if index < size:
            for offset, node in enumerate(root.walk()):
                if offset == index:
                    return node
        index -= size
    raise ReproError(f"node index {index} out of range")


def forest_size(roots: list[DocNode]) -> int:
    """Total number of nodes across the forest."""
    return sum(root.subtree_size() for root in roots)


def insert_subtree(roots: list[DocNode], parent_index: int,
                   subtree: DocNode) -> None:
    """Append ``subtree`` as the last child of the ``parent_index``-th node."""
    node_at(roots, parent_index).children.append(subtree)


def delete_subtree(roots: list[DocNode], index: int) -> bool:
    """Remove the ``index``-th node's subtree; roots are never removed."""
    target = node_at(roots, index)
    for root in roots:
        for node in root.walk():
            if target in node.children:
                node.children.remove(target)
                return True
    return False  # a root (or already detached): leave the forest intact


def update_value(roots: list[DocNode], index: int, text: str) -> None:
    """Overwrite the ``index``-th node's value (string and numeric)."""
    node = node_at(roots, index)
    node.text = text
    node.number = _numeric(text)
