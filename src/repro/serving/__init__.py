"""Concurrent query serving: scheduler, admission control, serving caches.

This package turns the single-query engines into a multi-tenant service.
SkinnerDB's episode-sliced execution (small budgeted time slices that can be
suspended and resumed at will) is exactly the primitive a cooperative
multi-query scheduler needs: :class:`~repro.serving.server.QueryServer`
interleaves episodes of many in-flight queries under weighted fair-share
scheduling with strict priority classes, bounds concurrency via admission
control, caches results by normalized query fingerprint, and warm-starts
new queries' UCT trees from join orders learned on the same join graph.

See ``docs/serving.md`` for the design document.
"""

from repro.serving.admission import AdmissionController
from repro.serving.cache import (
    JoinOrderCache,
    ResultCache,
    join_graph_signature,
    query_fingerprint,
)
from repro.serving.scheduler import FairScheduler
from repro.serving.server import SERVABLE_ENGINES, QueryServer
from repro.serving.session import (
    EpisodeTask,
    MonolithicTask,
    QuerySession,
    SessionState,
    StreamBuffer,
    StreamingTask,
)

__all__ = [
    "SERVABLE_ENGINES",
    "AdmissionController",
    "EpisodeTask",
    "FairScheduler",
    "JoinOrderCache",
    "MonolithicTask",
    "QueryServer",
    "QuerySession",
    "ResultCache",
    "SessionState",
    "StreamBuffer",
    "StreamingTask",
    "join_graph_signature",
    "query_fingerprint",
]
