"""The fair episode scheduler: hierarchical stride scheduling with priorities.

The scheduler decides which in-flight query runs its next episode.  It is a
*stride* (virtual-time) scheduler over the deterministic work-unit clock,
with two fairness layers:

* **tenants** divide the served work by their **quota shares**: every tenant
  keeps a virtual time advanced by ``consumed_work / quota``, and among the
  tenants with runnable sessions (in the winning priority class) the one
  with the lowest tenant virtual time runs next.  Over any interval, two
  backlogged tenants receive work proportional to their quotas — a heavy
  tenant flooding the server with sessions cannot push a light tenant
  beyond its quota-implied share;
* **sessions** within a tenant keep the classic per-session virtual time —
  the work a session has consumed divided by its **weight** — so a tenant's
  share is split between its own sessions by their weights;
* **priority classes** remain strict and global: a runnable session of a
  higher class always runs before any session of a lower class (within a
  class, the tenant layer then the weight layer apply).

A newly admitted session starts at the current virtual-time minimum of its
class (preferring same-tenant peers), so it neither gets a catch-up burst
for time it was queued nor starves existing sessions; a tenant (re)entering
the active set is aligned to the active tenants' minimum the same way.

Everything is integer/float arithmetic over meter charges — no wall clock,
no randomness — so a given submission sequence always produces the same
episode interleaving, which the determinism tests rely on.  With a single
tenant (the default) the tenant layer is inert and the schedule is
identical to the pre-tenant scheduler.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.serving.session import QuerySession


class FairScheduler:
    """Picks the next session to run one episode for."""

    def __init__(self) -> None:
        self._active: list[QuerySession] = []
        self._quotas: dict[str, float] = {}
        self._tenant_virtual: dict[str, float] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def active(self) -> tuple[QuerySession, ...]:
        """Sessions currently eligible for scheduling."""
        return tuple(self._active)

    def __len__(self) -> int:
        return len(self._active)

    def add(self, session: QuerySession) -> None:
        """Admit a session, aligning its virtual time with its class.

        The session starts at the minimum virtual time of its same-tenant
        class peers (falling back to all class peers when its tenant has
        none active); its tenant, if not already active, is aligned to the
        minimum tenant virtual time the same way.
        """
        peers = [
            s.virtual_time
            for s in self._active
            if s.priority == session.priority and s.tenant == session.tenant
        ]
        if not peers:
            peers = [s.virtual_time for s in self._active if s.priority == session.priority]
        session.virtual_time = min(peers) if peers else 0.0
        active_tenants = {s.tenant for s in self._active}
        if session.tenant not in active_tenants:
            floor = min(
                (self._tenant_virtual.get(t, 0.0) for t in active_tenants),
                default=0.0,
            )
            self._tenant_virtual[session.tenant] = max(
                self._tenant_virtual.get(session.tenant, 0.0), floor
            )
        self._active.append(session)

    def remove(self, session: QuerySession) -> None:
        """Drop a session (completed, failed, or cancelled)."""
        self._active.remove(session)

    def discard(self, session: QuerySession) -> None:
        """Drop a session if present (failure paths cannot know membership)."""
        if session in self._active:
            self._active.remove(session)

    # ------------------------------------------------------------------
    # tenant quotas
    # ------------------------------------------------------------------
    def set_quota(self, tenant: str, share: float) -> None:
        """Set a tenant's quota share (relative, like session weights)."""
        if share <= 0:
            raise ReproError("tenant quota share must be positive")
        self._quotas[tenant] = float(share)

    def quota(self, tenant: str) -> float:
        """A tenant's quota share (1.0 unless set)."""
        return self._quotas.get(tenant, 1.0)

    @property
    def tenant_virtual_times(self) -> dict[str, float]:
        """Tenant-level virtual clocks (inspection and metrics)."""
        return dict(self._tenant_virtual)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def pick(self) -> QuerySession | None:
        """The next session to run.

        Selection is hierarchical: highest priority class, then the tenant
        with the lowest tenant virtual time among that class's runnable
        tenants, then the session with the lowest virtual time within that
        tenant.  Ties break on tenant name and submission ticket, so the
        schedule is a pure function of the submission sequence and the
        per-episode charges.
        """
        if not self._active:
            return None
        top = max(s.priority for s in self._active)
        candidates = [s for s in self._active if s.priority == top]
        tenants = {s.tenant for s in candidates}
        if len(tenants) > 1:
            winner = min(tenants, key=lambda t: (self._tenant_virtual.get(t, 0.0), t))
            candidates = [s for s in candidates if s.tenant == winner]
        return min(candidates, key=lambda s: (s.virtual_time, s.ticket))

    def charge(self, session: QuerySession, consumed: int) -> None:
        """Advance both stride layers by the session's episode charge.

        Episodes that consumed no measurable work still advance virtual time
        by one unit, so a session whose episodes are all no-ops cannot pin
        the scheduler; the same floor applies to the tenant clock.
        """
        charged = max(consumed, 1)
        weight = max(session.weight, 1e-9)
        session.virtual_time += charged / weight
        share = max(self.quota(session.tenant), 1e-9)
        self._tenant_virtual[session.tenant] = (
            self._tenant_virtual.get(session.tenant, 0.0) + charged / share
        )
