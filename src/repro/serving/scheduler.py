"""The fair episode scheduler: weighted stride scheduling with priorities.

The scheduler decides which in-flight query runs its next episode.  It is a
*stride* (virtual-time) scheduler over the deterministic work-unit clock:

* every session keeps a **virtual time** — the work it has consumed divided
  by its **weight**; after each episode the session is charged
  ``consumed_work / weight``, so over any interval the work received by two
  backlogged sessions is proportional to their weights;
* **priority classes** are strict: a runnable session of a higher class
  always runs before any session of a lower class (within a class, weighted
  fairness applies);
* a newly admitted session starts at the current class-local minimum
  virtual time, so it neither gets a catch-up burst for time it was queued
  nor starves existing sessions.

Everything is integer/float arithmetic over meter charges — no wall clock,
no randomness — so a given submission sequence always produces the same
episode interleaving, which the determinism tests rely on.
"""

from __future__ import annotations

from repro.serving.session import QuerySession


class FairScheduler:
    """Picks the next session to run one episode for."""

    def __init__(self) -> None:
        self._active: list[QuerySession] = []

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def active(self) -> tuple[QuerySession, ...]:
        """Sessions currently eligible for scheduling."""
        return tuple(self._active)

    def __len__(self) -> int:
        return len(self._active)

    def add(self, session: QuerySession) -> None:
        """Admit a session, aligning its virtual time with its class."""
        peers = [s.virtual_time for s in self._active if s.priority == session.priority]
        session.virtual_time = min(peers) if peers else 0.0
        self._active.append(session)

    def remove(self, session: QuerySession) -> None:
        """Drop a session (completed, failed, or cancelled)."""
        self._active.remove(session)

    def discard(self, session: QuerySession) -> None:
        """Drop a session if present (failure paths cannot know membership)."""
        if session in self._active:
            self._active.remove(session)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def pick(self) -> QuerySession | None:
        """The next session to run: highest priority class, lowest virtual time.

        Ties break on the submission ticket, so the schedule is a pure
        function of the submission sequence and the per-episode charges.
        """
        if not self._active:
            return None
        return min(
            self._active,
            key=lambda s: (-s.priority, s.virtual_time, s.ticket),
        )

    def charge(self, session: QuerySession, consumed: int) -> None:
        """Advance a session's virtual time by its weighted episode charge.

        Episodes that consumed no measurable work still advance virtual time
        by one unit, so a session whose episodes are all no-ops cannot pin
        the scheduler.
        """
        weight = max(session.weight, 1e-9)
        session.virtual_time += max(consumed, 1) / weight
