"""Admission control: bound concurrent in-flight work, queue the overflow.

The server interleaves episodes of at most ``max_inflight`` queries; every
additional submission waits in a priority-ordered FIFO queue.  Bounding the
in-flight set bounds memory (each in-flight Skinner query holds its
pre-processed tables, UCT tree, and progress tracker) and keeps the
scheduler's episode rotation short, at the cost of queueing delay — the
classic admission trade-off.
"""

from __future__ import annotations

from repro.serving.session import QuerySession


class AdmissionController:
    """Bounded in-flight set plus an overflow queue."""

    def __init__(self, max_inflight: int) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self._max_inflight = max_inflight
        self._inflight: list[QuerySession] = []
        self._queue: list[QuerySession] = []

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def max_inflight(self) -> int:
        """Concurrency bound."""
        return self._max_inflight

    @property
    def inflight(self) -> tuple[QuerySession, ...]:
        """Sessions currently admitted."""
        return tuple(self._inflight)

    @property
    def queued(self) -> tuple[QuerySession, ...]:
        """Sessions waiting for admission, in dequeue order."""
        return tuple(sorted(self._queue, key=self._queue_key))

    def queue_position(self, session: QuerySession) -> int | None:
        """0-based dequeue position of a queued session, or ``None``."""
        ordered = self.queued
        return ordered.index(session) if session in ordered else None

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    @staticmethod
    def _queue_key(session: QuerySession) -> tuple[int, int]:
        # Higher priority dequeues first; within a class, submission order.
        return (-session.priority, session.ticket)

    def offer(self, session: QuerySession) -> bool:
        """Admit the session if a slot is free; queue it otherwise.

        Returns ``True`` when the session was admitted immediately.
        """
        if len(self._inflight) < self._max_inflight:
            self._inflight.append(session)
            return True
        self._queue.append(session)
        return False

    def release(self, session: QuerySession) -> QuerySession | None:
        """Free the session's slot and admit the next queued session, if any."""
        self._inflight.remove(session)
        if not self._queue:
            return None
        nxt = min(self._queue, key=self._queue_key)
        self._queue.remove(nxt)
        self._inflight.append(nxt)
        return nxt

    def withdraw(self, session: QuerySession) -> bool:
        """Remove a session from the overflow queue (queued-state cancel)."""
        if session in self._queue:
            self._queue.remove(session)
            return True
        return False
