"""The query server: concurrent, episode-interleaved query serving.

:class:`QueryServer` is the multi-tenant entry point of the repository: it
accepts query submissions (``submit`` / ``poll`` / ``result`` / ``cancel``),
bounds concurrent in-flight work through admission control, and drives a
weighted fair-share scheduler that interleaves *episodes* — the budgeted
time slices SkinnerDB's engines are built from — across all active queries
on one thread.  Because an episode touches only its own query's state, a
query's episode sequence (and therefore its results and meter charges) is
byte-identical whether it runs alone or interleaved with arbitrary other
queries; concurrency changes *when* a query's episodes run, never *what*
they compute.

Above the scheduler sit two serving-level caches (see
:mod:`repro.serving.cache`): a result cache over normalized query
fingerprints, and a cross-query join-order cache that warm-starts a new
query's UCT tree from orders learned on the same join graph.

The server is cooperative and single-threaded by design: ``step()`` runs
one scheduling grant, ``drain()`` runs until idle, and ``result(ticket)``
drives the scheduler until the awaited query completes.  No locks, no
threads — determinism is the feature the tests and benchmarks lean on.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence
from dataclasses import replace
from typing import Any

from repro.config import DEFAULT_CONFIG, SkinnerConfig
from repro.engine.meter import WorkLedger
from repro.errors import ReproError
from repro.optimizer.statistics import StatisticsCatalog
from repro.query.parser import parse_query
from repro.query.query import Query
from repro.query.udf import UdfRegistry
from repro.result import QueryResult
from repro.serving.admission import AdmissionController
from repro.serving.cache import (
    JoinOrderCache,
    OrderPrior,
    ResultCache,
    join_graph_signature,
    query_fingerprint,
)
from repro.serving.scheduler import FairScheduler
from repro.serving.session import QuerySession, SessionState, create_task
from repro.skinner.skinner_c import SkinnerCTask
from repro.storage.catalog import Catalog

#: Engines the server can schedule (the Skinner engines episode-sliced, the
#: baselines as single monolithic episodes).
SERVABLE_ENGINES = (
    "skinner-c",
    "skinner-g",
    "skinner-h",
    "traditional",
    "eddy",
    "reoptimizer",
)

#: How many learned join orders one finished query contributes to the prior.
_PRIOR_ORDERS = 3


class QueryServer:
    """Cooperative multi-query scheduler and session layer over one catalog.

    Parameters
    ----------
    catalog:
        Tables to serve queries against.
    udfs:
        Registry of user-defined functions referenced by queries.
    config:
        Default configuration; the ``serving_*`` knobs size the admission
        bound, the scheduling quantum, and both caches.  Per-submission
        config overrides apply to execution but not to the server-level
        sizing knobs.
    statistics_provider:
        Callable returning a :class:`StatisticsCatalog` for the engines
        that need one (traditional, re-optimizer, Skinner-H).  Defaults to
        collecting (and caching) statistics from the catalog on first use.
    threads:
        Default modelled thread count for submissions that do not override
        it.
    """

    def __init__(
        self,
        catalog: Catalog,
        udfs: UdfRegistry | None = None,
        config: SkinnerConfig = DEFAULT_CONFIG,
        *,
        statistics_provider: Callable[[], StatisticsCatalog] | None = None,
        threads: int = 1,
    ) -> None:
        self._catalog = catalog
        self._udfs = udfs
        self._config = config
        self._threads = threads
        self._statistics_provider = statistics_provider
        self._statistics: StatisticsCatalog | None = None
        self._scheduler = FairScheduler()
        self._admission = AdmissionController(config.serving_max_inflight)
        self._sessions: dict[int, QuerySession] = {}
        self._tickets = itertools.count(1)
        self.ledger = WorkLedger()
        self.result_cache = ResultCache(config.serving_result_cache_size)
        self.order_cache = JoinOrderCache(config.serving_order_cache_size)
        self._completed = 0

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    def submit(
        self,
        query: str | Query,
        *,
        engine: str = "skinner-c",
        profile: str = "postgres",
        config: SkinnerConfig | None = None,
        threads: int | None = None,
        forced_order: Sequence[str] | None = None,
        weight: float = 1.0,
        priority: int = 0,
        use_result_cache: bool = True,
    ) -> int:
        """Submit a query for execution; returns its ticket.

        ``weight`` scales the session's fair share of episodes (2.0 gets
        roughly twice the work rate of 1.0); ``priority`` selects the strict
        priority class (higher runs first).  ``use_result_cache=False``
        skips the cache *lookup* for this submission (the finished result is
        still stored for later submissions).
        """
        engine = engine.lower()
        if engine not in SERVABLE_ENGINES:
            raise ReproError(
                f"unknown engine {engine!r}; servable engines: "
                f"{', '.join(SERVABLE_ENGINES)}"
            )
        if weight <= 0:
            raise ReproError("weight must be positive")
        if forced_order is not None and engine != "traditional":
            raise ReproError("forced_order is only supported for engine='traditional'")
        parsed = parse_query(query, self._catalog) if isinstance(query, str) else query
        config = config or self._config
        threads = threads if threads is not None else self._threads
        fingerprint = query_fingerprint(
            parsed, engine=engine, profile=profile, threads=threads,
            config=config, forced_order=forced_order,
        )
        session = QuerySession(
            ticket=next(self._tickets),
            query=parsed,
            engine=engine,
            profile=profile,
            config=config,
            threads=threads,
            forced_order=tuple(forced_order) if forced_order is not None else None,
            weight=weight,
            priority=priority,
            fingerprint=fingerprint,
        )
        self._sessions[session.ticket] = session
        if use_result_cache:
            cached = self.result_cache.get_result(fingerprint)
            if cached is not None:
                session.result = self._cached_copy(cached)
                session.state = SessionState.FINISHED
                session.cache_hit = True
                session.completed_at_work = self.ledger.grand_total()
                self._completed += 1
                return session.ticket
        if self._admission.offer(session):
            self._activate(session)
        return session.ticket

    def poll(self, ticket: int) -> dict[str, Any]:
        """Progress snapshot of a submission (non-blocking)."""
        session = self._session(ticket)
        return {
            "ticket": ticket,
            "state": session.state.value,
            "engine": session.engine,
            "episodes": session.episodes,
            "work_done": self.ledger.total(ticket),
            "queue_position": self._admission.queue_position(session),
            "cache_hit": session.cache_hit,
        }

    def result(self, ticket: int, *, drive: bool = True) -> QueryResult:
        """The result of a submission, driving the scheduler until it is done.

        With ``drive=False`` the call raises unless the session already
        reached a terminal state (useful for pure polling clients).
        """
        session = self._session(ticket)
        while not session.done:
            if not drive:
                raise ReproError(f"query {ticket} is still {session.state.value}")
            if not self.step():
                raise ReproError(f"query {ticket} cannot make progress")
        if session.state is SessionState.CANCELLED:
            raise ReproError(f"query {ticket} was cancelled")
        if session.state is SessionState.FAILED:
            assert session.error is not None
            raise session.error
        assert session.result is not None
        return session.result

    def cancel(self, ticket: int) -> bool:
        """Cancel a queued or running submission.

        A running query is cancelled cooperatively at its next episode
        boundary — i.e. immediately, since the server only runs episodes
        inside :meth:`step`.  Already-finished submissions return ``False``.
        """
        session = self._session(ticket)
        if session.done:
            return False
        if session.state is SessionState.QUEUED and self._admission.withdraw(session):
            session.state = SessionState.CANCELLED
            return True
        # Running: drop it from the rotation and hand the slot onward.
        self._scheduler.remove(session)
        session.state = SessionState.CANCELLED
        session.task = None
        self._admit_next(session)
        return True

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run one scheduling grant (up to ``serving_quantum_episodes``).

        Returns ``False`` when no session is runnable (the server is idle).
        """
        session = self._scheduler.pick()
        if session is None:
            return False
        task = session.task
        assert task is not None
        before = session.work_total()
        try:
            for _ in range(max(1, self._config.serving_quantum_episodes)):
                session.episodes += 1
                if task.run_episode():
                    break
            self._account(session, session.work_total() - before)
            if task.finished:
                self._complete(session)
        except Exception as error:  # noqa: BLE001 - one bad query must not
            # wedge the server: fail the session, keep serving the others.
            unaccounted = session.work_total() - self.ledger.total(session.ticket)
            if unaccounted > 0:
                self._account(session, unaccounted)
            self._fail(session, error)
        return True

    def drain(self) -> int:
        """Run until every submission reached a terminal state."""
        steps = 0
        while self.step():
            steps += 1
        return steps

    def execute(
        self,
        query: str | Query,
        *,
        engine: str = "skinner-c",
        profile: str = "postgres",
        config: SkinnerConfig | None = None,
        threads: int | None = None,
        forced_order: Sequence[str] | None = None,
        use_result_cache: bool = True,
    ) -> QueryResult:
        """Single-query convenience path: submit, drive to completion, return.

        This is what the :class:`~repro.db.SkinnerDB` facade routes through
        by default, so even one-off queries go through admission, the result
        cache, and the join-order warm-start.
        """
        ticket = self.submit(
            query, engine=engine, profile=profile, config=config, threads=threads,
            forced_order=forced_order, use_result_cache=use_result_cache,
        )
        try:
            return self.result(ticket)
        finally:
            # One-shot callers never poll afterwards; dropping the session
            # keeps a long-lived server's memory bounded by its caches.
            self.forget(ticket)

    def forget(self, ticket: int) -> bool:
        """Drop a terminal session's bookkeeping (its result stays cached).

        Long-lived servers accumulate one :class:`QuerySession` per
        submission; clients that are done with a ticket free it here.
        Non-terminal sessions are refused (cancel first).
        """
        session = self._sessions.get(ticket)
        if session is None or not session.done:
            return False
        del self._sessions[ticket]
        return True

    # ------------------------------------------------------------------
    # cache management / inspection
    # ------------------------------------------------------------------
    def invalidate_caches(self) -> None:
        """Drop cached results, join-order priors, and collected statistics.

        Must be called whenever the underlying catalog or UDF registry
        changes; the facade does this on every schema mutation.
        """
        self.result_cache.clear()
        self.order_cache.clear()
        self._statistics = None

    def stats(self) -> dict[str, Any]:
        """Server-level counters (cache efficiency, load, completions)."""
        return {
            "sessions": len(self._sessions),
            "completed": self._completed,
            "inflight": len(self._admission.inflight),
            "queued": len(self._admission.queued),
            "work_total": self.ledger.grand_total(),
            "result_cache": {
                "entries": len(self.result_cache),
                "hits": self.result_cache.hits,
                "misses": self.result_cache.misses,
            },
            "order_cache": {
                "entries": len(self.order_cache),
                "hits": self.order_cache.hits,
                "misses": self.order_cache.misses,
            },
        }

    def session(self, ticket: int) -> QuerySession:
        """The session object behind a ticket (inspection and tests)."""
        return self._session(ticket)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _session(self, ticket: int) -> QuerySession:
        session = self._sessions.get(ticket)
        if session is None:
            raise ReproError(f"unknown ticket {ticket}")
        return session

    def _statistics_for_engines(self) -> StatisticsCatalog:
        if self._statistics_provider is not None:
            return self._statistics_provider()
        if self._statistics is None:
            self._statistics = StatisticsCatalog.collect(self._catalog)
        return self._statistics

    def _warm_start_priors(self, session: QuerySession) -> tuple[OrderPrior, ...]:
        if (
            session.engine != "skinner-c"
            or not session.config.serving_warm_start
            or session.config.order_selection != "uct"
        ):
            return ()
        cap = max(1, session.config.serving_warm_start_visits)
        return tuple(
            (order, reward, min(visits, cap))
            for order, reward, visits in self.order_cache.priors(
                join_graph_signature(session.query)
            )
        )

    def _activate(self, session: QuerySession) -> None:
        try:
            session.task = create_task(
                self._catalog,
                self._udfs,
                session,
                self._statistics_for_engines,
                order_prior=self._warm_start_priors(session),
            )
        except Exception as error:  # noqa: BLE001 - e.g. a UDF raising
            # during pre-processing: fail this session without leaking its
            # admission slot (the error surfaces on result(ticket)).
            self._fail(session, error)
            return
        session.state = SessionState.RUNNING
        self._scheduler.add(session)
        # Task construction pre-processes the query; attribute that work to
        # the session now so ledger totals equal the solo-run meter totals.
        setup_work = session.work_total()
        if setup_work:
            self._account(session, setup_work)

    def _fail(self, session: QuerySession, error: Exception) -> None:
        """Move a session to FAILED, freeing its scheduler and admission slots."""
        session.error = error
        session.result = None
        session.state = SessionState.FAILED
        session.task = None
        self._scheduler.discard(session)
        if session in self._admission.inflight:
            self._admit_next(session)

    def _account(self, session: QuerySession, consumed: int) -> None:
        self.ledger.record(session.ticket, consumed)
        self._scheduler.charge(session, consumed)

    def _complete(self, session: QuerySession) -> None:
        assert session.task is not None
        session.result = session.task.finalize()
        # Post-processing charges during finalize(); attribute the residual
        # so the ledger total equals the solo-run meter total exactly.
        residual = session.work_total() - self.ledger.total(session.ticket)
        if residual > 0:
            self._account(session, residual)
        session.state = SessionState.FINISHED
        session.completed_at_work = self.ledger.grand_total()
        self._completed += 1
        self._scheduler.remove(session)
        if session.fingerprint is not None:
            self.result_cache.put_result(session.fingerprint, session.result)
        self._record_learned_orders(session)
        # Release the per-query execution state (preprocessed tables, result
        # set, tracker, UCT tree) — only the result outlives completion.
        session.task = None
        self._admit_next(session)

    def _record_learned_orders(self, session: QuerySession) -> None:
        task = session.task
        if not isinstance(task, SkinnerCTask) or not self.order_cache.enabled:
            return
        if session.config.order_selection != "uct":
            return
        top = task.tree.top_orders(_PRIOR_ORDERS)
        total = sum(count for _, count in top)
        if total == 0:
            return
        # The prior signal is the *selection share*, not the raw UCT reward:
        # scaled progress deltas vanish as an order approaches completion
        # (the finishing order often records the lowest average reward), so
        # seeding raw rewards would steer the next query away from the best
        # order.  Selection frequency is what UCT concentrates on the best
        # arm, ranks orders correctly, and — being much larger than the
        # per-slice progress rewards — pins the next query to the learned
        # order until enough real evidence dilutes the seed.
        priors = [(order, count / total, count) for order, count in top]
        self.order_cache.record(join_graph_signature(session.query), priors)

    def _admit_next(self, session: QuerySession) -> None:
        admitted = self._admission.release(session)
        if admitted is not None:
            self._activate(admitted)

    @staticmethod
    def _cached_copy(cached: QueryResult) -> QueryResult:
        """A result-cache hit: same table, metrics flagged as cached."""
        metrics = replace(
            cached.metrics,
            extra={**cached.metrics.extra, "result_cache": "hit"},
        )
        return QueryResult(cached.table, metrics)
