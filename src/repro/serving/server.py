"""The query server: concurrent, episode-interleaved query serving.

:class:`QueryServer` is the multi-tenant entry point of the repository: it
accepts query submissions (``submit`` / ``poll`` / ``result`` / ``cancel``),
bounds concurrent in-flight work through admission control, and drives a
weighted fair-share scheduler that interleaves *episodes* — the budgeted
time slices SkinnerDB's engines are built from — across all active queries
on one thread.  Because an episode touches only its own query's state, a
query's episode sequence (and therefore its results and meter charges) is
byte-identical whether it runs alone or interleaved with arbitrary other
queries; concurrency changes *when* a query's episodes run, never *what*
they compute.

Above the scheduler sit two serving-level caches (see
:mod:`repro.serving.cache`): a result cache over normalized query
fingerprints, and a cross-query join-order cache that warm-starts a new
query's UCT tree from orders learned on the same join graph.

The server is cooperative and single-threaded by design: ``step()`` runs
one scheduling grant, ``drain()`` runs until idle, and ``result(ticket)``
drives the scheduler until the awaited query completes.  No locks, no
threads — determinism is the feature the tests and benchmarks lean on.
"""

from __future__ import annotations

import contextlib
import itertools
import time
from collections.abc import Callable, Sequence
from dataclasses import replace
from typing import Any

from repro.api.registry import (
    DEFAULT_REGISTRY,
    EngineContext,
    EngineRegistry,
    RegistryNames,
)
from repro.config import DEFAULT_CONFIG, SkinnerConfig
from repro.engine.meter import CostMeter, WorkLedger
from repro.engine.postprocess import post_process
from repro.engine.relation import RowIdRelation
from repro.errors import ReproError
from repro.optimizer.statistics import StatisticsCatalog
from repro.query.parser import parse_query
from repro.query.query import Query
from repro.query.udf import UdfRegistry
from repro.result import QueryMetrics, QueryResult
from repro.serving.admission import AdmissionController
from repro.serving.cache import (
    JoinOrderCache,
    OrderPrior,
    ResultCache,
    join_graph_signature,
    query_fingerprint,
)
from repro.serving.scheduler import FairScheduler
from repro.serving.session import QuerySession, SessionState, StreamBuffer
from repro.storage.catalog import Catalog
from repro.storage.table import Table

#: Engines the server can schedule — a live view of the default
#: :class:`~repro.api.registry.EngineRegistry`, so engines added through
#: ``register_engine()`` become servable without touching this module.
SERVABLE_ENGINES = RegistryNames(DEFAULT_REGISTRY)

#: How many learned join orders one finished query contributes to the prior.
_PRIOR_ORDERS = 3


def _stream_eligible(query: Query, *, allow_limit: bool = False) -> bool:
    """Whether a query's rows can be delivered before the join completes.

    Aggregation, GROUP BY, ORDER BY, and DISTINCT are *blocking*: their
    output depends on the complete join result, so those queries deliver at
    completion.  Plain select-project-join output rows map 1:1 onto result
    tuples and stream as the tuples materialize (the result set's duplicate
    elimination guarantees each row is delivered once).  A bare ``LIMIT``
    on such a query streams only when the caller opts into push-down
    (``allow_limit``): any ``LIMIT`` rows are a valid answer, but a
    truncated stream is a prefix of the materialization order rather than
    the canonical completion order.
    """
    if query.has_aggregates or query.group_by or query.order_by or query.distinct:
        return False
    return query.limit is None or allow_limit


class QueryServer:
    """Cooperative multi-query scheduler and session layer over one catalog.

    Parameters
    ----------
    catalog:
        Tables to serve queries against.
    udfs:
        Registry of user-defined functions referenced by queries.
    config:
        Default configuration; the ``serving_*`` knobs size the admission
        bound, the scheduling quantum, and both caches.  Per-submission
        config overrides apply to execution but not to the server-level
        sizing knobs.
    statistics_provider:
        Callable returning a :class:`StatisticsCatalog` for the engines
        that need one (traditional, re-optimizer, Skinner-H).  Defaults to
        collecting (and caching) statistics from the catalog on first use.
    threads:
        Default modelled thread count for submissions that do not override
        it.
    registry:
        Engine registry resolving ``engine=`` names; defaults to the
        process-wide :data:`~repro.api.registry.DEFAULT_REGISTRY`.
    """

    def __init__(
        self,
        catalog: Catalog,
        udfs: UdfRegistry | None = None,
        config: SkinnerConfig = DEFAULT_CONFIG,
        *,
        statistics_provider: Callable[[], StatisticsCatalog] | None = None,
        threads: int = 1,
        registry: EngineRegistry | None = None,
    ) -> None:
        self._catalog = catalog
        self._udfs = udfs
        self._config = config
        self._threads = threads
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._statistics_provider = statistics_provider
        self._statistics: StatisticsCatalog | None = None
        self._scheduler = FairScheduler()
        self._admission = AdmissionController(config.serving_max_inflight)
        self._sessions: dict[int, QuerySession] = {}
        self._tickets = itertools.count(1)
        self.ledger = WorkLedger()
        self.result_cache = ResultCache(config.serving_result_cache_size)
        self.order_cache = JoinOrderCache(config.serving_order_cache_size)
        self._completed = 0
        #: Bumped by every :meth:`invalidate_caches`; sessions record the
        #: epoch they snapshotted the catalog under so results computed
        #: against stale data never enter the result cache.
        self._catalog_epoch = 0
        #: Work units charged per tenant (survives ``forget``); feeds the
        #: per-tenant grant shares of :meth:`stats`.
        self._tenant_work: dict[str, int] = {}
        #: Per-tenant cache observations (survive ``forget``): result-cache
        #: lookups from this tenant's submissions and order-cache warm-start
        #: probes for them.
        self._tenant_caches: dict[str, dict[str, int]] = {}
        #: Wall-clock seconds spent inside scheduling grants — the
        #: reference-time companion of the deterministic work ledger.
        self._grant_wall_seconds = 0.0

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    def submit(
        self,
        query: str | Query,
        *,
        engine: str = "skinner-c",
        profile: str = "postgres",
        config: SkinnerConfig | None = None,
        threads: int | None = None,
        forced_order: Sequence[str] | None = None,
        weight: float = 1.0,
        priority: int = 0,
        tenant: str = "default",
        use_result_cache: bool = True,
        stream: bool = False,
    ) -> int:
        """Submit a query for execution; returns its ticket.

        ``weight`` scales the session's fair share of episodes (2.0 gets
        roughly twice the work rate of 1.0); ``priority`` selects the strict
        priority class (higher runs first); ``tenant`` names the quota
        bucket the work is accounted to (see :meth:`set_tenant_quota`).
        ``use_result_cache=False`` skips the cache *lookup* for this
        submission (the finished result is still stored for later
        submissions).  ``stream=True`` buffers result rows for incremental
        delivery through :meth:`fetch`: when the engine and query shape
        allow it, completed batches become fetchable while the query is
        still executing; otherwise all rows become fetchable at completion.
        """
        engine = engine.lower()
        spec = self._registry.resolve(engine)
        spec.check_forced_order(forced_order)
        if weight <= 0:
            raise ReproError("weight must be positive")
        parsed = parse_query(query, self._catalog) if isinstance(query, str) else query
        config = config or self._config
        threads = threads if threads is not None else self._threads
        fingerprint = query_fingerprint(
            parsed, engine=engine, profile=profile, threads=threads,
            config=config, forced_order=forced_order,
        )
        session = QuerySession(
            ticket=next(self._tickets),
            query=parsed,
            engine=engine,
            profile=profile,
            config=config,
            threads=threads,
            forced_order=tuple(forced_order) if forced_order is not None else None,
            weight=weight,
            priority=priority,
            tenant=tenant,
            fingerprint=fingerprint,
            stream_requested=stream,
        )
        self._sessions[session.ticket] = session
        if use_result_cache:
            cached = self.result_cache.get_result(fingerprint)
            counters = self._tenant_cache_counters(tenant)
            counters["result_hits" if cached is not None else "result_misses"] += 1
            if cached is not None:
                session.result = self._cached_copy(cached)
                session.state = SessionState.FINISHED
                session.cache_hit = True
                session.completed_at_work = self.ledger.grand_total()
                self._completed += 1
                if stream:
                    self._deliver_result_rows(session, session.result)
                return session.ticket
        if self._admission.offer(session):
            self._activate(session)
        return session.ticket

    def poll(self, ticket: int) -> dict[str, Any]:
        """Progress snapshot of a submission (non-blocking)."""
        session = self._session(ticket)
        snapshot = {
            "ticket": ticket,
            "state": session.state.value,
            "engine": session.engine,
            "tenant": session.tenant,
            "episodes": session.episodes,
            "work_done": self.ledger.total(ticket),
            "queue_position": self._admission.queue_position(session),
            "cache_hit": session.cache_hit,
        }
        if session.state is SessionState.FINISHED and session.result is not None:
            snapshot["result_rows"] = session.result.table.num_rows
        if session.stream is not None:
            snapshot["stream"] = {
                "names": session.stream.names,
                "fetchable_rows": len(session.stream),
                "rows_streamed": session.stream.rows_streamed,
                "first_rows_at_work": session.stream.first_rows_at_work,
            }
        return snapshot

    def fetch(
        self, ticket: int, max_rows: int | None = None, *, drive: bool = True
    ) -> list[tuple[Any, ...]]:
        """Fetch up to ``max_rows`` result rows of a streaming submission.

        This is the incremental-delivery path behind
        :meth:`repro.api.cursor.Cursor.fetchmany`: the scheduler is driven
        until the submission has fetchable rows (or finishes), then the
        buffered rows are returned in their materialization order.  An
        empty list therefore means the result is exhausted.  With
        ``drive=False`` only already-buffered rows are returned.

        Rows stream *before completion* when the engine's registry spec is
        ``streamable`` and the query has no blocking post-processing
        (aggregation, GROUP BY, ORDER BY, DISTINCT); a plain LIMIT is
        pushed into the stream (the session completes early once the limit
        is filled); otherwise the buffer fills when the query completes.
        """
        session = self._session(ticket)
        if not session.stream_requested:
            raise ReproError(
                f"query {ticket} was not submitted with stream=True"
            )
        # The buffer appears at activation; a session still queued behind
        # admission control has none yet, so drive until it is admitted
        # *and* has fetchable rows (or reaches a terminal state).
        while (
            drive
            and not session.done
            and (session.stream is None or not len(session.stream))
        ):
            if not self.step():
                raise ReproError(f"query {ticket} cannot make progress")
        if session.state is SessionState.CANCELLED:
            raise ReproError(f"query {ticket} was cancelled")
        if session.state is SessionState.FAILED:
            assert session.error is not None
            raise session.error
        if session.stream is None:
            return []  # drive=False before activation: nothing buffered yet
        return session.stream.take(max_rows)

    def result(self, ticket: int, *, drive: bool = True) -> QueryResult:
        """The result of a submission, driving the scheduler until it is done.

        With ``drive=False`` the call raises unless the session already
        reached a terminal state (useful for pure polling clients).
        """
        session = self._session(ticket)
        while not session.done:
            if not drive:
                raise ReproError(f"query {ticket} is still {session.state.value}")
            if not self.step():
                raise ReproError(f"query {ticket} cannot make progress")
        if session.state is SessionState.CANCELLED:
            raise ReproError(f"query {ticket} was cancelled")
        if session.state is SessionState.FAILED:
            assert session.error is not None
            raise session.error
        assert session.result is not None
        return session.result

    def cancel(self, ticket: int) -> bool:
        """Cancel a queued or running submission.

        A running query is cancelled cooperatively at its next episode
        boundary — i.e. immediately, since the server only runs episodes
        inside :meth:`step`.  Already-finished submissions return ``False``.
        """
        session = self._session(ticket)
        if session.done:
            return False
        if session.state is SessionState.QUEUED and self._admission.withdraw(session):
            session.state = SessionState.CANCELLED
            return True
        # Running: drop it from the rotation and hand the slot onward.
        self._scheduler.remove(session)
        session.state = SessionState.CANCELLED
        self._release_task(session)
        self._admit_next(session)
        return True

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run one scheduling grant (up to ``serving_quantum_episodes``).

        A grant is bounded by the work-unit quantum and — when
        ``serving_grant_wall_ms`` is set — by wall-clock time: it ends
        after the configured number of episodes or once the wall budget
        elapses, whichever comes first, so a slow episode stream cannot
        monopolize the thread between scheduling decisions.  Returns
        ``False`` when no session is runnable (the server is idle).
        """
        session = self._scheduler.pick()
        if session is None:
            return False
        task = session.task
        assert task is not None
        before = session.work_total()
        grant_started = time.perf_counter()
        wall_budget = self._config.serving_grant_wall_ms / 1000.0
        try:
            for _ in range(max(1, self._config.serving_quantum_episodes)):
                session.episodes += 1
                if task.run_episode():
                    break
                if wall_budget > 0.0 and time.perf_counter() - grant_started >= wall_budget:
                    break
            elapsed = time.perf_counter() - grant_started
            session.wall_seconds += elapsed
            self._grant_wall_seconds += elapsed
            self._account(session, session.work_total() - before)
            self._pump_stream(session)
            if session.done:
                return True  # LIMIT push-down completed the session early
            if task.finished:
                self._complete(session)
        except Exception as error:  # noqa: BLE001 - one bad query must not
            # wedge the server: fail the session, keep serving the others.
            unaccounted = session.work_total() - self.ledger.total(session.ticket)
            if unaccounted > 0:
                self._account(session, unaccounted)
            self._fail(session, error)
        return True

    def drain(self) -> int:
        """Run until every submission reached a terminal state."""
        steps = 0
        while self.step():
            steps += 1
        return steps

    def execute(
        self,
        query: str | Query,
        *,
        engine: str = "skinner-c",
        profile: str = "postgres",
        config: SkinnerConfig | None = None,
        threads: int | None = None,
        forced_order: Sequence[str] | None = None,
        use_result_cache: bool = True,
    ) -> QueryResult:
        """Single-query convenience path: submit, drive to completion, return.

        This is what the :class:`~repro.db.SkinnerDB` facade routes through
        by default, so even one-off queries go through admission, the result
        cache, and the join-order warm-start.
        """
        ticket = self.submit(
            query, engine=engine, profile=profile, config=config, threads=threads,
            forced_order=forced_order, use_result_cache=use_result_cache,
        )
        try:
            return self.result(ticket)
        finally:
            # One-shot callers never poll afterwards; dropping the session
            # keeps a long-lived server's memory bounded by its caches.
            self.forget(ticket)

    def forget(self, ticket: int) -> bool:
        """Drop a terminal session's bookkeeping (its result stays cached).

        Long-lived servers accumulate one :class:`QuerySession` per
        submission; clients that are done with a ticket free it here.
        Non-terminal sessions are refused (cancel first).
        """
        session = self._sessions.get(ticket)
        if session is None or not session.done:
            return False
        del self._sessions[ticket]
        return True

    # ------------------------------------------------------------------
    # cache management / inspection
    # ------------------------------------------------------------------
    def invalidate_caches(self) -> None:
        """Drop cached results, join-order priors, and collected statistics.

        Must be called whenever the underlying catalog or UDF registry
        changes; the facade does this on every schema mutation.  The epoch
        bump additionally fences in-flight sessions: a task that snapshotted
        its tables under the old epoch still finishes (and still answers
        correctly for *its* submission time), but its result and learned
        orders are discarded instead of cached — post-mutation submissions
        must never be served pre-mutation rows.
        """
        self.result_cache.clear()
        self.order_cache.clear()
        self._statistics = None
        self._catalog_epoch += 1

    def stats(self) -> dict[str, Any]:
        """Server-level counters (cache efficiency, load, completions)."""
        return {
            "sessions": len(self._sessions),
            "completed": self._completed,
            "inflight": len(self._admission.inflight),
            "queued": len(self._admission.queued),
            "work_total": self.ledger.grand_total(),
            "grant_wall_seconds": self._grant_wall_seconds,
            "catalog_epoch": self._catalog_epoch,
            "tenants": self.tenant_stats(),
            "result_cache": self.result_cache.counters(),
            "order_cache": self.order_cache.counters(),
        }

    # ------------------------------------------------------------------
    # tenants
    # ------------------------------------------------------------------
    def set_tenant_quota(self, tenant: str, share: float) -> None:
        """Set a tenant's fair-share quota (relative; unset tenants get 1.0).

        Quotas divide served work *between* tenants before per-session
        weights divide a tenant's share between its own sessions — a heavy
        tenant flooding the server cannot push a light tenant beyond its
        quota-implied share of the work clock.
        """
        self._scheduler.set_quota(tenant, share)

    def tenant_backlog(self, tenant: str) -> int:
        """Number of a tenant's submissions not yet in a terminal state.

        The network front door reads this to apply backpressure: while a
        tenant's backlog is at the configured bound, its socket is not
        read, so admission pressure propagates to the client as TCP flow
        control instead of an unbounded server-side queue.
        """
        return sum(
            1
            for session in self._sessions.values()
            if session.tenant == tenant and not session.done
        )

    def tenant_stats(self) -> dict[str, dict[str, Any]]:
        """Per-tenant load, grant shares, and cache observations.

        Each tenant's ``caches`` entry reports the result-cache lookups its
        submissions performed and the order-cache warm-start probes made on
        their behalf; ``invalidations`` is the shared invalidation count
        (the caches are server-wide, so every tenant sees the same value).
        """
        tenants: set[str] = set(self._tenant_work)
        tenants.update(session.tenant for session in self._sessions.values())
        tenants.update(self._tenant_caches)
        total_work = sum(self._tenant_work.values())
        inflight = self._admission.inflight
        report: dict[str, dict[str, Any]] = {}
        for tenant in sorted(tenants):
            work = self._tenant_work.get(tenant, 0)
            sessions = [s for s in self._sessions.values() if s.tenant == tenant]
            caches = self._tenant_cache_counters(tenant)
            report[tenant] = {
                "work": work,
                "grant_share": (work / total_work) if total_work else 0.0,
                "quota": self._scheduler.quota(tenant),
                "backlog": sum(1 for s in sessions if not s.done),
                "queued": sum(1 for s in sessions if s.state is SessionState.QUEUED),
                "inflight": sum(1 for s in sessions if s in inflight),
                "wall_seconds": sum(s.wall_seconds for s in sessions),
                "caches": {
                    "result": {
                        "hits": caches["result_hits"],
                        "misses": caches["result_misses"],
                    },
                    "order": {
                        "hits": caches["order_hits"],
                        "misses": caches["order_misses"],
                    },
                    "invalidations": self.result_cache.invalidations,
                },
            }
        return report

    def _tenant_cache_counters(self, tenant: str) -> dict[str, int]:
        counters = self._tenant_caches.get(tenant)
        if counters is None:
            counters = {
                "result_hits": 0,
                "result_misses": 0,
                "order_hits": 0,
                "order_misses": 0,
            }
            self._tenant_caches[tenant] = counters
        return counters

    def session(self, ticket: int) -> QuerySession:
        """The session object behind a ticket (inspection and tests)."""
        return self._session(ticket)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _session(self, ticket: int) -> QuerySession:
        session = self._sessions.get(ticket)
        if session is None:
            raise ReproError(f"unknown ticket {ticket}")
        return session

    def _statistics_for_engines(self) -> StatisticsCatalog:
        if self._statistics_provider is not None:
            return self._statistics_provider()
        if self._statistics is None:
            self._statistics = StatisticsCatalog.collect(self._catalog)
        return self._statistics

    # ------------------------------------------------------------------
    # streaming internals
    # ------------------------------------------------------------------
    def _setup_stream(self, session: QuerySession, spec: Any) -> None:
        """Attach a stream buffer; go incremental when engine+query allow it."""
        session.stream = StreamBuffer(session.query.output_names(self._catalog))
        task = session.task
        if (
            spec.streamable
            and _stream_eligible(
                session.query, allow_limit=session.config.serving_limit_pushdown
            )
            and hasattr(task, "enable_streaming")
        ):
            task.enable_streaming()
            session.stream.incremental = True
            if session.query.limit is not None:
                # LIMIT push-down: deliver the first `limit` materialized
                # rows and stop scheduling the session once they exist.
                session.limit_remaining = session.query.limit
                session.stream.keep_journal = True

    def _pump_stream(self, session: QuerySession) -> None:
        """Move tuples the last grant materialized into the stream buffer.

        Projection runs against a throwaway meter: the authoritative
        post-processing (and its charges) still happens in ``finalize()``,
        so a streamed query's meter charges are byte-identical to the same
        query executed without streaming.
        """
        buffer = session.stream
        task = session.task
        if buffer is None or not buffer.incremental or task is None:
            return
        if session.limit_remaining is not None and session.limit_remaining <= 0:
            self._finish_limited(session)
            return
        fresh = task.drain_new_tuples()
        if not fresh:
            return
        relation = RowIdRelation.from_index_tuples(task.stream_aliases, fresh)
        table = post_process(
            session.query, relation, task.stream_tables, self._udfs, CostMeter(),
            mode=session.config.postprocess_mode,
        )
        rows = self._table_rows(table)
        if session.limit_remaining is not None:
            rows = rows[: session.limit_remaining]
            session.limit_remaining -= len(rows)
        buffer.push(rows, self.ledger.grand_total())
        if session.limit_remaining is not None and session.limit_remaining <= 0:
            self._finish_limited(session)

    def _deliver_result_rows(self, session: QuerySession, result: QueryResult) -> None:
        """Completion-time delivery: the final table becomes the buffer."""
        if session.stream is None:
            session.stream = StreamBuffer(result.table.column_names)
        session.stream.names = tuple(result.table.column_names)
        session.stream.push(self._table_rows(result.table), self.ledger.grand_total())

    @staticmethod
    def _table_rows(table: Table) -> list[tuple[Any, ...]]:
        """A table's rows as plain tuples in column-declaration order."""
        columns = [table.column(name).values() for name in table.column_names]
        return list(zip(*columns))

    def _warm_start_priors(
        self, session: QuerySession, spec: Any
    ) -> tuple[OrderPrior, ...]:
        if (
            not spec.warm_startable
            or not session.config.serving_warm_start
            or session.config.order_selection != "uct"
        ):
            return ()
        cap = max(1, session.config.serving_warm_start_visits)
        priors = self.order_cache.priors(join_graph_signature(session.query))
        counters = self._tenant_cache_counters(session.tenant)
        counters["order_hits" if priors else "order_misses"] += 1
        return tuple(
            (order, reward, min(visits, cap)) for order, reward, visits in priors
        )

    def _activate(self, session: QuerySession) -> None:
        # Task construction snapshots the input tables; remember under which
        # epoch, so completion knows whether the result is still cacheable.
        session.catalog_epoch = self._catalog_epoch
        context = EngineContext(
            self._catalog,
            self._udfs,
            session.config,
            profile=session.profile,
            threads=session.threads,
            statistics_provider=self._statistics_for_engines,
        )
        try:
            # resolve() must stay inside the try: a queued session can be
            # activated long after submission (admission promotion), by
            # which time its engine may have been unregistered — that must
            # fail *this* session, not whichever session's step() ran it.
            spec = self._registry.resolve(session.engine)
            session.task = spec.create_task(
                context,
                session.query,
                forced_order=session.forced_order,
                order_prior=self._warm_start_priors(session, spec),
            )
        except Exception as error:  # noqa: BLE001 - e.g. a UDF raising
            # during pre-processing: fail this session without leaking its
            # admission slot (the error surfaces on result(ticket)).
            self._fail(session, error)
            return
        if session.stream_requested:
            self._setup_stream(session, spec)
        session.state = SessionState.RUNNING
        self._scheduler.add(session)
        # Task construction pre-processes the query; attribute that work to
        # the session now so ledger totals equal the solo-run meter totals.
        setup_work = session.work_total()
        if setup_work:
            self._account(session, setup_work)

    def _fail(self, session: QuerySession, error: Exception) -> None:
        """Move a session to FAILED, freeing its scheduler and admission slots."""
        session.error = error
        session.result = None
        session.state = SessionState.FAILED
        self._release_task(session)
        self._scheduler.discard(session)
        if session in self._admission.inflight:
            self._admit_next(session)

    def _account(self, session: QuerySession, consumed: int) -> None:
        self.ledger.record(session.ticket, consumed)
        self._tenant_work[session.tenant] = (
            self._tenant_work.get(session.tenant, 0) + consumed
        )
        self._scheduler.charge(session, consumed)

    def _complete(self, session: QuerySession) -> None:
        assert session.task is not None
        session.result = session.task.finalize()
        # Post-processing charges during finalize(); attribute the residual
        # so the ledger total equals the solo-run meter total exactly.
        residual = session.work_total() - self.ledger.total(session.ticket)
        if residual > 0:
            self._account(session, residual)
        session.state = SessionState.FINISHED
        session.completed_at_work = self.ledger.grand_total()
        self._completed += 1
        if session.stream is not None and not session.stream.incremental:
            # Non-streamable engine or query shape: the whole result becomes
            # fetchable now (incremental sessions already streamed it all).
            self._deliver_result_rows(session, session.result)
        self._scheduler.remove(session)
        # Cache only epoch-current results: a schema mutation that landed
        # while this task ran already invalidated the caches, and inserting
        # now would resurrect pre-mutation rows for post-mutation
        # submissions (the same fence covers learned join orders).
        if (
            session.fingerprint is not None
            and session.catalog_epoch == self._catalog_epoch
        ):
            self.result_cache.put_result(session.fingerprint, session.result)
        if session.catalog_epoch == self._catalog_epoch:
            self._record_learned_orders(session)
        # Release the per-query execution state (preprocessed tables, result
        # set, tracker, UCT tree, shared-memory segments) — only the result
        # outlives completion.
        self._release_task(session)
        self._admit_next(session)

    def _record_learned_orders(self, session: QuerySession) -> None:
        task = session.task
        if task is None or not self.order_cache.enabled:
            return
        try:
            spec = self._registry.resolve(session.engine)
        except ReproError:  # engine unregistered while the query ran
            return
        # Any warm-startable engine whose task learns through a UCT tree
        # contributes priors (Skinner-C and registry extensions alike).
        if not spec.warm_startable or not hasattr(task, "tree"):
            return
        if session.config.order_selection != "uct":
            return
        top = task.tree.top_orders(_PRIOR_ORDERS)
        total = sum(count for _, count in top)
        if total == 0:
            return
        # The prior signal is the *selection share*, not the raw UCT reward:
        # scaled progress deltas vanish as an order approaches completion
        # (the finishing order often records the lowest average reward), so
        # seeding raw rewards would steer the next query away from the best
        # order.  Selection frequency is what UCT concentrates on the best
        # arm, ranks orders correctly, and — being much larger than the
        # per-slice progress rewards — pins the next query to the learned
        # order until enough real evidence dilutes the seed.
        priors = [(order, count / total, count) for order, count in top]
        self.order_cache.record(join_graph_signature(session.query), priors)

    def _finish_limited(self, session: QuerySession) -> None:
        """Complete a streamed LIMIT query early: its owed rows all exist.

        The session's result is the journaled stream — the first ``LIMIT``
        rows in materialization order, a valid answer for a bare
        select-project-join LIMIT query, but *not* the canonical
        completion-ordered rows a full run produces — so the result is
        never stored in the result cache and no join-order priors are
        recorded (the UCT tree only saw a truncated run).  The scheduler
        and admission slots are released immediately: this is the whole
        point of the push-down — no budget is burned on rows nobody will
        fetch.
        """
        task = session.task
        buffer = session.stream
        assert task is not None and buffer is not None
        # Duplicate output names collapse to one dict-keyed column in a full
        # run's result table, and the streamed rows are already that width —
        # pair the journal with the deduplicated names (first occurrence
        # wins), exactly like the completion path.
        names = list(dict.fromkeys(buffer.names))
        table = Table.from_rows("result", names, buffer.journal)
        if hasattr(task, "partial_metrics"):
            metrics = task.partial_metrics(table.num_rows)
        else:  # registry extensions without partial accounting
            metrics = QueryMetrics(engine=session.engine, result_rows=table.num_rows)
        metrics.extra["limit_pushdown"] = True
        session.result = QueryResult(table, metrics)
        residual = session.work_total() - self.ledger.total(session.ticket)
        if residual > 0:
            self._account(session, residual)
        session.state = SessionState.FINISHED
        session.completed_at_work = self.ledger.grand_total()
        self._completed += 1
        self._scheduler.discard(session)
        self._release_task(session)
        self._admit_next(session)

    @staticmethod
    def _release_task(session: QuerySession) -> None:
        """Drop a session's task, closing it first to free external state.

        Parallel Skinner-C tasks own shared-memory segments and in-flight
        worker results; ``close()`` tears those down deterministically at
        every terminal transition (complete, fail, cancel, limit push-down)
        instead of waiting for garbage collection.  Registry extensions
        without a ``close()`` are dropped as before.
        """
        task = session.task
        session.task = None
        if task is not None and hasattr(task, "close"):
            with contextlib.suppress(Exception):
                task.close()

    def _admit_next(self, session: QuerySession) -> None:
        admitted = self._admission.release(session)
        if admitted is not None:
            self._activate(admitted)

    @staticmethod
    def _cached_copy(cached: QueryResult) -> QueryResult:
        """A result-cache hit: same table, metrics flagged as cached."""
        metrics = replace(
            cached.metrics,
            extra={**cached.metrics.extra, "result_cache": "hit"},
        )
        return QueryResult(cached.table, metrics)
